//===- rt/Runtime.cpp - Go-like deterministic concurrency runtime ---------===//

#include "rt/Runtime.h"

#include "obs/DetectorMetrics.h"
#include "obs/Metrics.h"
#include "obs/RuntimeMetrics.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <csignal>
#include <exception>
#include <mutex>
#include <pthread.h>
#include <thread>
#include <ucontext.h>

using namespace grs;
using namespace grs::rt;

//===----------------------------------------------------------------------===//
// Goroutine bookkeeping
//===----------------------------------------------------------------------===//

namespace {
enum class GState : uint8_t {
  NeverStarted,
  Runnable,
  Running,
  Blocked,
  Sleeping,
  Finished,
};
} // namespace

struct Runtime::Goroutine {
  race::Tid Id = 0;
  std::string Name;
  GState State = GState::NeverStarted;
  std::function<void()> Body;
  std::unique_ptr<char[]> Stack;
  ucontext_t Ctx;
  uint64_t WakeStep = 0;
  const char *BlockReason = "";
};

/// The runtime active on this thread, if any.
static thread_local Runtime *ActiveRuntime = nullptr;

//===----------------------------------------------------------------------===//
// Hard watchdog machinery
//
// A goroutine that never reaches a scheduling point (a tight CPU spin, or
// foreign code that blocks forever) cannot be recovered cooperatively:
// the scheduler and the fiber share one OS thread, and control only comes
// back at yield points the fiber never executes. The hard path regains
// the thread with a signal: a monitor thread watches the runtime's
// progress stamp, and when it stays frozen for the whole wall-clock
// budget, signals the runtime's thread; the handler siglongjmps from the
// stuck fiber's stack back into Runtime::runScheduler(), abandoning the
// fiber mid-frame. Everything the handler touches is thread-local, and
// the jump is armed only between two points on the SAME thread the signal
// targets, so a late signal after disarm is a harmless no-op.
//===----------------------------------------------------------------------===//

namespace {
/// Nonzero only while the current thread's runtime accepts a hard abort
/// (i.e. while a watchdog-armed fiber may be running). Checked and
/// cleared by the handler so the jump fires at most once per arm.
thread_local volatile sig_atomic_t HardAbortArmed = 0;
} // namespace

namespace grs {
namespace rt {
/// Out-of-line so the signal handler can reach the private jump buffer.
void watchdogSignalJump(Runtime &RT) { siglongjmp(RT.WatchdogJmp, 1); }
} // namespace rt
} // namespace grs

namespace {

void watchdogSignalHandler(int /*Signo*/) {
  if (!HardAbortArmed || !ActiveRuntime)
    return;
  HardAbortArmed = 0;
  watchdogSignalJump(*ActiveRuntime);
}

/// Installs the process-wide SIGURG handler once. SIGURG matches Go's own
/// async-preemption choice: ignored by default, rarely used elsewhere,
/// and delivered to the precise thread pthread_kill names.
void installWatchdogHandler() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    struct sigaction SA;
    SA.sa_handler = watchdogSignalHandler;
    sigemptyset(&SA.sa_mask);
    SA.sa_flags = 0;
    sigaction(SIGURG, &SA, nullptr);
  });
}

} // namespace

Runtime::Runtime(RunOptions Opts)
    : Opts(std::move(Opts)),
      Det(std::make_unique<race::Detector>(this->Opts.Detector)),
      SchedRng(this->Opts.Seed),
      SchedCtxStorage(std::make_unique<char[]>(sizeof(ucontext_t))) {
  if (this->Opts.OnReport)
    Det->setReportSink([this](const race::RaceReport &Report) {
      this->Opts.OnReport(*Det, Report);
    });
  // A disabled registry takes the same path as no registry at all: no
  // handles, no observer — the zero-overhead-when-disabled contract.
  obs::Registry *Reg = this->Opts.Metrics;
  if (Reg && !Reg->enabled())
    Reg = nullptr;
  if (Reg) {
    // All handles come from the registry's cached bundle: one
    // registration pass per registry instead of per Runtime (the
    // amortization measured in EXPERIMENTS.md).
    MInstruments = Reg->runtimeInstruments();
    MCtxSwitches = MInstruments->CtxSwitches;
    MSpawns = MInstruments->Spawns;
    MBlocks = MInstruments->Blocks;
    MPreemptions = MInstruments->preemptionsForSeed(this->Opts.Seed);
    MYields = MInstruments->Yields;
    MSteps = MInstruments->Steps;
    MSelects = MInstruments->Selects;
    MChanSends = MInstruments->ChanSends;
    MChanRecvs = MInstruments->ChanRecvs;
    MChanCloses = MInstruments->ChanCloses;
    MSelectReady = MInstruments->SelectReady;
    // Detector metrics ride the event-observer seam so the detector core
    // stays untouched; a trace sink chains behind it unchanged. The
    // observer is pooled on the bundle and rebound to this detector.
    MetricsObserver =
        MInstruments->acquireObserver(Det.get(), this->Opts.Trace);
    Det->setEventObserver(MetricsObserver);
  } else if (this->Opts.Trace) {
    Det->setEventObserver(this->Opts.Trace);
  }
}

Runtime::~Runtime() {
  if (MetricsObserver)
    MInstruments->releaseObserver(MetricsObserver);
}

Runtime &Runtime::current() {
  assert(ActiveRuntime && "no runtime active on this thread");
  return *ActiveRuntime;
}

Runtime *Runtime::currentOrNull() { return ActiveRuntime; }

static ucontext_t &schedCtx(char *Storage) {
  return *reinterpret_cast<ucontext_t *>(Storage);
}

//===----------------------------------------------------------------------===//
// Fiber entry
//===----------------------------------------------------------------------===//

void Runtime::fiberTrampoline() { ActiveRuntime->fiberEntry(); }

void Runtime::fiberEntry() {
  Goroutine &G = *Goroutines[CurrentIndex];
  Det->pushFrame(G.Id, Det->makeFrame(G.Name, "goroutine", 0));
  try {
    G.Body();
  } catch (GoPanic &P) {
    Result.Panics.push_back(G.Name + ": panic: " + P.message());
  } catch (AbortFiber &) {
    // Teardown unwinding; nothing to record.
  } catch (const std::exception &E) {
    // A C++ exception from foreign code inside the body. Captured here —
    // at the fiber boundary — so it degrades this one run instead of
    // unwinding through the scheduler and killing the whole sweep.
    Result.ForeignExceptions.push_back(G.Name + ": foreign exception: " +
                                       E.what());
  } catch (...) {
    Result.ForeignExceptions.push_back(G.Name +
                                       ": foreign exception: <non-std>");
  }
  // Release captured state eagerly; the Goroutine record outlives the run.
  G.Body = nullptr;
  Det->popFrame(G.Id);
  Det->finish(G.Id);
  G.State = GState::Finished;
  swapcontext(&G.Ctx, &schedCtx(SchedCtxStorage.get()));
  assert(false && "resumed a finished goroutine");
}

//===----------------------------------------------------------------------===//
// Scheduling
//===----------------------------------------------------------------------===//

RunResult Runtime::run(std::function<void()> Main) {
  assert(!Running && "Runtime::run() is not reentrant");
  assert(!ActiveRuntime && "another Runtime is active on this thread");
  Running = true;
  ActiveRuntime = this;

  // Goroutine 0: main.
  auto MainG = std::make_unique<Goroutine>();
  MainG->Id = Det->newRootGoroutine();
  MainG->Name = "main";
  MainG->Body = std::move(Main);
  MainG->Stack = std::make_unique<char[]>(Opts.StackBytes);
  Goroutines.push_back(std::move(MainG));

  runScheduler();
  bool MainDone =
      !Goroutines.empty() && Goroutines[0]->State == GState::Finished;

  // Teardown: unwind every fiber that still has a live stack so captured
  // objects are destroyed. Parked fibers throw AbortFiber at resumption.
  Aborting = true;
  for (int Pass = 0; Pass < 16; ++Pass) {
    bool AllDone = true;
    for (size_t I = 0; I < Goroutines.size(); ++I) {
      Goroutine &G = *Goroutines[I];
      if (G.State == GState::Blocked || G.State == GState::Sleeping ||
          G.State == GState::Runnable) {
        // Only channel/mutex-parked goroutines count as leaks; sleepers
        // are pending timers and runnables are step-limit casualties.
        bool Parked = G.State == GState::Blocked;
        if (Parked && Pass == 0)
          Result.LeakedGoroutines.push_back(G.Name + " [" + G.BlockReason +
                                            "]");
        resumeGoroutine(I);
        AllDone &= G.State == GState::Finished;
      } else if (G.State == GState::NeverStarted) {
        G.Body = nullptr;
        G.State = GState::Finished;
      }
    }
    if (AllDone)
      break;
  }

  Result.MainFinished = MainDone;
  Result.Steps = Steps;
  Result.RaceCount = Det->reports().size();
  obs::inc(MSteps, Steps);
  if (MetricsObserver)
    MetricsObserver->sync();
  ActiveRuntime = nullptr;
  return Result;
}

void Runtime::runScheduler() {
  if (Opts.WatchdogMillis == 0) {
    schedulerLoop();
    return;
  }

  // Arm the watchdog: soft deadline for the scheduler's own checks, plus
  // a monitor thread for the hard path. The monitor only signals when
  // the progress stamp has been frozen for the WHOLE budget — a body
  // that yields at all lets the soft path handle the deadline instead.
  installWatchdogHandler();
  using Clock = std::chrono::steady_clock;
  auto Budget = std::chrono::milliseconds(Opts.WatchdogMillis);
  auto Poll = std::chrono::milliseconds(
      Opts.WatchdogPollMillis ? Opts.WatchdogPollMillis : 1);
  WatchdogDeadline = Clock::now() + Budget;
  WatchdogArmed = true;
  WatchdogProgress.store(0, std::memory_order_relaxed);

  std::atomic<bool> MonitorStop{false};
  pthread_t Target = pthread_self();
  std::thread Monitor([this, &MonitorStop, Target, Budget, Poll] {
    uint64_t LastStamp = WatchdogProgress.load(std::memory_order_relaxed);
    auto LastChange = Clock::now();
    while (!MonitorStop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(Poll);
      uint64_t Stamp = WatchdogProgress.load(std::memory_order_relaxed);
      auto Now = Clock::now();
      if (Stamp != LastStamp) {
        LastStamp = Stamp;
        LastChange = Now;
        continue;
      }
      if (Now - LastChange >= Budget) {
        pthread_kill(Target, SIGURG);
        return;
      }
    }
  });

  HardAbortArmed = 1;
  if (sigsetjmp(WatchdogJmp, /*savemask=*/1) == 0)
    schedulerLoop();
  else
    hardWatchdogAbort();
  // Disarm on this thread FIRST: any signal the monitor already sent and
  // that lands after this line sees HardAbortArmed == 0 and is a no-op.
  HardAbortArmed = 0;
  WatchdogArmed = false;
  MonitorStop.store(true, std::memory_order_relaxed);
  Monitor.join();
}

void Runtime::hardWatchdogAbort() {
  // We longjmp'd here from the signal handler: some goroutine held the
  // thread past the whole budget without reaching a scheduling point.
  // Its fiber stack is abandoned exactly as the signal left it — never
  // resumed, never unwound — and the goroutine is marked finished so
  // teardown skips it. Other goroutines still unwind normally.
  Goroutine &G = *Goroutines[CurrentIndex];
  G.State = GState::Finished;
  Result.WatchdogFired = true;
  Result.WatchdogDetail =
      "hard: goroutine '" + G.Name +
      "' exceeded the wall-clock budget without reaching a scheduling point";
}

void Runtime::schedulerLoop() {
  std::vector<size_t> Runnable;
  for (;;) {
    if (Steps >= Opts.MaxSteps) {
      Result.StepLimitHit = true;
      return;
    }
    if (WatchdogArmed) {
      WatchdogProgress.store(Steps + 1, std::memory_order_relaxed);
      // Soft path: the system is still scheduling, just past its
      // wall-clock budget. Checked every few steps — a clock read is
      // cheap next to a context switch, but not free.
      if ((Steps & 0x3f) == 0 &&
          std::chrono::steady_clock::now() >= WatchdogDeadline) {
        Result.WatchdogFired = true;
        Result.WatchdogDetail = "soft: wall-clock budget exhausted while "
                                "goroutines were still being scheduled";
        return;
      }
    }

    // Wake sleepers whose deadline arrived.
    uint64_t NearestWake = ~0ULL;
    bool HaveSleeper = false;
    for (auto &GPtr : Goroutines) {
      if (GPtr->State != GState::Sleeping)
        continue;
      if (GPtr->WakeStep <= Steps) {
        GPtr->State = GState::Runnable;
      } else {
        HaveSleeper = true;
        NearestWake = std::min(NearestWake, GPtr->WakeStep);
      }
    }

    Runnable.clear();
    for (size_t I = 0; I < Goroutines.size(); ++I) {
      GState S = Goroutines[I]->State;
      if (S == GState::Runnable || S == GState::NeverStarted)
        Runnable.push_back(I);
    }

    if (Runnable.empty()) {
      if (HaveSleeper) {
        // Idle system: jump virtual time to the next timer.
        Steps = NearestWake;
        continue;
      }
      // Nothing can ever run again. Main still parked => Go's deadlock.
      if (!Goroutines.empty() && Goroutines[0]->State == GState::Blocked)
        Result.Deadlocked = true;
      return;
    }

    // The option that would continue the goroutine that just yielded
    // voluntarily (if it is still runnable): picking anything else is a
    // preemption in the CHESS sense.
    size_t ContinueIndex = SIZE_MAX;
    for (size_t I = 0; I < Runnable.size(); ++I)
      if (Runnable[I] == CurrentIndex &&
          Goroutines[CurrentIndex]->State == GState::Runnable)
        ContinueIndex = I;
    size_t Pick = Runnable[pickChoice(Runnable.size(), ContinueIndex)];
    ++Steps;
    resumeGoroutine(Pick);
  }
}

void Runtime::resumeGoroutine(size_t Index) {
  Goroutine &G = *Goroutines[Index];
  obs::inc(MCtxSwitches);
  CurrentIndex = Index;
  if (G.State == GState::NeverStarted) {
    getcontext(&G.Ctx);
    G.Ctx.uc_stack.ss_sp = G.Stack.get();
    G.Ctx.uc_stack.ss_size = Opts.StackBytes;
    G.Ctx.uc_link = nullptr;
    makecontext(&G.Ctx, &Runtime::fiberTrampoline, 0);
  }
  G.State = GState::Running;
  swapcontext(&schedCtx(SchedCtxStorage.get()), &G.Ctx);
}

void Runtime::switchToScheduler() {
  Goroutine &G = *Goroutines[CurrentIndex];
  swapcontext(&G.Ctx, &schedCtx(SchedCtxStorage.get()));
  // Resumed by the scheduler.
  checkAbort();
}

void Runtime::checkAbort() {
  // Never throw while another exception is unwinding this fiber (e.g. a
  // deferred action running a runtime call during teardown): that would
  // std::terminate(). Such fibers instead observe aborting() in their
  // blocking loops.
  if (Aborting && std::uncaught_exceptions() == 0)
    throw AbortFiber();
}

//===----------------------------------------------------------------------===//
// Goroutine interface
//===----------------------------------------------------------------------===//

race::Tid Runtime::go(const std::string &Name, std::function<void()> Body) {
  assert(Running && "go() outside of Runtime::run()");
  auto G = std::make_unique<Goroutine>();
  G->Id = Det->fork(tid());
  G->Name = Name;
  G->Body = std::move(Body);
  G->Stack = std::make_unique<char[]>(Opts.StackBytes);
  race::Tid NewTid = G->Id;
  assert(NewTid == Goroutines.size() && "tid / goroutine index skew");
  Goroutines.push_back(std::move(G));
  obs::inc(MSpawns);
  return NewTid;
}

race::Tid Runtime::tid() const { return Goroutines[CurrentIndex]->Id; }

void Runtime::preemptPoint() {
  checkAbort();
  if (!SchedRng.chance(Opts.PreemptProbability))
    return;
  obs::inc(MPreemptions);
  Goroutines[CurrentIndex]->State = GState::Runnable;
  switchToScheduler();
}

void Runtime::yieldNow() {
  checkAbort();
  obs::inc(MYields);
  Goroutines[CurrentIndex]->State = GState::Runnable;
  switchToScheduler();
}

void Runtime::blockCurrent(const char *Reason) {
  checkAbort();
  obs::inc(MBlocks);
  Goroutine &G = *Goroutines[CurrentIndex];
  G.State = GState::Blocked;
  G.BlockReason = Reason;
  switchToScheduler();
}

void Runtime::noteSelect(size_t ReadyArms) {
  obs::inc(MSelects);
  obs::observe(MSelectReady, static_cast<double>(ReadyArms));
}

void Runtime::noteChanSend() { obs::inc(MChanSends); }
void Runtime::noteChanRecv() { obs::inc(MChanRecvs); }
void Runtime::noteChanClose() { obs::inc(MChanCloses); }

void Runtime::unblock(race::Tid T) {
  assert(T < Goroutines.size() && "unblock() of unknown goroutine");
  Goroutine &G = *Goroutines[T];
  if (G.State == GState::Blocked)
    G.State = GState::Runnable;
}

void Runtime::sleepUntilStep(uint64_t Step) {
  checkAbort();
  Goroutine &G = *Goroutines[CurrentIndex];
  if (Step <= Steps)
    return;
  G.State = GState::Sleeping;
  G.WakeStep = Step;
  switchToScheduler();
}

void Runtime::panicNow(std::string Message) { throw GoPanic(std::move(Message)); }

size_t Runtime::pickChoice(size_t NumChoices, size_t ContinueIndex) {
  assert(NumChoices > 0 && "pickChoice() with no options");
  if (NumChoices == 1)
    return 0;
  if (Opts.ChoiceHook) {
    size_t Pick = Opts.ChoiceHook(NumChoices, ContinueIndex);
    return Pick < NumChoices ? Pick : NumChoices - 1;
  }
  return static_cast<size_t>(SchedRng.nextBelow(NumChoices));
}

//===----------------------------------------------------------------------===//
// Instrumentation interface
//===----------------------------------------------------------------------===//

race::Addr Runtime::allocAddr(size_t Count) {
  race::Addr Base = NextAddr;
  NextAddr += Count;
  return Base;
}

void Runtime::read(race::Addr A, const std::string &Name) {
  preemptPoint();
  if (Opts.DetectRaces)
    Det->onRead(tid(), A, Name);
}

void Runtime::write(race::Addr A, const std::string &Name) {
  preemptPoint();
  if (Opts.DetectRaces)
    Det->onWrite(tid(), A, Name);
}

//===----------------------------------------------------------------------===//
// Process-fork support and watchdog calibration
//===----------------------------------------------------------------------===//

void rt::prepareChildAfterFork() {
  // fork() clones only the calling thread: any Runtime active on ANOTHER
  // thread of the parent is gone, but this thread's own thread-locals are
  // inherited. The caller forks from supervisor code (never from inside a
  // run), so an inherited ActiveRuntime would be a supervisor bug — still,
  // clear the hard-abort latch and restore SIGURG's default (ignored)
  // disposition so a stray signal cannot jump into a jmp_buf that belongs
  // to a parent stack frame. installWatchdogHandler()'s std::once_flag is
  // also inherited in its "done" state, so re-arming the handler for the
  // child's own runs must not rely on it; reset by re-installing directly
  // on the first armed run (sigaction below leaves it correct either way).
  HardAbortArmed = 0;
  ActiveRuntime = nullptr;
  struct sigaction SA;
  SA.sa_handler = watchdogSignalHandler;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0;
  sigaction(SIGURG, &SA, nullptr);
  // A pool worker (sweep::pooled) lives through MANY runs, each arming
  // its own watchdog, so the child must start with SIGURG deliverable:
  // fork() inherits the calling thread's signal mask, and a supervisor
  // that happened to block SIGURG (e.g. around its own poll loop) would
  // otherwise silently disarm the hard-abort path for every run the
  // worker ever executes.
  sigset_t Unblock;
  sigemptyset(&Unblock);
  sigaddset(&Unblock, SIGURG);
  pthread_sigmask(SIG_UNBLOCK, &Unblock, nullptr);
}

uint64_t rt::calibratedWatchdogBudgetMillis(uint64_t FloorMillis) {
  // The documented calibration caveat (DESIGN.md §9): a static budget
  // tuned on an idle machine trips the soft path on innocent runs when
  // the host is loaded (CI neighbors, saboteur spins on sibling threads).
  // Instead of guessing, measure: time a fixed micro-run of the scheduler
  // itself — spawn/yield churn touching the same code the budget guards —
  // and scale it by a generous safety factor. The probe runs once per
  // process (first caller pays ~a few ms) and is monotone under load:
  // a slow machine yields a bigger budget, which is exactly the point.
  static const uint64_t Probe = [] {
    using Clock = std::chrono::steady_clock;
    auto Start = Clock::now();
    for (int Rep = 0; Rep < 4; ++Rep) {
      RunOptions PO;
      PO.Seed = 1;
      PO.PreemptProbability = 0.5;
      PO.MaxSteps = 20'000;
      PO.DetectRaces = false;
      Runtime RT(PO);
      RT.run([] {
        for (int I = 0; I < 8; ++I)
          Runtime::current().go("probe", [] {
            for (int Y = 0; Y < 200; ++Y)
              gosched();
          });
        for (int Y = 0; Y < 200; ++Y)
          gosched();
      });
    }
    auto Micros = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - Start)
                      .count();
    // 50x the probe: wide enough that concurrent CPU-spin saboteurs on
    // sibling threads do not starve an innocent run past its budget, yet
    // derived from this machine's actual speed rather than a constant.
    return static_cast<uint64_t>(Micros) * 50 / 1000;
  }();
  return std::max<uint64_t>(Probe, FloorMillis);
}
