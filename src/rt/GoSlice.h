//===- rt/GoSlice.h - Go slice semantics ------------------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Go slices with meta-field modelling (Observation 4): "Internally, a
/// slice contains a pointer to the underlying array, its current length,
/// and the maximum capacity ... We refer to these variables as *meta*
/// fields."
///
/// Every GoSlice variable owns a shadow address standing for its meta
/// trio. Copying a slice (assignment, pass-by-value, passing as a
/// goroutine argument) READS the source's meta fields — so Listing 5's
/// bug reproduces exactly: a goroutine-call copy of `myResults` reads meta
/// fields concurrently with a lock-protected append that writes them, and
/// the lock does not cover the copy.
///
/// append() follows Go's growth rule: within capacity it writes in place
/// (aliasing slices share elements but NOT the new length); beyond
/// capacity it reallocates, after which aliases keep the old backing.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_GOSLICE_H
#define GRS_RT_GOSLICE_H

#include "rt/Runtime.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace grs {
namespace rt {

/// A Go slice of \p T. Value type: copies share the backing array but
/// have independent meta fields.
template <typename T> class GoSlice {
public:
  /// A nil slice (len 0, cap 0, no backing).
  explicit GoSlice(std::string Name = "slice")
      : Name(std::move(Name)), MetaAddr(Runtime::current().allocAddr()) {}

  /// make([]T, Len, Cap).
  static GoSlice make(std::string Name, size_t Len, size_t Cap) {
    assert(Cap >= Len && "make([]T) with cap < len");
    GoSlice S(std::move(Name));
    S.B = std::make_shared<Backing>(Cap == 0 ? 1 : Cap);
    S.Length = Len;
    return S;
  }

  /// make([]T, Len).
  static GoSlice make(std::string Name, size_t Len) {
    return make(std::move(Name), Len, Len);
  }

  /// Slice copy (`s2 := s1`, pass-by-value, goroutine argument): reads
  /// the source's meta fields — the Listing 5 race — and gives the copy
  /// its own meta address.
  GoSlice(const GoSlice &Other)
      : Name(Other.Name), MetaAddr(Runtime::current().allocAddr()) {
    Runtime::current().read(Other.MetaAddr, Other.Name + ".meta");
    B = Other.B;
    Offset = Other.Offset;
    Length = Other.Length;
  }

  GoSlice &operator=(const GoSlice &Other) {
    if (this == &Other)
      return *this;
    Runtime &RT = Runtime::current();
    RT.read(Other.MetaAddr, Other.Name + ".meta");
    RT.write(MetaAddr, Name + ".meta");
    B = Other.B;
    Offset = Other.Offset;
    Length = Other.Length;
    return *this;
  }

  /// s[I] read.
  T get(size_t I) const {
    Runtime &RT = Runtime::current();
    RT.read(MetaAddr, Name + ".meta"); // Bounds check reads len.
    boundsCheck(I);
    RT.read(elemAddr(I), Name + "[i]");
    return B->Data[Offset + I];
  }

  /// s[I] = V.
  void set(size_t I, T V) {
    Runtime &RT = Runtime::current();
    RT.read(MetaAddr, Name + ".meta");
    boundsCheck(I);
    RT.write(elemAddr(I), Name + "[i]");
    B->Data[Offset + I] = std::move(V);
  }

  /// s = append(s, V): reads AND writes the meta fields; reallocates (and
  /// reads every element while copying) when capacity is exhausted.
  void append(T V) {
    Runtime &RT = Runtime::current();
    RT.read(MetaAddr, Name + ".meta");
    RT.write(MetaAddr, Name + ".meta");
    if (!B || Offset + Length >= B->Data.size()) {
      size_t NewCap = Length == 0 ? 1 : Length * 2;
      auto NewB = std::make_shared<Backing>(NewCap);
      for (size_t I = 0; I < Length; ++I) {
        RT.read(elemAddr(I), Name + "[i]");
        NewB->Data[I] = B->Data[Offset + I];
      }
      B = std::move(NewB);
      Offset = 0;
    }
    RT.write(B->ElemBase + Offset + Length, Name + "[i]");
    B->Data[Offset + Length] = std::move(V);
    ++Length;
  }

  /// copy(dst, src): copies min(len(dst), len(src)) elements into this
  /// slice; returns the count. Reads both metas and every copied element
  /// (so concurrent writers to either side race, as in Go).
  size_t copyFrom(const GoSlice &Src) {
    Runtime &RT = Runtime::current();
    RT.read(MetaAddr, Name + ".meta");
    RT.read(Src.MetaAddr, Src.Name + ".meta");
    size_t Count = std::min(Length, Src.Length);
    for (size_t I = 0; I < Count; ++I) {
      RT.read(Src.elemAddr(I), Src.Name + "[i]");
      RT.write(elemAddr(I), Name + "[i]");
      B->Data[Offset + I] = Src.B->Data[Src.Offset + I];
    }
    return Count;
  }

  /// len(s).
  size_t len() const {
    Runtime::current().read(MetaAddr, Name + ".meta");
    return Length;
  }

  /// cap(s).
  size_t capacity() const {
    Runtime::current().read(MetaAddr, Name + ".meta");
    return B ? B->Data.size() - Offset : 0;
  }

  /// s[Lo:Hi]: shares the backing array.
  GoSlice slice(size_t Lo, size_t Hi) const {
    Runtime::current().read(MetaAddr, Name + ".meta");
    assert(Lo <= Hi && Hi <= Length && "slice bounds out of range");
    GoSlice Sub(Name + "[lo:hi]");
    Sub.B = B;
    Sub.Offset = Offset + Lo;
    Sub.Length = Hi - Lo;
    return Sub;
  }

  /// Uninstrumented element peek for test assertions.
  const T &raw(size_t I) const { return B->Data[Offset + I]; }
  size_t rawLen() const { return Length; }

  race::Addr metaAddr() const { return MetaAddr; }
  const std::string &name() const { return Name; }

private:
  struct Backing {
    explicit Backing(size_t Cap)
        : Data(Cap), ElemBase(Runtime::current().allocAddr(Cap)) {}
    std::vector<T> Data;
    race::Addr ElemBase;
  };

  race::Addr elemAddr(size_t I) const { return B->ElemBase + Offset + I; }

  void boundsCheck(size_t I) const {
    if (I >= Length)
      Runtime::current().panicNow("runtime error: index out of range in " +
                                  Name);
  }

  std::string Name;
  race::Addr MetaAddr;
  std::shared_ptr<Backing> B;
  size_t Offset = 0;
  size_t Length = 0;
};

} // namespace rt
} // namespace grs

#endif // GRS_RT_GOSLICE_H
