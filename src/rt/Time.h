//===- rt/Time.h - Virtual-time timers and tickers --------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// time.Sleep / time.After / time.Ticker over the runtime's virtual clock
/// (scheduler steps). Deadlines jump forward when the system idles, so
/// timer-driven programs never wall-clock block.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_TIME_H
#define GRS_RT_TIME_H

#include "rt/Channel.h"
#include "rt/Runtime.h"

#include <memory>

namespace grs {
namespace rt {

/// time.Sleep(d) analogue: parks the current goroutine for \p Steps virtual time.
inline void sleepFor(uint64_t Steps) {
  Runtime &RT = Runtime::current();
  RT.sleepUntilStep(RT.stepCount() + Steps);
}

/// time.After(d): \returns a channel receiving one Unit at the deadline.
/// A hidden goroutine delivers it (buffered: never leaks a sender even if
/// nobody receives).
inline std::shared_ptr<Chan<Unit>> after(uint64_t Steps) {
  auto Ch = std::make_shared<Chan<Unit>>(1, "time.after");
  uint64_t Deadline = Runtime::current().stepCount() + Steps;
  go("time.after", [Ch, Deadline] {
    Runtime &RT = Runtime::current();
    RT.sleepUntilStep(Deadline);
    if (!RT.aborting())
      Ch->send(Unit{});
  });
  return Ch;
}

/// time.Ticker: delivers on its channel every \p Period steps until
/// stop(). Missed ticks are dropped (capacity-1 channel), like Go.
class Ticker {
public:
  explicit Ticker(uint64_t Period)
      : C(std::make_shared<Chan<Unit>>(1, "ticker")),
        Stopped(std::make_shared<Shared01>()) {
    auto ChLocal = C;
    auto StopFlag = Stopped;
    go("time.ticker", [ChLocal, StopFlag, Period] {
      Runtime &RT = Runtime::current();
      for (;;) {
        RT.sleepUntilStep(RT.stepCount() + Period);
        if (RT.aborting() || StopFlag->Value)
          return;
        // Drop the tick when the receiver hasn't drained the last one.
        if (ChLocal->len() < ChLocal->cap())
          ChLocal->send(Unit{});
      }
    });
  }

  Ticker(const Ticker &) = delete;
  Ticker &operator=(const Ticker &) = delete;

  /// The tick channel (t.C).
  Chan<Unit> &chan() { return *C; }

  /// t.Stop(): no further ticks (the ticker goroutine exits at its next
  /// wakeup; pending buffered ticks remain readable, as in Go).
  void stop() { Stopped->Value = true; }

private:
  // Plain (uninstrumented) flag: written by stop(), read by the ticker
  // goroutine. Single-OS-thread scheduling makes this well-defined, and
  // it is runtime-internal state, not program data.
  struct Shared01 {
    bool Value = false;
  };
  std::shared_ptr<Chan<Unit>> C;
  std::shared_ptr<Shared01> Stopped;
};

} // namespace rt
} // namespace grs

#endif // GRS_RT_TIME_H
