//===- rt/ErrGroup.h - golang.org/x/sync/errgroup ---------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// errgroup.Group, the fan-out idiom ubiquitous in the microservice code
/// the paper studies: `g.Go(func() error { ... })` several times, then
/// `g.Wait()` returns the first non-empty error. Internally a WaitGroup +
/// a Once-guarded error slot — the safe packaging of exactly the
/// machinery developers get wrong by hand in Listings 2 and 10.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_ERRGROUP_H
#define GRS_RT_ERRGROUP_H

#include "rt/Instr.h"
#include "rt/Runtime.h"
#include "rt/Sync.h"

#include <functional>
#include <memory>
#include <string>

namespace grs {
namespace rt {

/// errgroup.Group. Use via shared_ptr when goroutines may outlive the
/// creating scope.
class ErrGroup {
public:
  explicit ErrGroup(std::string Name = "errgroup")
      : Name(std::move(Name)), Wg(this->Name + ".wg"),
        ErrMu(this->Name + ".mu") {}

  ErrGroup(const ErrGroup &) = delete;
  ErrGroup &operator=(const ErrGroup &) = delete;

  /// g.Go(fn): runs \p Fn in a goroutine; the FIRST non-empty returned
  /// error is retained.
  void spawn(std::function<std::string()> Fn) {
    Wg.add(1); // Correct placement: before the goroutine launches.
    go(Name + ".worker", [this, Fn = std::move(Fn)] {
      Defer Done([this] { Wg.done(); });
      std::string Err = Fn();
      if (Err.empty())
        return;
      LockGuard<Mutex> Guard(ErrMu);
      if (FirstError.empty())
        FirstError = std::move(Err);
    });
  }

  /// g.Wait(): blocks until every spawned function returned; yields the
  /// first error ("" = all succeeded).
  std::string wait() {
    Wg.wait();
    LockGuard<Mutex> Guard(ErrMu);
    return FirstError;
  }

private:
  std::string Name;
  WaitGroup Wg;
  Mutex ErrMu;
  std::string FirstError;
};

} // namespace rt
} // namespace grs

#endif // GRS_RT_ERRGROUP_H
