//===- rt/Semaphore.h - Weighted semaphore (x/sync/semaphore) ---*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// golang.org/x/sync/semaphore's Weighted: the bounded-concurrency
/// primitive microservice handlers use for admission control. Acquire
/// establishes happens-before from the Releases that freed the capacity.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_SEMAPHORE_H
#define GRS_RT_SEMAPHORE_H

#include "rt/Runtime.h"
#include "rt/WaiterList.h"

#include <string>

namespace grs {
namespace rt {

/// semaphore.NewWeighted(n).
class Semaphore {
public:
  explicit Semaphore(int64_t Capacity, std::string Name = "semaphore")
      : Name(std::move(Name)), Capacity(Capacity), Available(Capacity),
        Sync(Runtime::current().det().newSyncVar(this->Name)) {}

  Semaphore(const Semaphore &) = delete;
  Semaphore &operator=(const Semaphore &) = delete;

  /// s.Acquire(n): blocks until \p Weight units are available.
  void acquire(int64_t Weight = 1) {
    Runtime &RT = Runtime::current();
    RT.preemptPoint();
    if (Weight > Capacity)
      RT.panicNow("semaphore: acquire weight exceeds capacity (" + Name +
                  ")");
    while (Available < Weight) {
      if (RT.aborting())
        return;
      Waiters.park("semaphore.Acquire");
    }
    Available -= Weight;
    RT.det().acquire(RT.tid(), Sync);
  }

  /// s.TryAcquire(n).
  bool tryAcquire(int64_t Weight = 1) {
    Runtime &RT = Runtime::current();
    RT.preemptPoint();
    if (Available < Weight)
      return false;
    Available -= Weight;
    RT.det().acquire(RT.tid(), Sync);
    return true;
  }

  /// s.Release(n).
  void release(int64_t Weight = 1) {
    Runtime &RT = Runtime::current();
    Available += Weight;
    if (Available > Capacity)
      RT.panicNow("semaphore: released more than held (" + Name + ")");
    RT.det().releaseMerge(RT.tid(), Sync);
    Waiters.wakeAll();
  }

  int64_t available() const { return Available; }

private:
  std::string Name;
  int64_t Capacity;
  int64_t Available;
  race::SyncId Sync;
  WaiterList Waiters;
};

} // namespace rt
} // namespace grs

#endif // GRS_RT_SEMAPHORE_H
