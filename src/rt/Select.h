//===- rt/Select.h - Go select statement ------------------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Go's select statement: blocks until at least one arm is ready; when
/// several are ready, "one is chosen non-deterministically" (paper §4.6
/// footnote) — here by the seeded scheduler RNG, so the choice is
/// reproducible per seed. Used by the Listing 9 Future pattern, where a
/// Wait() selects between the completion channel and ctx.Done().
///
/// Usage:
/// \code
///   rt::Selector Sel;
///   Sel.onRecv(DoneCh, [&](rt::Unit, bool) { ... });
///   Sel.onRecv(Ctx.doneChan(), [&](rt::Unit, bool) { ... });
///   int Arm = Sel.run(); // index of the arm taken
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_SELECT_H
#define GRS_RT_SELECT_H

#include "rt/Channel.h"
#include "rt/Runtime.h"

#include <functional>
#include <vector>

namespace grs {
namespace rt {

/// Builder/executor for one select statement.
class Selector {
public:
  /// Adds a `case v, ok := <-Ch:` arm.
  template <typename T>
  Selector &onRecv(Chan<T> &Ch, std::function<void(T, bool)> Handler) {
    Arms.push_back(Arm{
        [&Ch] { return Ch.recvReady(); },
        [&Ch, Handler = std::move(Handler)] {
          auto [Value, Ok] = Ch.recvNow();
          if (Handler)
            Handler(std::move(Value), Ok);
        },
        &Ch.waiters(),
    });
    return *this;
  }

  /// Adds a `case Ch <- Value:` arm.
  template <typename T>
  Selector &onSend(Chan<T> &Ch, T Value,
                   std::function<void()> After = nullptr) {
    Arms.push_back(Arm{
        [&Ch] { return Ch.sendReady(); },
        [&Ch, Value = std::move(Value), After = std::move(After)]() mutable {
          Ch.sendNow(std::move(Value));
          if (After)
            After();
        },
        &Ch.waiters(),
    });
    return *this;
  }

  /// Adds a `default:` arm.
  Selector &onDefault(std::function<void()> Handler) {
    Default = std::move(Handler);
    HasDefault = true;
    return *this;
  }

  /// Executes the select. \returns the index of the arm taken (in
  /// registration order), or -1 for the default arm.
  int run() {
    Runtime &RT = Runtime::current();
    RT.preemptPoint();
    std::vector<size_t> Ready;
    for (;;) {
      Ready.clear();
      for (size_t I = 0; I < Arms.size(); ++I)
        if (Arms[I].IsReady())
          Ready.push_back(I);
      if (!Ready.empty()) {
        // Non-deterministic choice among ready arms: seeded RNG, or the
        // exploration hook when one drives the run.
        RT.noteSelect(Ready.size());
        size_t Pick = Ready[RT.pickChoice(Ready.size())];
        Arms[Pick].Fire();
        return static_cast<int>(Pick);
      }
      if (HasDefault) {
        RT.noteSelect(0);
        if (Default)
          Default();
        return -1;
      }
      if (RT.aborting())
        return -1;
      // Park on every arm's channel; any state change wakes us and we
      // re-scan. Stale registrations are benign (wake-all + re-check).
      for (Arm &A : Arms)
        A.Waiters->add(RT.tid());
      RT.blockCurrent("select");
    }
  }

private:
  struct Arm {
    std::function<bool()> IsReady;
    std::function<void()> Fire;
    WaiterList *Waiters;
  };

  std::vector<Arm> Arms;
  std::function<void()> Default;
  bool HasDefault = false;
};

} // namespace rt
} // namespace grs

#endif // GRS_RT_SELECT_H
