//===- rt/GoMap.h - Go built-in map semantics -------------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Go's built-in map with its thread-unsafety modelled (Observation 5):
/// "a map (hash table), unlike an array or a slice, is a sparse data
/// structure, and accessing one element might result in accessing another
/// element; if during the same process another insertion/deletion happens,
/// it will modify the sparse data structure and cause a data race."
///
/// Every operation therefore touches a per-map *structure* shadow address
/// (bucket array, hash state): reads read it, inserts/updates/deletes
/// write it. This is why Listing 6's writes to DISTINCT keys still
/// write-write race. Lookup of a missing key returns the zero value
/// without error — the §4.4 "error tolerance" that lulls developers.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_GOMAP_H
#define GRS_RT_GOMAP_H

#include "rt/Runtime.h"

#include <string>
#include <unordered_map>
#include <utility>

namespace grs {
namespace rt {

/// A Go map[K]V. Reference type in Go; here non-copyable (share by
/// reference/pointer, as Go programs share the header).
template <typename K, typename V> class GoMap {
public:
  explicit GoMap(std::string Name = "map")
      : Name(std::move(Name)), StructAddr(Runtime::current().allocAddr()) {}

  GoMap(const GoMap &) = delete;
  GoMap &operator=(const GoMap &) = delete;

  /// v := m[k] — missing keys yield the zero value, silently.
  V get(const K &Key) const {
    Runtime &RT = Runtime::current();
    RT.read(StructAddr, Name + ".structure");
    auto Found = Table.find(Key);
    if (Found == Table.end())
      return V();
    RT.read(slotAddr(Key), Name + "[k]");
    return Found->second;
  }

  /// v, ok := m[k].
  std::pair<V, bool> getOk(const K &Key) const {
    Runtime &RT = Runtime::current();
    RT.read(StructAddr, Name + ".structure");
    auto Found = Table.find(Key);
    if (Found == Table.end())
      return {V(), false};
    RT.read(slotAddr(Key), Name + "[k]");
    return {Found->second, true};
  }

  /// m[k] = v. Writes the sparse structure even for existing keys —
  /// the heart of the Listing 6 race.
  void set(const K &Key, V Value) {
    Runtime &RT = Runtime::current();
    RT.write(StructAddr, Name + ".structure");
    RT.write(slotAddr(Key), Name + "[k]");
    Table[Key] = std::move(Value);
  }

  /// delete(m, k).
  void erase(const K &Key) {
    Runtime &RT = Runtime::current();
    RT.write(StructAddr, Name + ".structure");
    Table.erase(Key);
  }

  /// len(m).
  size_t len() const {
    Runtime::current().read(StructAddr, Name + ".structure");
    return Table.size();
  }

  bool contains(const K &Key) const {
    Runtime::current().read(StructAddr, Name + ".structure");
    return Table.count(Key) != 0;
  }

  /// range over the map (iteration reads the structure and each slot).
  template <typename Fn> void forEach(Fn Visit) const {
    Runtime &RT = Runtime::current();
    RT.read(StructAddr, Name + ".structure");
    for (const auto &[Key, Value] : Table) {
      RT.read(slotAddr(Key), Name + "[k]");
      Visit(Key, Value);
    }
  }

  /// Uninstrumented peeks for test assertions.
  size_t rawLen() const { return Table.size(); }
  bool rawContains(const K &Key) const { return Table.count(Key) != 0; }

  race::Addr structAddr() const { return StructAddr; }
  const std::string &name() const { return Name; }

private:
  race::Addr slotAddr(const K &Key) const {
    auto [It, Inserted] = SlotAddrs.try_emplace(Key, 0);
    if (Inserted)
      It->second = Runtime::current().allocAddr();
    return It->second;
  }

  std::string Name;
  race::Addr StructAddr;
  std::unordered_map<K, V> Table;
  /// Stable per-key shadow addresses (lazily allocated, never reused even
  /// across delete/re-insert).
  mutable std::unordered_map<K, race::Addr> SlotAddrs;
};

} // namespace rt
} // namespace grs

#endif // GRS_RT_GOMAP_H
