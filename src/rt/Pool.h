//===- rt/Pool.h - sync.Pool ------------------------------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Go's sync.Pool: a free-list of reusable objects. Correct use is
/// race-free: Put() releases into the pool's sync var and Get() acquires,
/// so the previous owner's writes happen-before the next owner's reads.
/// The classic MISUSE — putting an object back while still holding and
/// mutating a reference to it — races with the next Get()er, which the
/// corpus's "pool-use-after-put" pattern reproduces.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_POOL_H
#define GRS_RT_POOL_H

#include "rt/Runtime.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace grs {
namespace rt {

/// sync.Pool of shared_ptr<T> objects with a New factory.
template <typename T> class Pool {
public:
  explicit Pool(std::function<std::shared_ptr<T>()> New,
                std::string Name = "pool")
      : Name(std::move(Name)), New(std::move(New)),
        Sync(Runtime::current().det().newSyncVar(this->Name)) {}

  Pool(const Pool &) = delete;
  Pool &operator=(const Pool &) = delete;

  /// p.Get(): a pooled object (the previous Put()ter's writes are
  /// visible and ordered) or a fresh one from New.
  std::shared_ptr<T> get() {
    Runtime &RT = Runtime::current();
    RT.preemptPoint();
    if (Items.empty())
      return New();
    RT.det().acquire(RT.tid(), Sync);
    std::shared_ptr<T> Item = std::move(Items.back());
    Items.pop_back();
    return Item;
  }

  /// p.Put(obj): returns \p Item to the pool. The caller must not touch
  /// the object afterwards — doing so is the use-after-put race.
  void put(std::shared_ptr<T> Item) {
    Runtime &RT = Runtime::current();
    RT.preemptPoint();
    RT.det().releaseMerge(RT.tid(), Sync);
    Items.push_back(std::move(Item));
  }

  size_t idle() const { return Items.size(); }

private:
  std::string Name;
  std::function<std::shared_ptr<T>()> New;
  race::SyncId Sync;
  std::vector<std::shared_ptr<T>> Items;
};

} // namespace rt
} // namespace grs

#endif // GRS_RT_POOL_H
