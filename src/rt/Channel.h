//===- rt/Channel.h - Go channels -------------------------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Go channels with buffered, unbuffered (rendezvous), and closed
/// semantics, plus the happens-before edges the Go memory model assigns
/// them (paper §1: "a send event on a channel by a goroutine is considered
/// to happen before the corresponding receive event on the same channel").
///
/// Happens-before modelling mirrors Go's slot-precise race
/// instrumentation:
///
///  * Buffered channels keep one sync var PER BUFFER SLOT. A send into
///    slot i acquires then merge-releases Slot[i]; the receive of that
///    slot does the same. Slot reuse therefore yields exactly Go's
///    guarantees — send k happens-before receive k, and receive k
///    happens-before send k+C completes — without ordering unrelated
///    senders (or unrelated receivers) against each other.
///  * Rendezvous (and full-buffer parking) uses a PER-SEND pair of sync
///    vars carried in the parked-sender node, so each pairing is ordered
///    pairwise: send happens-before the matching receive, and the receive
///    happens-before the send completes.
///  * close() merge-releases a dedicated CloseSync acquired by every
///    receive that observes the close.
///
/// A send on a closed channel and a close of a closed channel panic, as in
/// Go. A goroutine blocked forever on a channel is reported as leaked by
/// the runtime — Listing 9's "may block forever!" Future bug.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_CHANNEL_H
#define GRS_RT_CHANNEL_H

#include "rt/Runtime.h"
#include "rt/WaiterList.h"

#include <deque>
#include <string>
#include <utility>

namespace grs {
namespace rt {

/// The empty struct{} payload for pure-signalling channels.
struct Unit {};

/// A Go channel carrying values of type \p T. \p T must be movable and
/// default-constructible (the zero value returned by a receive on a
/// closed, drained channel).
template <typename T> class Chan {
public:
  /// Creates a channel with capacity \p Cap (0 = unbuffered/rendezvous).
  explicit Chan(size_t Cap = 0, std::string Name = "chan")
      : Capacity(Cap), Name(std::move(Name)),
        CloseSync(Runtime::current().det().newSyncVar(this->Name +
                                                      ".close")) {
    race::Detector &D = Runtime::current().det();
    SlotSync.reserve(Capacity);
    for (size_t I = 0; I < Capacity; ++I)
      SlotSync.push_back(
          D.newSyncVar(this->Name + ".slot" + std::to_string(I)));
  }

  Chan(const Chan &) = delete;
  Chan &operator=(const Chan &) = delete;

  /// Notifies the detector that this channel's sync objects are dead so
  /// their clocks can be reclaimed (and never-locked ids recycled). The
  /// null check covers objects destroyed after their Runtime's run()
  /// returned (e.g. leaked-goroutine bodies torn down with the Runtime).
  ~Chan() {
    if (Runtime *RT = Runtime::currentOrNull()) {
      race::Detector &D = RT->det();
      for (race::SyncId S : SlotSync)
        D.destroySyncVar(RT->tid(), S);
      D.destroySyncVar(RT->tid(), CloseSync);
    }
  }

  /// `ch <- v`. Blocks until the value is buffered or handed to a
  /// receiver. Panics if the channel is (or becomes) closed.
  void send(T Value) {
    Runtime::current().preemptPoint();
    sendNow(std::move(Value));
  }

  /// `v, ok := <-ch`. Blocks until a value or close is available.
  /// \returns {value, true}, or {T(), false} if closed and drained.
  std::pair<T, bool> recv() {
    Runtime::current().preemptPoint();
    return recvNow();
  }

  /// `v := <-ch` sugar.
  T recvValue() { return recv().first; }

  /// close(ch). Panics on double close. Wakes every blocked sender
  /// (which panics) and receiver (which observes the close).
  void close() {
    Runtime &RT = Runtime::current();
    RT.preemptPoint();
    if (Closed)
      RT.panicNow("close of closed channel (" + Name + ")");
    RT.noteChanClose();
    RT.det().annotate(race::EventKind::ChannelClose, RT.tid(), CloseSync,
                      false, &Name);
    RT.det().releaseMerge(RT.tid(), CloseSync);
    Closed = true;
    Waiters.wakeAll();
  }

  //===------------------------------------------------------------------===//
  // Select support (see rt/Select.h). *Now variants must only be called
  // when the corresponding *Ready predicate holds; they do not insert a
  // preemption point between the readiness check and the operation.
  //===------------------------------------------------------------------===//

  /// True if a receive would not block: buffered value, parked sender, or
  /// observed close.
  bool recvReady() const {
    return !Buffer.empty() || !PendingSends.empty() || Closed;
  }

  /// True if a send would complete promptly: buffer space, a parked
  /// receiver, or closed (in which case performing it panics, as Go's
  /// select does).
  bool sendReady() const {
    return Closed || Buffer.size() < Capacity || RecvWaiting > 0;
  }

  /// Receive without a leading preemption point.
  std::pair<T, bool> recvNow() {
    Runtime &RT = Runtime::current();
    // Trace annotation: one record per receive operation (the channel is
    // identified by its close-sync id), whether it completes promptly or
    // parks first.
    RT.noteChanRecv();
    RT.det().annotate(race::EventKind::ChannelRecv, RT.tid(), CloseSync,
                      false, &Name);
    for (;;) {
      if (!Buffer.empty()) {
        // Slot handoff: the send into this slot happens-before this
        // receive; this receive happens-before the slot's next send.
        race::SyncId Slot = SlotSync[RecvIdx % Capacity];
        ++RecvIdx;
        RT.det().acquire(RT.tid(), Slot);
        T Value = std::move(Buffer.front());
        Buffer.pop_front();
        RT.det().releaseMerge(RT.tid(), Slot);
        promotePendingSends();
        Waiters.wakeAll();
        return {std::move(Value), true};
      }
      if (Closed) {
        RT.det().acquire(RT.tid(), CloseSync);
        return {T(), false};
      }
      if (!PendingSends.empty()) {
        // Rendezvous: take the value directly from a parked sender, with
        // pairwise HB through the node's sync vars.
        PendingSend *Node = PendingSends.front();
        PendingSends.pop_front();
        RT.det().acquire(RT.tid(), Node->SendSync);
        T Value = std::move(Node->Value);
        Node->Consumed = true;
        RT.det().releaseMerge(RT.tid(), Node->RecvSync);
        RT.unblock(Node->Sender);
        return {std::move(Value), true};
      }
      if (RT.aborting())
        return {T(), false};
      ++RecvWaiting;
      Waiters.park("chan receive");
      --RecvWaiting;
    }
  }

  /// Send without a leading preemption point.
  void sendNow(T Value) {
    Runtime &RT = Runtime::current();
    if (Closed)
      RT.panicNow("send on closed channel (" + Name + ")");
    RT.noteChanSend();
    RT.det().annotate(race::EventKind::ChannelSend, RT.tid(), CloseSync,
                      false, &Name);
    if (Buffer.size() < Capacity) {
      // Slot handoff: ordered after the slot's previous receive (Go's
      // "receive k happens-before send k+C completes"), ordered before
      // the slot's next receive.
      race::SyncId Slot = SlotSync[SendIdx % Capacity];
      ++SendIdx;
      RT.det().acquire(RT.tid(), Slot);
      RT.det().releaseMerge(RT.tid(), Slot);
      Buffer.push_back(std::move(Value));
      Waiters.wakeAll();
      return;
    }
    // No space: park with the value until a receiver consumes it (covers
    // the unbuffered rendezvous and the full-buffer cases). The node
    // carries its own sync pair so pairing is ordered pairwise. The pair
    // dies with the node on every exit (consumed, closed-panic, abort):
    // without the destroy edge, rendezvous traffic grows detector sync
    // state by two clocks per blocked send, forever.
    PendingSend Node{RT.tid(), std::move(Value), false,
                     RT.det().newSyncVar(Name + ".pend.s"),
                     RT.det().newSyncVar(Name + ".pend.r")};
    struct PendingSyncReaper {
      race::Detector &D;
      race::Tid Sender;
      race::SyncId SendSync, RecvSync;
      ~PendingSyncReaper() {
        D.destroySyncVar(Sender, SendSync);
        D.destroySyncVar(Sender, RecvSync);
      }
    } Reaper{RT.det(), RT.tid(), Node.SendSync, Node.RecvSync};
    RT.det().releaseMerge(RT.tid(), Node.SendSync);
    PendingSends.push_back(&Node);
    Waiters.wakeAll();
    while (!Node.Consumed) {
      if (Closed) {
        removePending(&Node);
        RT.panicNow("send on closed channel (" + Name + ")");
      }
      if (RT.aborting()) {
        removePending(&Node);
        return;
      }
      Waiters.park("chan send");
    }
    // This send blocked: its completion happens-after the receive (or
    // slot promotion) that unblocked it.
    RT.det().acquire(RT.tid(), Node.RecvSync);
  }

  /// Parked goroutines (receivers, senders, selects) on this channel.
  WaiterList &waiters() { return Waiters; }

  size_t len() const { return Buffer.size(); }
  size_t cap() const { return Capacity; }
  bool closed() const { return Closed; }
  const std::string &name() const { return Name; }

private:
  struct PendingSend {
    race::Tid Sender;
    T Value;
    bool Consumed;
    race::SyncId SendSync;
    race::SyncId RecvSync;
  };

  /// Moves parked senders' values into freed buffer space, transferring
  /// their publication into the slot and recording the freeing
  /// receiver's clock as the senders' completion edge.
  void promotePendingSends() {
    Runtime &RT = Runtime::current();
    while (!PendingSends.empty() && Buffer.size() < Capacity) {
      PendingSend *Node = PendingSends.front();
      PendingSends.pop_front();
      race::SyncId Slot = SlotSync[SendIdx % Capacity];
      ++SendIdx;
      // The parked sender's pre-send writes flow into the slot; the
      // promoting receiver's clock orders the slot after the freeing
      // receive and completes the sender.
      RT.det().transferSync(Node->SendSync, Slot);
      RT.det().releaseMerge(RT.tid(), Slot);
      RT.det().releaseMerge(RT.tid(), Node->RecvSync);
      Buffer.push_back(std::move(Node->Value));
      Node->Consumed = true;
      RT.unblock(Node->Sender);
    }
  }

  void removePending(PendingSend *Node) {
    for (auto It = PendingSends.begin(); It != PendingSends.end(); ++It) {
      if (*It == Node) {
        PendingSends.erase(It);
        return;
      }
    }
  }

  size_t Capacity;
  std::string Name;
  race::SyncId CloseSync;
  std::vector<race::SyncId> SlotSync;
  uint64_t SendIdx = 0;
  uint64_t RecvIdx = 0;
  std::deque<T> Buffer;
  std::deque<PendingSend *> PendingSends;
  bool Closed = false;
  size_t RecvWaiting = 0;
  WaiterList Waiters;
};

} // namespace rt
} // namespace grs

#endif // GRS_RT_CHANNEL_H
