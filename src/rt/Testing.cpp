//===- rt/Testing.cpp - Go testing package with t.Parallel() ---------------===//

#include "rt/Testing.h"

#include "rt/Channel.h"
#include "rt/Sync.h"

using namespace grs;
using namespace grs::rt;

//===----------------------------------------------------------------------===//
// GoTest state
//===----------------------------------------------------------------------===//

struct GoTest::Impl {
  Impl(std::string FullName, Impl *Parent)
      : FullName(std::move(FullName)), Parent(Parent),
        Signal(1, this->FullName + ".signal"),
        Gate(0, this->FullName + ".gate"),
        ParallelWg(this->FullName + ".wg") {}

  std::string FullName;
  Impl *Parent;
  bool Failed = false;
  std::vector<std::string> Messages;
  bool WantParallel = false;
  /// Child -> parent: "I finished (serial) or I went parallel".
  Chan<Unit> Signal;
  /// Parent closes it when the serial phase ends; parallel children
  /// resume.
  Chan<Unit> Gate;
  /// Parent waits for parallel children here.
  WaitGroup ParallelWg;
  std::vector<std::shared_ptr<Impl>> Children;
  size_t Executed = 1; // self

  void collect(std::vector<std::string> &Failures, size_t &Count) const {
    Count += 1;
    if (Failed)
      for (const std::string &Message : Messages)
        Failures.push_back(FullName + ": " + Message);
    for (const auto &Child : Children)
      Child->collect(Failures, Count);
  }
};

void GoTest::errorf(const std::string &Message) {
  State->Failed = true;
  State->Messages.push_back(Message);
}

bool GoTest::failed() const { return State->Failed; }

const std::string &GoTest::name() const { return State->FullName; }

void GoTest::parallel() {
  Impl &S = *State;
  if (!S.Parent)
    return; // Top-level tests run sequentially in this harness.
  S.WantParallel = true;
  S.Signal.send(Unit{});  // Hand control back to the parent's run().
  S.Parent->Gate.recv();  // Sleep until the parent's serial phase ends.
}

void GoTest::run(const std::string &Name, Body Fn) {
  Impl &S = *State;
  auto Child = std::make_shared<Impl>(S.FullName + "/" + Name, &S);
  S.Children.push_back(Child);

  go("test:" + Child->FullName, [Child, Fn = std::move(Fn)] {
    GoTest Sub(Child);
    try {
      Fn(Sub);
    } catch (GoPanic &P) {
      // A panic fails the test but not the whole suite process.
      Sub.errorf("panic: " + P.message());
    }
    // This subtest's own serial phase is over: release its parallel
    // children (grandchildren of the caller) and join them before
    // reporting completion upward.
    Child->Gate.close();
    Child->ParallelWg.wait();
    if (Child->WantParallel)
      Child->Parent->ParallelWg.done();
    else
      Child->Signal.send(Unit{});
  });

  // Block until the subtest completes (serial) or calls parallel().
  Child->Signal.recv();
  if (Child->WantParallel) {
    // The child is parked at the gate and cannot finish before we close
    // it, so this Add() safely precedes the Done() above.
    S.ParallelWg.add(1);
  }
}

//===----------------------------------------------------------------------===//
// Suite runner
//===----------------------------------------------------------------------===//

namespace grs::rt {
struct TestSuiteRunner {
  static SuiteResult runAll(const RunOptions &Opts,
                            const std::vector<TestCase> &Cases) {
    SuiteResult Result;
    std::vector<std::shared_ptr<GoTest::Impl>> Roots;

    Runtime RT(Opts);
    Result.Run = RT.run([&Cases, &Roots] {
      for (const TestCase &Case : Cases) {
        auto Root =
            std::make_shared<GoTest::Impl>(Case.Name, /*Parent=*/nullptr);
        Roots.push_back(Root);
        GoTest T(Root);
        try {
          Case.Fn(T);
        } catch (GoPanic &P) {
          T.errorf("panic: " + P.message());
        }
        // Serial phase over: release the parallel subtests, then wait for
        // them — testing.T's join semantics.
        Root->Gate.close();
        Root->ParallelWg.wait();
      }
    });

    for (const auto &Root : Roots)
      Root->collect(Result.Failures, Result.TestsExecuted);
    return Result;
  }
};
} // namespace grs::rt

SuiteResult grs::rt::runTestSuite(const RunOptions &Opts,
                                  const std::vector<TestCase> &Cases) {
  return TestSuiteRunner::runAll(Opts, Cases);
}
