//===- rt/WaiterList.h - Parked-goroutine lists ------------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A wake-all parking list shared by channels, mutexes, and WaitGroups.
/// The runtime's lost-wakeup-free discipline: waiters re-check their
/// condition in a loop, state changes wake *all* parked waiters, and
/// unblocking a goroutine that is not parked is a no-op. Spurious wakeups
/// are therefore harmless by construction.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_WAITERLIST_H
#define GRS_RT_WAITERLIST_H

#include "rt/Runtime.h"

#include <algorithm>
#include <vector>

namespace grs {
namespace rt {

/// List of goroutines parked on one condition.
class WaiterList {
public:
  /// Registers the current goroutine and parks it. Returns when woken
  /// (spuriously or not); the caller re-checks its condition.
  void park(const char *Reason) {
    Runtime &RT = Runtime::current();
    Tids.push_back(RT.tid());
    RT.blockCurrent(Reason);
  }

  /// Registers \p T without parking (used by select, which parks once for
  /// several lists).
  void add(race::Tid T) { Tids.push_back(T); }

  /// Removes one registration of \p T, if present.
  void remove(race::Tid T) {
    auto Found = std::find(Tids.begin(), Tids.end(), T);
    if (Found != Tids.end())
      Tids.erase(Found);
  }

  /// Wakes every registered goroutine and clears the list.
  void wakeAll() {
    if (Tids.empty())
      return;
    Runtime &RT = Runtime::current();
    for (race::Tid T : Tids)
      RT.unblock(T);
    Tids.clear();
  }

  bool empty() const { return Tids.empty(); }
  size_t size() const { return Tids.size(); }

private:
  std::vector<race::Tid> Tids;
};

} // namespace rt
} // namespace grs

#endif // GRS_RT_WAITERLIST_H
