//===- rt/Cond.h - sync.Cond ------------------------------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Go's sync.Cond: a condition variable tied to a Locker. The paper's
/// related-work section notes Go developers "rarely, if at all, use their
/// own synchronization but liberally use Go's Mutex locks and condition
/// variables" — so the runtime supplies the real thing.
///
/// Semantics follow Go: Wait() atomically unlocks the associated mutex and
/// parks; on wakeup it re-locks before returning. Callers re-check their
/// condition in a loop, as Go requires.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_COND_H
#define GRS_RT_COND_H

#include "rt/Runtime.h"
#include "rt/Sync.h"
#include "rt/WaiterList.h"

#include <string>

namespace grs {
namespace rt {

/// sync.Cond bound to a Mutex.
class Cond {
public:
  explicit Cond(Mutex &L, std::string Name = "cond")
      : L(L), Name(std::move(Name)),
        Sync(Runtime::current().det().newSyncVar(this->Name)) {}

  Cond(const Cond &) = delete;
  Cond &operator=(const Cond &) = delete;

  /// cond.Wait(): caller must hold the lock. Unlocks, parks until a
  /// Signal/Broadcast, re-locks, returns. Spurious wakeups possible, as
  /// in Go: always wait in a condition loop.
  void wait() {
    Runtime &RT = Runtime::current();
    if (!L.heldByCurrent())
      RT.panicNow("sync: Wait on Cond without holding its Locker (" + Name +
                  ")");
    L.unlock();
    Waiters.park("Cond.Wait");
    if (RT.aborting())
      return;
    L.lock();
    // A signaller's pre-Signal writes happen-before Wait returning.
    RT.det().acquire(RT.tid(), Sync);
  }

  /// cond.Signal(): wakes one waiter (here: all waiters re-check — a
  /// sound over-approximation of Go's "one", since Go permits spurious
  /// wakeups via racing Signals anyway).
  void signal() {
    Runtime &RT = Runtime::current();
    RT.det().releaseMerge(RT.tid(), Sync);
    Waiters.wakeAll();
  }

  /// cond.Broadcast(): wakes every waiter.
  void broadcast() { signal(); }

private:
  Mutex &L;
  std::string Name;
  race::SyncId Sync;
  WaiterList Waiters;
};

} // namespace rt
} // namespace grs

#endif // GRS_RT_COND_H
