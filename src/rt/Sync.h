//===- rt/Sync.h - Go sync package equivalents ------------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sync.Mutex, sync.RWMutex, sync.WaitGroup, and sync.Once with Go's
/// semantics, integrated with the deterministic scheduler (blocking) and
/// the race detector (happens-before edges + lock-set bookkeeping).
///
/// Faithfulness notes for the paper's patterns:
///  * Mutex is COPYABLE and a copy is an independent mutex — Go's
///    value-type sync.Mutex is what makes Listing 7 (mutex passed by
///    value) a bug instead of a type error (Observation 6).
///  * RWMutex read-side critical sections exclude writers but not each
///    other; writes performed under RLock race with other readers'
///    accesses (Listing 11, Observation 10).
///  * WaitGroup's participant count is dynamic; Add() placed inside the
///    spawned goroutine (Listing 10) lets Wait() return prematurely
///    (Observation 8).
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_SYNC_H
#define GRS_RT_SYNC_H

#include "rt/Runtime.h"
#include "rt/WaiterList.h"

#include <functional>
#include <string>

namespace grs {
namespace rt {

/// sync.Mutex. Copying creates an independent mutex object (same internal
/// state bits, new identity), matching Go's value semantics.
class Mutex {
public:
  explicit Mutex(std::string Name = "mutex");

  /// Value-semantics copy: the paper's Listing 7 footgun. The copy starts
  /// with the source's locked bit but is a *different* lock.
  Mutex(const Mutex &Other);
  Mutex &operator=(const Mutex &) = delete;

  /// Notifies the detector the lock object died (its clock is reclaimed;
  /// the id is not recycled because it may linger in Eraser candidate
  /// sets). Matters for value-semantics copies created in loops.
  ~Mutex();

  void lock();
  void unlock();

  /// Non-blocking acquire; \returns true on success (sync.Mutex.TryLock).
  bool tryLock();

  bool heldByCurrent() const;
  race::SyncId id() const { return Id; }

private:
  std::string Name;
  race::SyncId Id;
  bool Locked = false;
  race::Tid Holder = race::InvalidTid;
  WaiterList Waiters;
};

/// RAII lock guard for Mutex/RWMutex write side (the `defer mu.Unlock()`
/// idiom).
template <typename MutexT> class LockGuard {
public:
  explicit LockGuard(MutexT &M) : M(M) { M.lock(); }
  ~LockGuard() { M.unlock(); }
  LockGuard(const LockGuard &) = delete;
  LockGuard &operator=(const LockGuard &) = delete;

private:
  MutexT &M;
};

/// sync.RWMutex: many readers or one writer.
class RWMutex {
public:
  explicit RWMutex(std::string Name = "rwmutex");

  RWMutex(const RWMutex &Other); // Same value-semantics footgun as Mutex.
  RWMutex &operator=(const RWMutex &) = delete;

  ~RWMutex(); // Destroy notification for Id/WriterSync/ReaderSync.

  void lock();    // Lock: exclusive.
  void unlock();  // Unlock.
  void rlock();   // RLock: shared.
  void runlock(); // RUnlock.

  race::SyncId id() const { return Id; }

private:
  std::string Name;
  /// Lock-set identity (one per lock object; read- and write-mode holds
  /// are distinguished by the detector).
  race::SyncId Id;
  /// HB: writers release here; both readers and writers acquire.
  race::SyncId WriterSync;
  /// HB: readers merge-release here; writers acquire.
  race::SyncId ReaderSync;
  int Readers = 0;
  bool Writer = false;
  WaiterList Waiters;
};

/// RAII read-lock guard for RWMutex (the `defer mu.RUnlock()` idiom).
class ReadLockGuard {
public:
  explicit ReadLockGuard(RWMutex &M) : M(M) { M.rlock(); }
  ~ReadLockGuard() { M.runlock(); }
  ReadLockGuard(const ReadLockGuard &) = delete;
  ReadLockGuard &operator=(const ReadLockGuard &) = delete;

private:
  RWMutex &M;
};

/// sync.WaitGroup with Go's dynamic participant count.
class WaitGroup {
public:
  explicit WaitGroup(std::string Name = "waitgroup");

  WaitGroup(const WaitGroup &) = delete;
  WaitGroup &operator=(const WaitGroup &) = delete;

  ~WaitGroup(); // Destroy notification for the group's sync clock.

  /// Adds \p Delta participants (may be negative; panics below zero).
  void add(int Delta);

  /// Equivalent to add(-1), with a release edge into the group.
  void done();

  /// Blocks until the counter is zero. If the counter is ALREADY zero —
  /// including because Add() calls are still pending inside not-yet-run
  /// goroutines (Listing 10) — returns immediately.
  void wait();

  int count() const { return Count; }

private:
  std::string Name;
  race::SyncId Sync;
  int Count = 0;
  WaiterList Waiters;
};

/// sync.Once.
class Once {
public:
  explicit Once(std::string Name = "once");

  Once(const Once &) = delete;
  Once &operator=(const Once &) = delete;

  ~Once(); // Destroy notification for the completion sync clock.

  /// Runs \p Fn if no call ran it before; otherwise blocks until the
  /// first call completes, then returns (with an acquire edge).
  void doOnce(const std::function<void()> &Fn);

  bool completed() const { return Done; }

private:
  std::string Name;
  race::SyncId Sync;
  bool Done = false;
  bool Running = false;
  WaiterList Waiters;
};

} // namespace rt
} // namespace grs

#endif // GRS_RT_SYNC_H
