//===- rt/Testing.h - Go testing package with t.Parallel() ------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Go's testing package semantics for the parallel table-driven test
/// idiom (Observation 9): subtests launched with t.Run(); a subtest that
/// calls t.Parallel() pauses until its parent's serial phase completes,
/// then all parallel siblings run concurrently. "We found a large class
/// of data races happen due to such concurrent test executions."
///
/// The canonical racy idiom this enables (tests/corpus reproduce it):
/// \code
///   for (auto &TC : Cases)                 // loop variable...
///     T.run(TC.Name, [&](GoTest &Sub) {    // ...captured by reference
///       Sub.parallel();
///       use(TC);                           // races with loop advance
///     });
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_TESTING_H
#define GRS_RT_TESTING_H

#include "rt/Runtime.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace grs {
namespace rt {

/// Handle equivalent to Go's *testing.T. Copyable (shares state).
class GoTest {
public:
  using Body = std::function<void(GoTest &)>;

  /// t.Run(Name, Fn): runs \p Fn as a subtest in its own goroutine.
  /// Returns when the subtest finishes OR calls parallel().
  void run(const std::string &Name, Body Fn);

  /// t.Parallel(): pause this subtest until the parent's serial phase is
  /// over, then resume concurrently with the other parallel subtests.
  /// No-op on a top-level test.
  void parallel();

  /// t.Errorf: records a failure message (test keeps running).
  void errorf(const std::string &Message);

  bool failed() const;
  const std::string &name() const;

private:
  friend struct TestSuiteRunner;
  struct Impl;
  explicit GoTest(std::shared_ptr<Impl> State) : State(std::move(State)) {}

  std::shared_ptr<Impl> State;
};

/// One top-level test function.
struct TestCase {
  std::string Name;
  GoTest::Body Fn;
};

/// Result of running a suite in one runtime (one simulated `go test`
/// process with -race).
struct SuiteResult {
  RunResult Run;
  /// "TestName/subtest: message" for every recorded failure.
  std::vector<std::string> Failures;
  /// Total tests + subtests executed.
  size_t TestsExecuted = 0;
};

/// Runs \p Cases sequentially (Go's default for top-level tests) inside a
/// fresh runtime configured by \p Opts. Subtests may fan out via
/// t.Run()/t.Parallel().
SuiteResult runTestSuite(const RunOptions &Opts,
                         const std::vector<TestCase> &Cases);

} // namespace rt
} // namespace grs

#endif // GRS_RT_TESTING_H
