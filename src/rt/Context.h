//===- rt/Context.h - Go context package ------------------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Go's context package: "Contexts in Go carry deadlines, cancelation
/// signals, and other request-scoped values across API boundaries ...
/// This is a common pattern in microservices where timelines are set for
/// tasks" (paper §4.6). Deadlines are expressed in the runtime's virtual
/// time (scheduler steps); a hidden timer goroutine closes the Done
/// channel at the deadline, exactly the broadcast mechanism Go uses.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_CONTEXT_H
#define GRS_RT_CONTEXT_H

#include "rt/Channel.h"
#include "rt/Runtime.h"

#include <functional>
#include <memory>
#include <string>

namespace grs {
namespace rt {

/// A cancellable context handle (copyable, like Go's interface value).
class Context {
public:
  /// context.Background(): never cancelled.
  static Context background();

  /// context.WithCancel(): \returns the child context and its cancel
  /// function. The cancel function must be invoked from a goroutine.
  static std::pair<Context, std::function<void()>>
  withCancel(const Context &Parent);

  /// context.WithTimeout(): cancels automatically after \p Steps units of
  /// virtual time. Also returns the explicit cancel function.
  static std::pair<Context, std::function<void()>>
  withTimeout(const Context &Parent, uint64_t Steps);

  /// ctx.Done(): closed when the context is cancelled or times out.
  Chan<Unit> &doneChan() const { return S->Done; }

  /// ctx.Err(): empty until cancelled, then "context canceled" or
  /// "context deadline exceeded".
  std::string err() const { return S->Err; }

  bool cancelled() const { return S->Cancelled; }

private:
  struct State {
    explicit State(const std::string &Name) : Done(0, Name) {}
    Chan<Unit> Done;
    bool Cancelled = false;
    std::string Err;
  };

  explicit Context(std::shared_ptr<State> S) : S(std::move(S)) {}

  static void cancelState(const std::shared_ptr<State> &S,
                          const std::string &Reason);

  std::shared_ptr<State> S;
};

} // namespace rt
} // namespace grs

#endif // GRS_RT_CONTEXT_H
