//===- rt/Context.cpp - Go context package ---------------------------------===//

#include "rt/Context.h"

using namespace grs;
using namespace grs::rt;

Context Context::background() {
  return Context(std::make_shared<State>("ctx.background"));
}

void Context::cancelState(const std::shared_ptr<State> &S,
                          const std::string &Reason) {
  if (S->Cancelled)
    return;
  S->Cancelled = true;
  S->Err = Reason;
  S->Done.close();
}

std::pair<Context, std::function<void()>>
Context::withCancel(const Context &Parent) {
  (void)Parent; // Single-level contexts; see DESIGN.md.
  auto S = std::make_shared<State>("ctx.cancel");
  auto Cancel = [S] { cancelState(S, "context canceled"); };
  return {Context(S), Cancel};
}

std::pair<Context, std::function<void()>>
Context::withTimeout(const Context &Parent, uint64_t Steps) {
  (void)Parent;
  auto S = std::make_shared<State>("ctx.timeout");
  Runtime &RT = Runtime::current();
  uint64_t Deadline = RT.stepCount() + Steps;
  RT.go("context.timer", [S, Deadline] {
    Runtime &Inner = Runtime::current();
    Inner.sleepUntilStep(Deadline);
    if (!Inner.aborting())
      cancelState(S, "context deadline exceeded");
  });
  auto Cancel = [S] { cancelState(S, "context canceled"); };
  return {Context(S), Cancel};
}
