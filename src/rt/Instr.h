//===- rt/Instr.h - Instrumented variables and call-chain scopes -*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation surface corpus programs use:
///
///  * FuncScope — RAII frame for the goroutine's call chain, standing in
///    for compiler-inserted instrumentation. Race reports then carry the
///    two call chains the paper's pipeline fingerprints (§3.3.1).
///  * Shared<T> — an instrumented Go variable. Every load/store is a
///    detector event and a potential preemption point. C++ lambdas with
///    `[&]` capture Shared locals by reference exactly like Go closures
///    transparently capture free variables (Observation 3).
///  * GoAtomic<T> — sync/atomic-style cell: atomic ops synchronize (HB
///    edges), and deliberately-unsynchronized raw accesses are available
///    to model the partial-atomics misuse of §4.9.2.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_INSTR_H
#define GRS_RT_INSTR_H

#include "rt/Runtime.h"

#include <string>
#include <utility>

namespace grs {
namespace rt {

/// RAII call-chain frame: push on construction, pop on destruction.
/// Mirrors function-entry instrumentation in an instrumented Go build.
class FuncScope {
public:
  FuncScope(const std::string &Function, const std::string &File,
            uint32_t Line)
      : RT(Runtime::current()), T(RT.tid()) {
    RT.det().pushFrame(T, RT.det().makeFrame(Function, File, Line));
  }

  explicit FuncScope(const std::string &Function)
      : FuncScope(Function, "unknown.go", 0) {}

  ~FuncScope() { RT.det().popFrame(T); }

  FuncScope(const FuncScope &) = delete;
  FuncScope &operator=(const FuncScope &) = delete;

private:
  Runtime &RT;
  race::Tid T;
};

/// Marks the current statement's line number within the innermost frame,
/// standing in for per-statement debug locations.
inline void atLine(uint32_t Line) {
  Runtime &RT = Runtime::current();
  RT.det().setLine(RT.tid(), Line);
}

/// An instrumented Go variable of value type \p T.
///
/// Each Shared owns a virtual shadow address allocated from the active
/// runtime; loads and stores are routed through Runtime::read()/write().
/// Copying a Shared reads the source (like `x := y` in Go) and gives the
/// copy a fresh address (it is a different variable).
template <typename T> class Shared {
public:
  explicit Shared(std::string Name = std::string(), T Init = T())
      : Name(std::move(Name)), A(Runtime::current().allocAddr()),
        Value(std::move(Init)) {}

  Shared(const Shared &Other)
      : Name(Other.Name), A(Runtime::current().allocAddr()),
        Value(Other.load()) {}

  Shared &operator=(const Shared &Other) {
    store(Other.load());
    return *this;
  }

  /// Instrumented read.
  T load() const {
    Runtime::current().read(A, Name);
    return Value;
  }

  /// Instrumented write.
  void store(T NewValue) {
    Runtime::current().write(A, Name);
    Value = std::move(NewValue);
  }

  /// Assignment sugar: `X = V` is an instrumented store.
  Shared &operator=(T NewValue) {
    store(std::move(NewValue));
    return *this;
  }

  /// Conversion sugar: using the variable is an instrumented load.
  operator T() const { return load(); }

  /// Uninstrumented access for assertions in tests (not a program event).
  const T &raw() const { return Value; }
  T &rawMutable() { return Value; }

  race::Addr addr() const { return A; }
  const std::string &name() const { return Name; }

private:
  std::string Name;
  race::Addr A;
  T Value;
};

/// A sync/atomic-style cell: store() is a release, load() an acquire, so
/// properly paired atomic accesses never race. rawLoad()/rawStore() touch
/// the same location *without* synchronization, modelling developers who
/// "used sync.Atomic partially — used for writing to a shared variable but
/// forgot to use it to read from the same variable" (§4.9.2).
template <typename T> class GoAtomic {
public:
  explicit GoAtomic(std::string Name = std::string(), T Init = T())
      : Name(std::move(Name)), A(Runtime::current().allocAddr()),
        Sync(Runtime::current().det().newSyncVar(this->Name + ".atomic")),
        Value(std::move(Init)) {}

  GoAtomic(const GoAtomic &) = delete;
  GoAtomic &operator=(const GoAtomic &) = delete;

  /// Atomic load. The access is recorded between an acquire and a release
  /// of the cell's sync var, so atomic ops are totally ordered among
  /// themselves (seq-cst modelling: no atomic/atomic false positives)
  /// while still racing against plain accesses of the same cell.
  T load() const {
    Runtime &RT = Runtime::current();
    RT.preemptPoint();
    RT.det().annotate(race::EventKind::AtomicOp, RT.tid(), A,
                      /*Flag=*/false, &Name);
    RT.det().acquire(RT.tid(), Sync);
    if (RT.options().DetectRaces)
      RT.det().onRead(RT.tid(), A, Name);
    RT.det().releaseMerge(RT.tid(), Sync);
    return Value;
  }

  /// Atomic store; see load() for the synchronization recipe.
  void store(T NewValue) {
    Runtime &RT = Runtime::current();
    RT.preemptPoint();
    RT.det().annotate(race::EventKind::AtomicOp, RT.tid(), A,
                      /*Flag=*/true, &Name);
    RT.det().acquire(RT.tid(), Sync);
    if (RT.options().DetectRaces)
      RT.det().onWrite(RT.tid(), A, Name);
    RT.det().releaseMerge(RT.tid(), Sync);
    Value = std::move(NewValue);
  }

  /// Atomic read-modify-write add (returns the new value).
  T add(T Delta) {
    Runtime &RT = Runtime::current();
    RT.preemptPoint();
    RT.det().annotate(race::EventKind::AtomicOp, RT.tid(), A,
                      /*Flag=*/true, &Name);
    RT.det().acquire(RT.tid(), Sync);
    if (RT.options().DetectRaces) {
      RT.det().onRead(RT.tid(), A, Name);
      RT.det().onWrite(RT.tid(), A, Name);
    }
    RT.det().releaseMerge(RT.tid(), Sync);
    Value = Value + Delta;
    return Value;
  }

  /// Plain (racy) load of the same cell — the §4.9.2 misuse.
  T rawLoad() const {
    Runtime::current().read(A, Name);
    return Value;
  }

  /// Plain (racy) store of the same cell.
  void rawStore(T NewValue) {
    Runtime::current().write(A, Name);
    Value = std::move(NewValue);
  }

private:
  std::string Name;
  race::Addr A;
  race::SyncId Sync;
  T Value;
};

/// Go's `defer`: runs the given action at scope exit, in reverse
/// declaration order (C++ destructor order), like deferred calls running
/// at function return.
class Defer {
public:
  explicit Defer(std::function<void()> Action) : Action(std::move(Action)) {}
  ~Defer() {
    if (Action)
      Action();
  }
  Defer(const Defer &) = delete;
  Defer &operator=(const Defer &) = delete;

private:
  std::function<void()> Action;
};

} // namespace rt
} // namespace grs

#endif // GRS_RT_INSTR_H
