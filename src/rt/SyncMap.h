//===- rt/SyncMap.h - sync.Map (the thread-safe map) ------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Go's sync.Map: the standard-library answer to Observation 5's
/// thread-unsafe built-in map. Internally an ordinary GoMap guarded by a
/// Mutex — every operation is lock-protected and release/acquire-ordered,
/// so concurrent use is race-free by construction (corpus fixed-variants
/// and tests rely on this).
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_SYNCMAP_H
#define GRS_RT_SYNCMAP_H

#include "rt/GoMap.h"
#include "rt/Sync.h"

#include <string>
#include <utility>

namespace grs {
namespace rt {

/// sync.Map with Go's Store/Load/LoadOrStore/Delete/Range API.
template <typename K, typename V> class SyncMap {
public:
  explicit SyncMap(std::string Name = "syncmap")
      : Inner(Name + ".inner"), Mu(Name + ".mu") {}

  SyncMap(const SyncMap &) = delete;
  SyncMap &operator=(const SyncMap &) = delete;

  /// m.Store(k, v).
  void store(const K &Key, V Value) {
    LockGuard<Mutex> Guard(Mu);
    Inner.set(Key, std::move(Value));
  }

  /// v, ok := m.Load(k).
  std::pair<V, bool> load(const K &Key) {
    LockGuard<Mutex> Guard(Mu);
    return Inner.getOk(Key);
  }

  /// actual, loaded := m.LoadOrStore(k, v).
  std::pair<V, bool> loadOrStore(const K &Key, V Value) {
    LockGuard<Mutex> Guard(Mu);
    auto [Existing, Found] = Inner.getOk(Key);
    if (Found)
      return {Existing, true};
    Inner.set(Key, Value);
    return {std::move(Value), false};
  }

  /// m.Delete(k).
  void erase(const K &Key) {
    LockGuard<Mutex> Guard(Mu);
    Inner.erase(Key);
  }

  /// m.Range(fn) — fn returns false to stop early.
  template <typename Fn> void range(Fn Visit) {
    LockGuard<Mutex> Guard(Mu);
    bool Stopped = false;
    Inner.forEach([&](const K &Key, const V &Value) {
      if (!Stopped && !Visit(Key, Value))
        Stopped = true;
    });
  }

  size_t len() {
    LockGuard<Mutex> Guard(Mu);
    return Inner.len();
  }

private:
  GoMap<K, V> Inner;
  Mutex Mu;
};

} // namespace rt
} // namespace grs

#endif // GRS_RT_SYNCMAP_H
