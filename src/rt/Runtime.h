//===- rt/Runtime.h - Go-like deterministic concurrency runtime -*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature Go-like concurrency runtime: goroutines as ucontext fibers
/// multiplexed onto the calling OS thread by a seed-deterministic
/// scheduler, with every instrumented memory access doubling as a
/// potential preemption point.
///
/// Why a deterministic runtime? The paper's §3 is entirely about the
/// consequences of *non-deterministic* dynamic race detection ("the
/// detected set of races depend on the thread interleavings and can vary
/// across multiple runs"). Replaying that phenomenology under test
/// requires controlling it: here every run is a pure function of
/// (program, seed), so flakiness becomes a seed sweep instead of an OS
/// scheduling accident, while the happens-before detector observes exactly
/// the events a real ThreadSanitizer-instrumented Go program would emit.
///
/// Execution model:
///  * `Runtime::run(Main)` runs \p Main as goroutine 0 and schedules until
///    every goroutine finished, is permanently blocked (leak/deadlock), or
///    the step limit is hit.
///  * `go()` spawns a goroutine; the spawn is a happens-before edge.
///  * Blocking primitives (channels, mutexes, WaitGroups) park the current
///    fiber; state changes wake all parked waiters, which re-check their
///    condition (no lost wakeups by construction).
///  * Virtual time = scheduler steps; timers (used by Context deadlines)
///    fire on step counts and jump forward when the system would otherwise
///    idle.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RT_RUNTIME_H
#define GRS_RT_RUNTIME_H

#include "race/Detector.h"
#include "support/Rng.h"

#include <atomic>
#include <chrono>
#include <csetjmp>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace grs {

namespace obs {
class Counter;
class DetectorObserver;
class Histogram;
class Registry;
class RuntimeInstruments;
class TimelineTrack;
} // namespace obs

namespace rt {

/// A Go panic ("send on closed channel", negative WaitGroup counter, or a
/// user panic()). Thrown inside the offending goroutine and recorded on
/// the RunResult; never escapes Runtime::run().
class GoPanic {
public:
  explicit GoPanic(std::string Message) : Message(std::move(Message)) {}
  const std::string &message() const { return Message; }

private:
  std::string Message;
};

/// Thrown into parked fibers during teardown so their stacks unwind; never
/// visible to user code (do not catch(...) inside goroutines).
class AbortFiber {};

/// Scheduler and detector configuration for one run.
struct RunOptions {
  /// Seed for all scheduling decisions. A run is a pure function of the
  /// program and this seed.
  uint64_t Seed = 1;
  /// Probability of switching goroutines at each instrumented access.
  double PreemptProbability = 0.2;
  /// Which execution attempt of this (program, seed) this run is, 1-based.
  /// Purely informational for the scheduler (it does NOT perturb any
  /// scheduling decision — retries of deterministic runs stay
  /// bit-identical); fault injection reads it so attempt-gated faults
  /// (inject::FaultSpec::LethalAttempts) model transient crashers that
  /// recover on a retry. Executors that re-run a slot (sweep::resilient,
  /// sweep::isolated) set it to the current attempt number.
  uint32_t Attempt = 1;
  /// Guard against livelock: abort after this many scheduling steps.
  uint64_t MaxSteps = 2'000'000;
  /// Per-goroutine fiber stack size in bytes.
  size_t StackBytes = 256 * 1024;
  /// Detector configuration (mode, throttling, chain retention).
  race::DetectorOptions Detector;
  /// When false, memory accesses are not sent to the detector at all --
  /// the "race detection disabled" baseline for the §3.5 overhead
  /// experiment.
  bool DetectRaces = true;
  /// Optional observer invoked on every race report as it is emitted
  /// (with the owning detector, for interner access). Lets callers that
  /// only receive a RunResult — e.g. corpus pattern runners — still
  /// render or fingerprint the reports.
  std::function<void(const race::Detector &, const race::RaceReport &)>
      OnReport;
  /// Optional event-trace tee (borrowed; must outlive the run): installed
  /// on the detector so every instrumentation event of the run is also
  /// streamed to the observer. Attach a trace::TraceSink to capture a
  /// replayable binary trace of the execution (see trace/Trace.h).
  race::EventObserver *Trace = nullptr;
  /// Optional metrics registry (borrowed; must outlive the run). When
  /// set, the runtime instruments its scheduler seams (`grs_rt_*`:
  /// context switches, spawns, blocks, preemptions per seed, channel and
  /// select operations) and installs a metrics-backed EventObserver on
  /// the detector (`grs_race_*`), chaining to Trace when both are set.
  /// When null — the default — every instrumentation site collapses to a
  /// null-handle check (the zero-overhead-when-disabled contract).
  obs::Registry *Metrics = nullptr;
  /// Optional flight-recorder lane (borrowed; must outlive the run).
  /// Executors set it to the worker's obs::Timeline track so run-scoped
  /// spans (e.g. lang:: interpretation) land in the right timeline lane.
  /// Recording never consumes scheduler RNG, so a traced run stays
  /// bit-identical to an untraced one. Null by default — the timeline's
  /// zero-overhead-when-disabled contract.
  obs::TimelineTrack *TimelineTrack = nullptr;
  /// Wall-clock watchdog budget in milliseconds; 0 (the default)
  /// disables the watchdog entirely. When set, the run is bounded in
  /// REAL time, not just virtual steps: the scheduler checks the
  /// deadline at scheduling points (the soft path, for bodies that
  /// yield but run long), and a monitor thread aborts a goroutine that
  /// burns CPU without ever reaching a scheduling point (the hard path
  /// — a tight spin never consumes steps, so MaxSteps alone cannot
  /// fire). Either path surfaces as RunResult::WatchdogFired instead of
  /// a hang. Note the hard path abandons the offending fiber's stack
  /// without unwinding it (its destructors never run), which is the
  /// price of recovering the thread from non-cooperative code; the
  /// fiber's memory itself is still released with the Runtime.
  uint64_t WatchdogMillis = 0;
  /// Monitor-thread poll interval for the hard watchdog path. The
  /// worst-case recovery latency for a never-yielding body is about
  /// WatchdogMillis + WatchdogPollMillis.
  uint64_t WatchdogPollMillis = 5;
  /// Optional deterministic choice hook: when set, EVERY scheduling
  /// choice point (which runnable goroutine to resume, which ready select
  /// arm to take) calls it with the number of options and uses the
  /// returned index (clamped). \p ContinueIndex is the option that
  /// continues the currently running goroutine (scheduler picks only), or
  /// SIZE_MAX when no such preference exists (select arms, blocked
  /// current goroutine) — exploration uses it for CHESS-style preemption
  /// bounding. When unset, choices come from the seeded RNG. For full
  /// determinism set PreemptProbability to 0 or 1 so no probabilistic
  /// coin flips remain.
  std::function<size_t(size_t NumChoices, size_t ContinueIndex)> ChoiceHook;
};

/// Outcome of one Runtime::run().
struct RunResult {
  /// True if goroutine 0 (main) ran to completion.
  bool MainFinished = false;
  /// True if main was still blocked when no goroutine could run: Go's
  /// "fatal error: all goroutines are asleep - deadlock!".
  bool Deadlocked = false;
  /// True if the step limit aborted the run.
  bool StepLimitHit = false;
  /// Goroutines (names) still parked when the run ended: leaks, such as
  /// Listing 9's Future goroutine blocking forever on `f.ch <- 1`.
  std::vector<std::string> LeakedGoroutines;
  /// Panic messages from any goroutine.
  std::vector<std::string> Panics;
  /// Non-Go exceptions (C++ exceptions from foreign code called inside a
  /// goroutine body) captured at the fiber boundary. Like Panics these
  /// never escape run(): a misbehaving body loses its own run, not the
  /// whole sweep that hosts it.
  std::vector<std::string> ForeignExceptions;
  /// True if the wall-clock watchdog (RunOptions::WatchdogMillis) ended
  /// the run — soft (deadline seen at a scheduling point) or hard (a
  /// goroutine never yielded and was abandoned by the monitor thread).
  bool WatchdogFired = false;
  /// Which watchdog path fired and on what ("soft: ..." / "hard: ...").
  /// Deliberately free of step counts and timings so the field is
  /// deterministic for deterministic faults.
  std::string WatchdogDetail;
  /// Scheduling steps consumed.
  uint64_t Steps = 0;
  /// Number of race reports emitted by the detector.
  size_t RaceCount = 0;

  bool clean() const {
    return MainFinished && !Deadlocked && !StepLimitHit && !WatchdogFired &&
           LeakedGoroutines.empty() && Panics.empty() &&
           ForeignExceptions.empty() && RaceCount == 0;
  }
};

/// The runtime: one instance per simulated program execution (like one Go
/// test process). Not reentrant and not thread-safe; all goroutines run on
/// the thread that called run().
class Runtime {
public:
  explicit Runtime(RunOptions Opts = RunOptions());
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  /// Runs \p Main as goroutine 0 to completion (see file comment).
  /// May be called once per Runtime.
  RunResult run(std::function<void()> Main);

  /// The runtime currently executing on this thread. Only valid inside
  /// run(); used by the Go-like primitives (Chan, Mutex, Shared, ...).
  static Runtime &current();
  /// \returns nullptr when no runtime is active on this thread.
  static Runtime *currentOrNull();

  //===------------------------------------------------------------------===//
  // Goroutine interface (called from inside goroutines)
  //===------------------------------------------------------------------===//

  /// Spawns a goroutine running \p Body. \p Name appears in leak
  /// diagnostics and as the root frame of the goroutine's call chains.
  race::Tid go(const std::string &Name, std::function<void()> Body);

  /// Id of the running goroutine.
  race::Tid tid() const;

  /// Possibly switches to another runnable goroutine (probability
  /// RunOptions::PreemptProbability). Called implicitly by every
  /// instrumented access.
  void preemptPoint();

  /// Unconditionally reschedules.
  void yieldNow();

  /// Parks the current goroutine until some primitive calls wakeAll()/
  /// unblock() for it. \p Reason appears in leak/deadlock diagnostics.
  void blockCurrent(const char *Reason);

  /// Makes \p T runnable if it is parked (no-op otherwise).
  void unblock(race::Tid T);

  /// Parks the current goroutine until virtual time \p Step.
  void sleepUntilStep(uint64_t Step);

  /// Current virtual time (scheduling steps so far).
  uint64_t stepCount() const { return Steps; }

  /// Raises a Go panic in the current goroutine.
  [[noreturn]] void panicNow(std::string Message);

  /// Resolves one nondeterministic choice among \p NumChoices options
  /// via ChoiceHook when installed, else the seeded RNG. Used by the
  /// scheduler and by select; custom primitives with nondeterministic
  /// choices should use it too so exploration can drive them.
  /// \p ContinueIndex is the non-preempting option (see
  /// RunOptions::ChoiceHook), SIZE_MAX when none.
  size_t pickChoice(size_t NumChoices, size_t ContinueIndex = SIZE_MAX);

  //===------------------------------------------------------------------===//
  // Instrumentation interface
  //===------------------------------------------------------------------===//

  /// Allocates \p Count fresh virtual shadow addresses. Virtual addresses
  /// are never reused, so recycled C++ stack/heap storage cannot alias
  /// stale shadow cells.
  race::Addr allocAddr(size_t Count = 1);

  /// Instrumented read/write of \p A by the current goroutine: preemption
  /// point + detector event (when DetectRaces).
  void read(race::Addr A, const std::string &Name = std::string());
  void write(race::Addr A, const std::string &Name = std::string());

  race::Detector &det() { return *Det; }
  const race::Detector &det() const { return *Det; }

  /// The metrics registry of this run, or nullptr (RunOptions::Metrics).
  obs::Registry *metrics() const { return Opts.Metrics; }

  /// Records one select statement resolving with \p ReadyArms ready arms
  /// (0 for the default arm). Called by rt::Selector.
  void noteSelect(size_t ReadyArms);

  /// Records channel operations (called by rt::Chan alongside the trace
  /// annotations; kept separate so counts exist without an observer).
  void noteChanSend();
  void noteChanRecv();
  void noteChanClose();

  support::Rng &rng() { return SchedRng; }

  const RunOptions &options() const { return Opts; }

  /// True once teardown started; blocking loops re-check and unwind.
  bool aborting() const { return Aborting; }

private:
  struct Goroutine;
  friend struct Goroutine;

  void schedulerLoop();
  void resumeGoroutine(size_t Index);
  void switchToScheduler();
  void fiberEntry();
  void checkAbort();
  static void fiberTrampoline();
  void runScheduler();
  void hardWatchdogAbort();
  friend void watchdogSignalJump(Runtime &RT);

  RunOptions Opts;
  std::unique_ptr<race::Detector> Det;
  support::Rng SchedRng;
  /// Metrics handles, copied from the registry's cached
  /// obs::RuntimeInstruments bundle so the hot path is a plain increment
  /// and repeated Runtime construction skips re-registration (all null
  /// when RunOptions::Metrics is null).
  obs::Counter *MCtxSwitches = nullptr;
  obs::Counter *MSpawns = nullptr;
  obs::Counter *MBlocks = nullptr;
  obs::Counter *MPreemptions = nullptr;
  obs::Counter *MYields = nullptr;
  obs::Counter *MSteps = nullptr;
  obs::Counter *MSelects = nullptr;
  obs::Counter *MChanSends = nullptr;
  obs::Counter *MChanRecvs = nullptr;
  obs::Counter *MChanCloses = nullptr;
  obs::Histogram *MSelectReady = nullptr;
  /// The registry's handle bundle (null without metrics); also the pool
  /// the detector observer is returned to at destruction.
  obs::RuntimeInstruments *MInstruments = nullptr;
  /// Pooled metrics-backed detector observer, borrowed from MInstruments
  /// for this Runtime's lifetime (see RunOptions::Metrics).
  obs::DetectorObserver *MetricsObserver = nullptr;
  std::vector<std::unique_ptr<Goroutine>> Goroutines;
  size_t CurrentIndex = 0;
  uint64_t Steps = 0;
  race::Addr NextAddr = 0x1000;
  bool Running = false;
  bool Aborting = false;
  RunResult Result;
  /// Opaque storage for the scheduler's own ucontext.
  std::unique_ptr<char[]> SchedCtxStorage;
  //===------------------------------------------------------------------===//
  // Watchdog state (all inert when RunOptions::WatchdogMillis == 0)
  //===------------------------------------------------------------------===//
  /// Monotone progress stamp the monitor thread watches: bumped at every
  /// scheduling step, so "unchanged for the whole budget" means the
  /// current goroutine never reached a scheduling point.
  std::atomic<uint64_t> WatchdogProgress{0};
  /// Soft-path deadline, checked at scheduling points.
  std::chrono::steady_clock::time_point WatchdogDeadline;
  bool WatchdogArmed = false;
  /// Recovery point for the hard path: the monitor thread signals this
  /// runtime's thread and the handler siglongjmps here, abandoning the
  /// stuck fiber's stack.
  sigjmp_buf WatchdogJmp;
};

//===----------------------------------------------------------------------===//
// Free-function sugar (operate on Runtime::current())
//===----------------------------------------------------------------------===//

/// Spawns a goroutine on the current runtime (the `go func(){...}()`
/// statement).
inline race::Tid go(const std::string &Name, std::function<void()> Body) {
  return Runtime::current().go(Name, std::move(Body));
}

/// Voluntary reschedule (runtime.Gosched()).
inline void gosched() { Runtime::current().yieldNow(); }

/// Convenience: builds a RunOptions with the given seed.
inline RunOptions withSeed(uint64_t Seed) {
  RunOptions Opts;
  Opts.Seed = Seed;
  return Opts;
}

/// Re-initializes this runtime's process-global state in a freshly forked
/// child (sweep::isolated's sandbox children call this first): clears any
/// inherited active-runtime thread-locals and hard-watchdog latches and
/// re-installs the SIGURG disposition so the child's own watchdog-armed
/// runs behave exactly like a fresh process. Async-signal-safety is not
/// required here — the child is single-threaded right after fork() and has
/// not yet run anything.
void prepareChildAfterFork();

/// Self-calibrated hard-watchdog budget: times a fixed scheduler micro-run
/// once per process and returns 50x that measurement (at least
/// \p FloorMillis), so budgets scale with actual machine speed instead of
/// a static guess that trips the soft path on loaded hosts (the DESIGN.md
/// §9 calibration caveat). Deterministic runs are unaffected — the budget
/// only bounds wall-clock recovery, never scheduling decisions.
uint64_t calibratedWatchdogBudgetMillis(uint64_t FloorMillis = 200);

} // namespace rt
} // namespace grs

#endif // GRS_RT_RUNTIME_H
