//===- analysis/ConstructCounter.h - Table 1 feature census -----*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrency-construct census of Table 1 (§2): counts of
/// concurrency creation, point-to-point synchronization, and group
/// communication constructs, per language, from token streams.
///
/// Counted constructs mirror the paper's:
///  * Go   — `go` statements; .Lock()/.Unlock(); .RLock()/.RUnlock();
///           channel `<-` operators; `WaitGroup` mentions; `map[`
///           constructs.
///  * Java — .start() calls; `synchronized`; .acquire()/.release();
///           .lock()/.unlock(); CyclicBarrier/CountDownLatch/Phaser;
///           *Map type mentions.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_ANALYSIS_CONSTRUCTCOUNTER_H
#define GRS_ANALYSIS_CONSTRUCTCOUNTER_H

#include "analysis/Lexer.h"

#include <cstdint>

namespace grs {
namespace analysis {

/// Construct counts for one corpus (absolute, plus the line total used to
/// normalize per MLoC).
struct ConstructCounts {
  uint64_t Lines = 0;
  // Concurrency creation.
  uint64_t GoStatements = 0;     ///< Go: `go <call>`.
  uint64_t ThreadStarts = 0;     ///< Java: `.start()`.
  // Point-to-point synchronization.
  uint64_t Synchronized = 0;     ///< Java keyword.
  uint64_t AcquireRelease = 0;   ///< Java .acquire()/.release().
  uint64_t LockUnlock = 0;       ///< .Lock()/.Unlock() (Go), .lock()/.unlock() (Java).
  uint64_t RLockRUnlock = 0;     ///< Go .RLock()/.RUnlock().
  uint64_t ChannelOps = 0;       ///< Go `<-` sends/receives.
  // Group communication.
  uint64_t WaitGroups = 0;       ///< Go WaitGroup mentions.
  uint64_t BarrierLatchPhaser = 0; ///< Java group constructs.
  // Built-in / library maps (§4.4's 1.34x density comparison).
  uint64_t MapConstructs = 0;

  uint64_t concurrencyCreation() const {
    return GoStatements + ThreadStarts;
  }
  uint64_t pointToPoint() const {
    return Synchronized + AcquireRelease + LockUnlock + RLockRUnlock +
           ChannelOps;
  }
  uint64_t groupCommunication() const {
    return WaitGroups + BarrierLatchPhaser;
  }

  /// \returns \p Count normalized per million lines.
  double perMLoC(uint64_t Count) const {
    if (Lines == 0)
      return 0.0;
    return static_cast<double>(Count) * 1'000'000.0 /
           static_cast<double>(Lines);
  }

  /// Accumulates another file/corpus into this one.
  ConstructCounts &operator+=(const ConstructCounts &Other);
};

/// Counts constructs in one file's \p Source.
ConstructCounts countConstructs(Lang Language, std::string_view Source);

/// Token-stream variant when the caller already lexed.
ConstructCounts countConstructs(Lang Language,
                                const std::vector<Token> &Tokens,
                                uint64_t Lines);

} // namespace analysis
} // namespace grs

#endif // GRS_ANALYSIS_CONSTRUCTCOUNTER_H
