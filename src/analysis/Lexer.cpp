//===- analysis/Lexer.cpp - Go/Java tokenizers ------------------------------===//

#include "analysis/Lexer.h"

#include <algorithm>
#include <array>
#include <cctype>

using namespace grs;
using namespace grs::analysis;

static const char *const GoKeywords[] = {
    "break",    "case",   "chan",  "const",       "continue", "default",
    "defer",    "else",   "fallthrough", "for",   "func",     "go",
    "goto",     "if",     "import", "interface",  "map",      "package",
    "range",    "return", "select", "struct",     "switch",   "type",
    "var",
};

static const char *const JavaKeywords[] = {
    "abstract", "assert",    "boolean", "break",      "byte",     "case",
    "catch",    "char",      "class",   "const",      "continue", "default",
    "do",       "double",    "else",    "enum",       "extends",  "final",
    "finally",  "float",     "for",     "goto",       "if",       "implements",
    "import",   "instanceof","int",     "interface",  "long",     "native",
    "new",      "package",   "private", "protected",  "public",   "return",
    "short",    "static",    "strictfp","super",      "switch",
    "synchronized", "this",  "throw",   "throws",     "transient","try",
    "void",     "volatile",  "while",
};

bool grs::analysis::isKeyword(Lang Language, std::string_view Word) {
  auto Contains = [Word](const auto &List) {
    return std::any_of(std::begin(List), std::end(List),
                       [Word](const char *K) { return Word == K; });
  };
  return Language == Lang::Go ? Contains(GoKeywords) : Contains(JavaKeywords);
}

namespace {
/// Cursor over the source text with line tracking.
class Cursor {
public:
  explicit Cursor(std::string_view Text) : Text(Text) {}

  bool atEnd() const { return Pos >= Text.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Text.size() ? Text[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Text[Pos++];
    if (C == '\n')
      ++Line;
    return C;
  }
  bool consume(char C) {
    if (peek() != C)
      return false;
    advance();
    return true;
  }

  uint32_t line() const { return Line; }

private:
  std::string_view Text;
  size_t Pos = 0;
  uint32_t Line = 1;
};
} // namespace

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
static bool isIdentCont(char C) {
  return isIdentStart(C) || std::isdigit(static_cast<unsigned char>(C));
}

std::vector<Token> grs::analysis::lex(Lang Language,
                                      std::string_view Source) {
  std::vector<Token> Tokens;
  Cursor C(Source);

  auto Emit = [&Tokens](TokKind Kind, std::string Text, uint32_t Line) {
    Tokens.push_back(Token{Kind, std::move(Text), Line});
  };

  while (!C.atEnd()) {
    uint32_t Line = C.line();
    char Ch = C.peek();

    // Whitespace.
    if (Ch == ' ' || Ch == '\t' || Ch == '\r' || Ch == '\n') {
      C.advance();
      continue;
    }

    // Comments: // ... and /* ... */ in both languages.
    if (Ch == '/' && C.peek(1) == '/') {
      while (!C.atEnd() && C.peek() != '\n')
        C.advance();
      continue;
    }
    if (Ch == '/' && C.peek(1) == '*') {
      C.advance();
      C.advance();
      while (!C.atEnd() && !(C.peek() == '*' && C.peek(1) == '/'))
        C.advance();
      if (!C.atEnd()) {
        C.advance();
        C.advance();
      }
      continue;
    }

    // String literals: "..." (both), `...` raw (Go only).
    if (Ch == '"' || (Language == Lang::Go && Ch == '`')) {
      char Quote = C.advance();
      std::string Text;
      while (!C.atEnd() && C.peek() != Quote) {
        if (Quote == '"' && C.peek() == '\\') {
          C.advance(); // Skip the backslash; keep the escaped char.
          if (C.atEnd())
            break;
        }
        Text.push_back(C.advance());
      }
      if (!C.atEnd())
        C.advance(); // Closing quote.
      Emit(TokKind::String, std::move(Text), Line);
      continue;
    }

    // Rune / char literal.
    if (Ch == '\'') {
      C.advance();
      std::string Text;
      while (!C.atEnd() && C.peek() != '\'') {
        if (C.peek() == '\\') {
          C.advance();
          if (C.atEnd())
            break;
        }
        Text.push_back(C.advance());
      }
      if (!C.atEnd())
        C.advance();
      Emit(TokKind::Rune, std::move(Text), Line);
      continue;
    }

    // Identifiers / keywords.
    if (isIdentStart(Ch)) {
      std::string Word;
      while (!C.atEnd() && isIdentCont(C.peek()))
        Word.push_back(C.advance());
      TokKind Kind = isKeyword(Language, Word) ? TokKind::Keyword
                                               : TokKind::Identifier;
      Emit(Kind, std::move(Word), Line);
      continue;
    }

    // Numbers (loose: digits, dots, hex letters, exponents).
    if (std::isdigit(static_cast<unsigned char>(Ch))) {
      std::string Num;
      while (!C.atEnd() &&
             (isIdentCont(C.peek()) || C.peek() == '.' ||
              ((C.peek() == '+' || C.peek() == '-') && !Num.empty() &&
               (Num.back() == 'e' || Num.back() == 'E'))))
        Num.push_back(C.advance());
      Emit(TokKind::Number, std::move(Num), Line);
      continue;
    }

    // Multi-char operators we care about, longest first.
    static const std::string_view MultiOps[] = {
        "<-", ":=", "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=",
        "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
        "|=", "^=", "->", "...",
    };
    bool Matched = false;
    for (std::string_view Op : MultiOps) {
      bool Ok = true;
      for (size_t I = 0; I < Op.size(); ++I)
        if (C.peek(I) != Op[I]) {
          Ok = false;
          break;
        }
      if (Ok) {
        for (size_t I = 0; I < Op.size(); ++I)
          C.advance();
        Emit(TokKind::Operator, std::string(Op), Line);
        Matched = true;
        break;
      }
    }
    if (Matched)
      continue;

    // Single-char punctuation and operators.
    C.advance();
    static const std::string_view Puncts = "()[]{},;";
    if (Puncts.find(Ch) != std::string_view::npos)
      Emit(TokKind::Punct, std::string(1, Ch), Line);
    else
      Emit(TokKind::Operator, std::string(1, Ch), Line);
  }

  Emit(TokKind::EndOfFile, "", C.line());
  return Tokens;
}

std::vector<Token> grs::analysis::insertSemicolons(std::vector<Token> Tokens) {
  auto EndsStatement = [](const Token &T) {
    switch (T.Kind) {
    case TokKind::Identifier:
    case TokKind::Number:
    case TokKind::String:
    case TokKind::Rune:
      return true;
    case TokKind::Keyword:
      return T.Text == "return" || T.Text == "break" ||
             T.Text == "continue" || T.Text == "fallthrough";
    case TokKind::Operator:
      return T.Text == "++" || T.Text == "--";
    case TokKind::Punct:
      return T.Text == ")" || T.Text == "]" || T.Text == "}";
    default:
      return false;
    }
  };

  std::vector<Token> Out;
  Out.reserve(Tokens.size() + Tokens.size() / 4);
  for (size_t I = 0; I < Tokens.size(); ++I) {
    if (!Out.empty() && Tokens[I].Line > Out.back().Line &&
        EndsStatement(Out.back()))
      Out.push_back(Token{TokKind::Punct, ";", Out.back().Line});
    Out.push_back(std::move(Tokens[I]));
  }
  return Out;
}
