//===- analysis/SourceGen.cpp - Calibrated synthetic source corpus ---------===//

#include "analysis/SourceGen.h"

#include <array>

using namespace grs;
using namespace grs::analysis;

GenProfile GenProfile::goMonorepo() {
  GenProfile P;
  // Table 1, normalized per MLoC over 46 MLoC.
  P.GoStatements = 11515.0 / 46.0;     // 250.3
  P.LockUnlock = 19062.0 / 46.0;       // 414.4
  P.RLockRUnlock = 5511.0 / 46.0;      // 119.8
  P.ChannelOps = 10120.0 / 46.0;       // 220.0
  P.WaitGroups = 4795.0 / 46.0;        // 104.2
  P.MapConstructs = 5950.0;            // §4.4: "5950 per MLoC".
  return P;
}

GenProfile GenProfile::javaMonorepo() {
  GenProfile P;
  // Table 1, normalized per MLoC over 19 MLoC.
  P.ThreadStarts = 4162.0 / 19.0;      // 219.1
  P.Synchronized = 2378.0 / 19.0;      // 125.2
  P.AcquireRelease = 652.0 / 19.0;     // 34.3
  P.LockUnlock = 624.0 / 19.0;         // 32.8
  P.BarrierLatchPhaser = 1007.0 / 19.0;// 53.0
  P.MapConstructs = 4389.0;            // §4.4: "4389 per MLoC".
  return P;
}

namespace {
/// One line-template per countable construct; each emits exactly one
/// counted instance.
struct ConstructTemplate {
  double GenProfile::*Density;
  const char *const *Lines;
  size_t NumLines;
};
} // namespace

static const char *const GoGoLines[] = {
    "\tgo processItem(item)",
    "\tgo func() { handle(req) }()",
    "\tgo worker.run(ctx)",
};
static const char *const GoLockLines[] = {
    "\tmu.Lock()",
    "\tmu.Unlock()",
    "\tdefer s.mtx.Unlock()",
};
static const char *const GoRLockLines[] = {
    "\tmu.RLock()",
    "\tmu.RUnlock()",
    "\tdefer cache.mtx.RUnlock()",
};
static const char *const GoChanLines[] = {
    "\tresults <- value",
    "\tmsg := <-inbox",
    "\tdone <- struct{}{}",
};
static const char *const GoWgLines[] = {
    "\tvar wg sync.WaitGroup",
    "\twg := &sync.WaitGroup{}",
};
static const char *const GoMapLines[] = {
    "\tindex := make(map[string]int)",
    "\tvar seen map[int]bool",
    "\tcache := map[string]error{}",
};

static const char *const JavaStartLines[] = {
    "        worker.start();",
    "        new Thread(task).start();",
};
static const char *const JavaSyncLines[] = {
    "        synchronized (this) {",
    "    public synchronized void update() {",
};
static const char *const JavaAcquireLines[] = {
    "        semaphore.acquire();",
    "        permits.release();",
};
static const char *const JavaLockLines[] = {
    "        mutex.lock();",
    "        mutex.unlock();",
};
static const char *const JavaGroupLines[] = {
    "        CountDownLatch latch = makeLatch(n);",
    "        CyclicBarrier barrier = makeBarrier(parties);",
    "        Phaser phaser = makePhaser();",
};
static const char *const JavaMapLines[] = {
    "        HashMap<String, Integer> index = makeIndex();",
    "        ConcurrentHashMap<Long, String> cache;",
    "        TreeMap<Integer, String> ordered = build();",
};

// Filler lines are brace-balanced so the generated corpus is also valid
// input for the Go-subset parser (ParserStress exercises exactly that).
static const char *const GoFillerLines[] = {
    "\tvalue := compute(input)",
    "\tif err != nil { return 0, err }",
    "\tcount++",
    "\t// go through the checklist and acquire approvals",
    "\tlog.Info(\"Lock() acquired upstream <- not really\")",
    "\tresult = append(result, entry)",
    "\tfor i := 0; i < n; i++ { total += weights[i] }",
    "\ts := fmt.Sprintf(\"%d items\", n)",
    "\tentry := lookup(key)",
    "\tuse(entry)",
};
static const char *const JavaFillerLines[] = {
    "        int value = compute(input);",
    "        if (value < 0) { value = -value; }",
    "        counter++;",
    "        // synchronized access happens via start() of the pool",
    "        String s = \"acquire the lock() before Map access\";",
    "        results.add(entry);",
    "        for (int i = 0; i < n; i++) { total += weights[i]; }",
    "        Object entry = lookup(key);",
};

std::string grs::analysis::generateCorpus(Lang Language,
                                          const GenProfile &Profile,
                                          size_t Lines, uint64_t Seed) {
  support::Rng Rng(Seed);

  std::vector<ConstructTemplate> Templates;
  const char *const *Fillers;
  size_t NumFillers;
  if (Language == Lang::Go) {
    Templates = {
        {&GenProfile::GoStatements, GoGoLines, std::size(GoGoLines)},
        {&GenProfile::LockUnlock, GoLockLines, std::size(GoLockLines)},
        {&GenProfile::RLockRUnlock, GoRLockLines, std::size(GoRLockLines)},
        {&GenProfile::ChannelOps, GoChanLines, std::size(GoChanLines)},
        {&GenProfile::WaitGroups, GoWgLines, std::size(GoWgLines)},
        {&GenProfile::MapConstructs, GoMapLines, std::size(GoMapLines)},
    };
    Fillers = GoFillerLines;
    NumFillers = std::size(GoFillerLines);
  } else {
    Templates = {
        {&GenProfile::ThreadStarts, JavaStartLines, std::size(JavaStartLines)},
        {&GenProfile::Synchronized, JavaSyncLines, std::size(JavaSyncLines)},
        {&GenProfile::AcquireRelease, JavaAcquireLines,
         std::size(JavaAcquireLines)},
        {&GenProfile::LockUnlock, JavaLockLines, std::size(JavaLockLines)},
        {&GenProfile::BarrierLatchPhaser, JavaGroupLines,
         std::size(JavaGroupLines)},
        {&GenProfile::MapConstructs, JavaMapLines, std::size(JavaMapLines)},
    };
    Fillers = JavaFillerLines;
    NumFillers = std::size(JavaFillerLines);
  }

  std::string Out;
  Out.reserve(Lines * 32);
  if (Language == Lang::Go)
    Out += "package synthetic\n\nimport \"sync\"\n\n";
  else
    Out += "package com.synthetic;\n\nimport java.util.concurrent.*;\n\n";

  size_t Emitted = Language == Lang::Go ? 4 : 4;
  size_t FuncCounter = 0;
  while (Emitted < Lines) {
    // Open a function every ~24 lines to keep the text realistic.
    if (FuncCounter == 0) {
      if (Language == Lang::Go)
        Out += "func handler" + std::to_string(Emitted) +
               "(input int) (int, error) {\n";
      else
        Out += "    int handler" + std::to_string(Emitted) +
               "(int input) {\n";
      FuncCounter = 22 + Rng.nextBelow(6);
      ++Emitted;
      continue;
    }
    if (FuncCounter == 1) {
      Out += Language == Lang::Go ? "}\n" : "    }\n";
      FuncCounter = 0;
      ++Emitted;
      continue;
    }
    --FuncCounter;

    // Pick a construct with probability density/1e6, else a filler line.
    // Function open/close lines are not eligible for constructs
    // (~2 in 26 lines); compensate so the per-total-line density still
    // matches the profile.
    constexpr double EligibleFraction = 24.5 / 26.5;
    double Roll = Rng.nextDouble() * 1'000'000.0 * EligibleFraction;
    double Accum = 0.0;
    const ConstructTemplate *Chosen = nullptr;
    for (const ConstructTemplate &T : Templates) {
      Accum += Profile.*(T.Density);
      if (Roll < Accum) {
        Chosen = &T;
        break;
      }
    }
    if (Chosen)
      Out += Chosen->Lines[Rng.nextBelow(Chosen->NumLines)];
    else
      Out += Fillers[Rng.nextBelow(NumFillers)];
    Out += '\n';
    ++Emitted;
  }
  if (FuncCounter != 0)
    Out += Language == Lang::Go ? "}\n" : "    }\n";
  return Out;
}
