//===- analysis/Lexer.h - Go/Java tokenizers --------------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizers for a practical subset of Go and Java, sufficient for the
/// concurrency-construct census of the paper's Table 1. The paper counted
/// constructs in 46 MLoC of Go and 19 MLoC of Java with regular
/// expressions ("the exact regular expressions are more involved"); a
/// token stream is sturdier than regexes — it ignores matches inside
/// string literals and comments for free.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_ANALYSIS_LEXER_H
#define GRS_ANALYSIS_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace grs {
namespace analysis {

/// Source language of a lexed file.
enum class Lang : uint8_t { Go, Java };

/// Token categories (comments and whitespace are dropped).
enum class TokKind : uint8_t {
  Identifier,
  Keyword,
  Number,
  String,
  Rune,      ///< Character literal.
  Operator,  ///< Includes Go's `<-` and `:=` as single tokens.
  Punct,     ///< Brackets, braces, separators.
  EndOfFile,
};

struct Token {
  TokKind Kind = TokKind::EndOfFile;
  std::string Text;
  uint32_t Line = 1;

  bool is(TokKind K, std::string_view T) const {
    return Kind == K && Text == T;
  }
};

/// Lexes \p Source (full text of one file). Malformed trailing constructs
/// (unterminated strings/comments) terminate the file rather than abort.
std::vector<Token> lex(Lang Language, std::string_view Source);

/// \returns true if \p Word is a keyword of \p Language.
bool isKeyword(Lang Language, std::string_view Word);

/// Go's automatic semicolon insertion, as a token-stream post-pass: a
/// line break after an identifier, literal, `return`/`break`/`continue`/
/// `fallthrough`, `++`/`--`, or a closing bracket inserts a `;` Punct
/// token. The parser requires this; the construct census does not.
std::vector<Token> insertSemicolons(std::vector<Token> Tokens);

} // namespace analysis
} // namespace grs

#endif // GRS_ANALYSIS_LEXER_H
