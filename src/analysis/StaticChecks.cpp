//===- analysis/StaticChecks.cpp - Static race pattern detectors -----------===//

#include "analysis/StaticChecks.h"

#include "analysis/Parser.h"

#include <set>

using namespace grs;
using namespace grs::analysis;
using namespace grs::analysis::ast;

namespace {

//===----------------------------------------------------------------------===//
// Small AST queries
//===----------------------------------------------------------------------===//

/// Names declared within \p Body (params handled by callers): short
/// declarations, var declarations, and range variables, at any depth.
std::set<std::string> declaredNames(const Stmt &Body) {
  std::set<std::string> Names;
  walk(
      Body,
      [&Names](const Stmt &S) {
        if (S.K == Stmt::Kind::ShortVarDecl || S.K == Stmt::Kind::VarDecl ||
            S.K == Stmt::Kind::RangeFor || S.K == Stmt::Kind::For)
          for (const std::string &Name : S.Names)
            Names.insert(Name);
      },
      [](const Expr &) {});
  return Names;
}

/// Identifier occurrences (reads or writes) in \p Body, excluding names
/// declared locally and the closure's own parameters.
std::set<std::string> freeIdentifiers(const Expr &FuncLit) {
  std::set<std::string> Excluded;
  for (const Param &P : FuncLit.Params)
    Excluded.insert(P.Name);
  if (!FuncLit.Body)
    return {};
  for (const std::string &Name : declaredNames(*FuncLit.Body))
    Excluded.insert(Name);

  std::set<std::string> Free;
  walk(
      *FuncLit.Body, [](const Stmt &) {},
      [&](const Expr &E) {
        if (E.K == Expr::Kind::Ident && !Excluded.count(E.Text))
          Free.insert(E.Text);
      });
  return Free;
}

/// Plain identifiers assigned (`x = ...`, `x++`) within \p Body.
std::set<std::string> assignedIdents(const Stmt &Body) {
  std::set<std::string> Names;
  walk(
      Body,
      [&Names](const Stmt &S) {
        if (S.K != Stmt::Kind::Assign)
          return;
        for (size_t I = 0; I < S.NumLhs && I < S.Exprs.size(); ++I)
          if (S.Exprs[I] && S.Exprs[I]->K == Expr::Kind::Ident)
            Names.insert(S.Exprs[I]->Text);
      },
      [](const Expr &) {});
  return Names;
}

/// \returns the FuncLit spawned by a `go` statement, or nullptr for
/// `go f(x)` forms. Handles both `go func(){...}()` and a bare literal.
const Expr *spawnedClosure(const Stmt &GoStmt) {
  if (GoStmt.Exprs.empty() || !GoStmt.Exprs[0])
    return nullptr;
  const Expr *E = GoStmt.Exprs[0].get();
  if (E->K == Expr::Kind::Call && !E->Children.empty())
    E = E->Children[0].get();
  return E && E->K == Expr::Kind::FuncLit ? E : nullptr;
}

/// Collects every `go` statement in \p Body (including inside nested
/// closures).
std::vector<const Stmt *> goStatements(const Stmt &Body) {
  std::vector<const Stmt *> Gos;
  walk(
      Body,
      [&Gos](const Stmt &S) {
        if (S.K == Stmt::Kind::Go)
          Gos.push_back(&S);
      },
      [](const Expr &) {});
  return Gos;
}

/// \returns true if \p Body contains a method call `<any>.Name(...)`.
bool containsMethodCall(const Stmt &Body, std::string_view Name) {
  bool Found = false;
  walk(
      Body, [](const Stmt &) {},
      [&](const Expr &E) {
        if (E.K == Expr::Kind::Call && !E.Children.empty() &&
            E.Children[0] && E.Children[0]->K == Expr::Kind::Selector &&
            E.Children[0]->Text == Name)
          Found = true;
      });
  return Found;
}

/// Names provably bound to Go maps within \p Fn: `make(map[...])` short
/// declarations, `map[...]{...}` literals, `var x map[...]`, and
/// map-typed parameters. The unlocked-map check only fires on these, so
/// pre-sized-slice index writes (a safe idiom) are not flagged.
std::set<std::string> mapTypedNames(const FuncDecl &Fn) {
  std::set<std::string> Names;
  for (const Param &P : Fn.Params)
    if (P.Type.rfind("map[", 0) == 0)
      Names.insert(P.Name);
  if (!Fn.Body)
    return Names;

  auto RhsIsMap = [](const Expr &Rhs) {
    if (Rhs.K == Expr::Kind::Composite && Rhs.Text.rfind("map[", 0) == 0)
      return true;
    if (Rhs.K == Expr::Kind::Call && !Rhs.Children.empty() &&
        Rhs.Children[0] && Rhs.Children[0]->isIdent("make") &&
        Rhs.Children.size() > 1 && Rhs.Children[1] &&
        Rhs.Children[1]->K == Expr::Kind::Composite &&
        Rhs.Children[1]->Text.rfind("map[", 0) == 0)
      return true;
    return false;
  };

  walk(
      *Fn.Body,
      [&](const Stmt &S) {
        if (S.K == Stmt::Kind::VarDecl && S.Text.rfind("map[", 0) == 0)
          for (const std::string &Name : S.Names)
            Names.insert(Name);
        if (S.K == Stmt::Kind::ShortVarDecl &&
            S.Names.size() == S.Exprs.size())
          for (size_t I = 0; I < S.Names.size(); ++I)
            if (S.Exprs[I] && RhsIsMap(*S.Exprs[I]))
              Names.insert(S.Names[I]);
      },
      [](const Expr &) {});
  return Names;
}

bool isSyncValueType(const std::string &Type) {
  return Type == "sync.Mutex" || Type == "sync.RWMutex" ||
         Type == "sync.WaitGroup" || Type == "Mutex" ||
         Type == "RWMutex" || Type == "WaitGroup";
}

//===----------------------------------------------------------------------===//
// The checks
//===----------------------------------------------------------------------===//

class Checker {
public:
  explicit Checker(const File &F) : F(F) {}

  std::vector<Diagnostic> run() {
    for (const FuncDecl &Fn : F.Funcs) {
      if (!Fn.Body)
        continue;
      Current = &Fn;
      checkMutexByValue(Fn);
      checkLoopVarCapture(*Fn.Body);
      checkErrCapture(Fn);
      checkNamedReturnCapture(Fn);
      checkWgAddInside(*Fn.Body);
      checkUnlockedMapInGoroutine(Fn);
      checkRLockMutation(*Fn.Body, /*InReadSection=*/false);
      checkParallelSubtestCapture(*Fn.Body);
      checkSlicePassedAndCaptured(*Fn.Body);
    }
    return std::move(Diags);
  }

private:
  void report(const char *Check, uint32_t Line, std::string Message) {
    Diags.push_back(
        Diagnostic{Check, Current ? Current->Name : "", Line,
                   std::move(Message)});
  }

  /// Listing 7: sync value types taken by value.
  void checkMutexByValue(const FuncDecl &Fn) {
    for (const Param &P : Fn.Params)
      if (isSyncValueType(P.Type))
        report("mutex-by-value", Fn.Line,
               "parameter '" + P.Name + "' receives " + P.Type +
                   " by value; each call gets an independent copy — pass "
                   "*" + P.Type);
    // Same trap for closures.
    walk(
        *Fn.Body, [](const Stmt &) {},
        [this](const Expr &E) {
          if (E.K != Expr::Kind::FuncLit)
            return;
          for (const Param &P : E.Params)
            if (isSyncValueType(P.Type))
              report("mutex-by-value", E.Line,
                     "closure parameter '" + P.Name + "' receives " +
                         P.Type + " by value");
        });
  }

  /// Listings 1 / §4.8: goroutine closures capturing loop variables.
  void checkLoopVarCapture(const Stmt &Body) {
    walk(
        Body,
        [this](const Stmt &S) {
          if ((S.K != Stmt::Kind::RangeFor && S.K != Stmt::Kind::For) ||
              S.Names.empty() || S.Stmts.empty() || !S.Stmts[0])
            return;
          const Stmt &LoopBody = *S.Stmts[0];
          // `x := x` privatization inside the loop body shadows the
          // loop variable for everything after it.
          std::set<std::string> Privatized;
          for (const auto &Sub : LoopBody.Stmts)
            if (Sub && Sub->K == Stmt::Kind::ShortVarDecl)
              for (const std::string &Name : Sub->Names)
                Privatized.insert(Name);
          for (const Stmt *Go : goStatements(LoopBody)) {
            const Expr *Closure = spawnedClosure(*Go);
            if (!Closure)
              continue;
            std::set<std::string> Free = freeIdentifiers(*Closure);
            for (const std::string &LoopVar : S.Names) {
              if (LoopVar == "_" || Privatized.count(LoopVar) ||
                  !Free.count(LoopVar))
                continue;
              report("loop-var-capture", Go->Line,
                     "goroutine closure captures loop variable '" +
                         LoopVar + "' by reference (declared line " +
                         std::to_string(S.Line) +
                         "); it races with the loop advancing it");
            }
          }
        },
        [](const Expr &) {});
  }

  /// Listing 2: the idiomatic err variable shared with a goroutine.
  void checkErrCapture(const FuncDecl &Fn) {
    std::set<std::string> OuterAssigned = assignedIdents(*Fn.Body);
    std::set<std::string> OuterDeclared = declaredNames(*Fn.Body);
    for (const Stmt *Go : goStatements(*Fn.Body)) {
      const Expr *Closure = spawnedClosure(*Go);
      if (!Closure || !Closure->Body)
        continue;
      std::set<std::string> Free = freeIdentifiers(*Closure);
      std::set<std::string> InnerAssigned = assignedIdents(*Closure->Body);
      if (!Free.count("err"))
        continue;
      // The closure must WRITE err, or the enclosing body must keep
      // writing it, for a write-side conflict to exist.
      bool InnerWrites = InnerAssigned.count("err") != 0;
      bool OuterWrites =
          OuterAssigned.count("err") || OuterDeclared.count("err");
      if (InnerWrites || OuterWrites)
        report("err-var-capture", Go->Line,
               "goroutine captures the shared 'err' variable "
               "by reference; later `x, err := ...` assignments in the "
               "enclosing function race with it");
    }
  }

  /// Listings 3-4: named results referenced from goroutines.
  void checkNamedReturnCapture(const FuncDecl &Fn) {
    if (!Fn.hasNamedResults())
      return;
    for (const Stmt *Go : goStatements(*Fn.Body)) {
      const Expr *Closure = spawnedClosure(*Go);
      if (!Closure)
        continue;
      std::set<std::string> Free = freeIdentifiers(*Closure);
      for (const Param &Result : Fn.Results) {
        if (Result.Name.empty() || !Free.count(Result.Name))
          continue;
        report("named-return-capture", Go->Line,
               "goroutine captures named return variable '" + Result.Name +
                   "'; every `return` statement writes it (and deferred "
                   "functions run after return)");
      }
    }
  }

  /// Listing 10: wg.Add() inside the goroutine it accounts for.
  void checkWgAddInside(const Stmt &Body) {
    for (const Stmt *Go : goStatements(Body)) {
      const Expr *Closure = spawnedClosure(*Go);
      if (!Closure || !Closure->Body)
        continue;
      walk(
          *Closure->Body, [](const Stmt &) {},
          [&](const Expr &E) {
            if (E.K != Expr::Kind::Call || E.Children.empty() ||
                !E.Children[0] ||
                E.Children[0]->K != Expr::Kind::Selector ||
                E.Children[0]->Text != "Add")
              return;
            const Expr &Base = *E.Children[0]->Children[0];
            if (Base.K != Expr::Kind::Ident)
              return;
            report("wg-add-inside", E.Line,
                   "'" + Base.Text +
                       ".Add' runs inside the goroutine it accounts "
                       "for; Wait() can return before it executes — move "
                       "Add before the `go` statement");
          });
    }
  }

  /// Listing 6: map index assignment inside a goroutine without a lock.
  void checkUnlockedMapInGoroutine(const FuncDecl &Fn) {
    std::set<std::string> MapNames = mapTypedNames(Fn);
    if (MapNames.empty())
      return;
    for (const Stmt *Go : goStatements(*Fn.Body)) {
      const Expr *Closure = spawnedClosure(*Go);
      if (!Closure || !Closure->Body)
        continue;
      if (containsMethodCall(*Closure->Body, "Lock") ||
          containsMethodCall(*Closure->Body, "RLock"))
        continue; // Some locking present: give the benefit of the doubt.
      walk(
          *Closure->Body,
          [&](const Stmt &S) {
            if (S.K != Stmt::Kind::Assign)
              return;
            for (size_t I = 0; I < S.NumLhs && I < S.Exprs.size(); ++I) {
              const Expr *Lhs = S.Exprs[I].get();
              if (Lhs && Lhs->K == Expr::Kind::Index && !Lhs->Children.empty() &&
                  Lhs->Children[0] &&
                  Lhs->Children[0]->K == Expr::Kind::Ident &&
                  MapNames.count(Lhs->Children[0]->Text))
                report("unlocked-map-in-go", S.Line,
                       "indexed assignment to '" + Lhs->Children[0]->Text +
                           "' inside a goroutine with no lock in scope; "
                           "Go's built-in map is not thread-safe even "
                           "for distinct keys");
            }
          },
          [](const Expr &) {});
    }
  }

  /// Listing 11: writes between RLock and RUnlock.
  void checkRLockMutation(const Stmt &S, bool InReadSection) {
    if (S.K == Stmt::Kind::Block) {
      bool Read = InReadSection;
      for (const auto &Sub : S.Stmts) {
        if (!Sub)
          continue;
        if (isCallStmt(*Sub, "RLock"))
          Read = true;
        else if (isCallStmt(*Sub, "RUnlock"))
          Read = false;
        else if (Sub->K == Stmt::Kind::DeferStmt && mentionsCall(*Sub, "RUnlock"))
          Read = true; // defer mu.RUnlock(): the rest of the body reads.
        else
          checkRLockMutation(*Sub, Read);
      }
      return;
    }
    if (S.K == Stmt::Kind::Assign && InReadSection) {
      for (size_t I = 0; I < S.NumLhs && I < S.Exprs.size(); ++I) {
        const Expr *Lhs = S.Exprs[I].get();
        if (Lhs && (Lhs->K == Expr::Kind::Selector ||
                    Lhs->K == Expr::Kind::Index))
          report("rlock-mutation", S.Line,
                 "assignment inside an RLock-protected section; "
                 "concurrent readers may write simultaneously — use "
                 "Lock() for mutating paths");
      }
    }
    for (const auto &Sub : S.Stmts)
      if (Sub)
        checkRLockMutation(*Sub, InReadSection);
  }

  /// Listing 5: a slice variable passed as a goroutine-call ARGUMENT
  /// while the same variable is also captured by some other closure in
  /// the function. The by-value argument copy reads the slice's meta
  /// fields outside whatever lock the capturing closure uses — "this
  /// style of invocation causes the meta fields of the slice to be
  /// copied from the callsite to the callee ... not lock protected".
  void checkSlicePassedAndCaptured(const Stmt &Body) {
    // Free identifiers of every NON-goroutine closure in the function.
    std::set<std::string> CapturedElsewhere;
    walk(
        Body, [](const Stmt &) {},
        [&](const Expr &E) {
          if (E.K != Expr::Kind::FuncLit)
            return;
          for (const std::string &Name : freeIdentifiers(E))
            CapturedElsewhere.insert(Name);
        });

    for (const Stmt *Go : goStatements(Body)) {
      if (Go->Exprs.empty() || !Go->Exprs[0] ||
          Go->Exprs[0]->K != Expr::Kind::Call)
        continue;
      const Expr &Call = *Go->Exprs[0];
      if (Call.Children.empty() || !Call.Children[0] ||
          Call.Children[0]->K != Expr::Kind::FuncLit)
        continue;
      const Expr &Closure = *Call.Children[0];
      // Pair arguments with the closure's parameters to find slice-typed
      // positions.
      for (size_t Arg = 1; Arg < Call.Children.size(); ++Arg) {
        size_t ParamIndex = Arg - 1;
        if (ParamIndex >= Closure.Params.size())
          break;
        if (Closure.Params[ParamIndex].Type.rfind("[]", 0) != 0)
          continue;
        const Expr *ArgExpr = Call.Children[Arg].get();
        if (!ArgExpr || ArgExpr->K != Expr::Kind::Ident)
          continue;
        if (!CapturedElsewhere.count(ArgExpr->Text))
          continue;
        report("slice-passed-and-captured", Go->Line,
               "slice '" + ArgExpr->Text +
                   "' is passed by value to the goroutine (meta fields "
                   "copied, unprotected) while another closure captures "
                   "and mutates it under a lock — drop the argument or "
                   "pass a pointer (Listing 5)");
      }
    }
  }

  /// §4.8 / Observation 9: table-driven loops whose t.Run closures call
  /// t.Parallel() while capturing the loop variable — all parallel
  /// subtests see (and race on) the final row.
  void checkParallelSubtestCapture(const Stmt &Body) {
    walk(
        Body,
        [this](const Stmt &S) {
          if (S.K != Stmt::Kind::RangeFor || S.Names.empty() ||
              S.Stmts.empty() || !S.Stmts[0])
            return;
          std::set<std::string> Privatized;
          for (const auto &Sub : S.Stmts[0]->Stmts)
            if (Sub && Sub->K == Stmt::Kind::ShortVarDecl)
              for (const std::string &Name : Sub->Names)
                Privatized.insert(Name);
          // Find `<t>.Run(name, func(...){ ... })` calls in the body.
          walk(
              *S.Stmts[0], [](const Stmt &) {},
              [&](const Expr &E) {
                if (E.K != Expr::Kind::Call || E.Children.size() < 3 ||
                    !E.Children[0] ||
                    E.Children[0]->K != Expr::Kind::Selector ||
                    E.Children[0]->Text != "Run")
                  return;
                const Expr *Closure = E.Children.back().get();
                if (!Closure || Closure->K != Expr::Kind::FuncLit ||
                    !Closure->Body)
                  return;
                if (!containsMethodCall(*Closure->Body, "Parallel"))
                  return;
                std::set<std::string> Free = freeIdentifiers(*Closure);
                for (const std::string &LoopVar : S.Names) {
                  if (LoopVar == "_" || Privatized.count(LoopVar) ||
                      !Free.count(LoopVar))
                    continue;
                  report("parallel-subtest-capture", E.Line,
                         "parallel subtest closure captures loop "
                         "variable '" + LoopVar +
                             "'; every subtest resumes after the loop "
                             "finished and sees the last row — add `" +
                             LoopVar + " := " + LoopVar +
                             "` before t.Run");
                }
              });
        },
        [](const Expr &) {});
  }

  static bool isCallStmt(const Stmt &S, std::string_view Method) {
    return S.K == Stmt::Kind::ExprStmt && !S.Exprs.empty() && S.Exprs[0] &&
           S.Exprs[0]->K == Expr::Kind::Call &&
           !S.Exprs[0]->Children.empty() && S.Exprs[0]->Children[0] &&
           S.Exprs[0]->Children[0]->K == Expr::Kind::Selector &&
           S.Exprs[0]->Children[0]->Text == Method;
  }

  static bool mentionsCall(const Stmt &S, std::string_view Method) {
    bool Found = false;
    walk(
        S, [](const Stmt &) {},
        [&](const Expr &E) {
          if (E.K == Expr::Kind::Selector && E.Text == Method)
            Found = true;
        });
    return Found;
  }

  const File &F;
  const FuncDecl *Current = nullptr;
  std::vector<Diagnostic> Diags;
};

} // namespace

std::vector<Diagnostic> grs::analysis::runStaticChecks(const File &F) {
  return Checker(F).run();
}

std::vector<Diagnostic> grs::analysis::lintGoSource(std::string_view Source) {
  ast::File F = parseGo(Source);
  return runStaticChecks(F);
}
