//===- analysis/StaticChecks.h - Static race pattern detectors --*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Syntactic detectors for the Section 4 race patterns, the research
/// direction the paper closes on ("We believe the bug patterns in Go
/// presented in this paper can inspire further research in static race
/// detection for Go", §5). Each check is deliberately shallow — the
/// PR-gate niche is "many low-cost static analysis checks" (§3.2.1), not
/// whole-program analysis:
///
///   loop-var-capture      Listing 1/§4.8 — goroutine closure reads a
///                         loop variable that keeps advancing.
///   err-var-capture       Listing 2 — `err` assigned both inside a
///                         goroutine closure and in the enclosing body.
///   named-return-capture  Listings 3-4 — goroutine closure references a
///                         named result variable.
///   mutex-by-value        Listing 7 — sync.Mutex/RWMutex/WaitGroup taken
///                         as a by-value parameter.
///   wg-add-inside         Listing 10 — wg.Add() inside the goroutine it
///                         accounts for.
///   rlock-mutation        Listing 11 — assignment to shared state
///                         between RLock and RUnlock.
///   unlocked-map-in-go    Listing 6 — map index assignment inside a
///                         goroutine with no Lock() in scope.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_ANALYSIS_STATICCHECKS_H
#define GRS_ANALYSIS_STATICCHECKS_H

#include "analysis/Ast.h"

#include <string>
#include <vector>

namespace grs {
namespace analysis {

/// One static finding.
struct Diagnostic {
  std::string Check;    ///< Stable check id, e.g. "loop-var-capture".
  std::string Function; ///< Enclosing function name.
  uint32_t Line = 0;
  std::string Message;
};

/// Runs every check over \p F.
std::vector<Diagnostic> runStaticChecks(const ast::File &F);

/// Convenience: parse + check in one call.
std::vector<Diagnostic> lintGoSource(std::string_view Source);

} // namespace analysis
} // namespace grs

#endif // GRS_ANALYSIS_STATICCHECKS_H
