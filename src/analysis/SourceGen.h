//===- analysis/SourceGen.h - Calibrated synthetic source corpus -*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates a synthetic monorepo's worth of Go or Java source text with
/// concurrency-construct densities calibrated to the paper's Table 1.
/// Uber's actual 46-MLoC monorepo is proprietary; a calibrated corpus
/// exercises the same lexer + census code path and regenerates the
/// table's per-MLoC shape (Go ~3.7x point-to-point, ~1.9x group sync,
/// ~1.34x maps). Generated text includes decoy construct names inside
/// comments and string literals, which a naive regex would miscount.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_ANALYSIS_SOURCEGEN_H
#define GRS_ANALYSIS_SOURCEGEN_H

#include "analysis/Lexer.h"
#include "support/Rng.h"

#include <string>

namespace grs {
namespace analysis {

/// Target construct densities, per million lines of code.
struct GenProfile {
  double GoStatements = 0;
  double LockUnlock = 0;
  double RLockRUnlock = 0;
  double ChannelOps = 0;
  double WaitGroups = 0;
  double ThreadStarts = 0;
  double Synchronized = 0;
  double AcquireRelease = 0;
  double BarrierLatchPhaser = 0;
  double MapConstructs = 0;

  /// Table 1 densities for the 46-MLoC Go monorepo.
  static GenProfile goMonorepo();
  /// Table 1 densities for the 19-MLoC Java monorepo.
  static GenProfile javaMonorepo();
};

/// Generates ~\p Lines lines of \p Language source at \p Profile's
/// densities (seeded, deterministic).
std::string generateCorpus(Lang Language, const GenProfile &Profile,
                           size_t Lines, uint64_t Seed);

} // namespace analysis
} // namespace grs

#endif // GRS_ANALYSIS_SOURCEGEN_H
