//===- analysis/Ast.h - AST for the Go subset -------------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax tree for the Go subset the static race checks consume.
/// The paper closes hoping its patterns "can inspire further research in
/// static race detection for Go" (§5) — src/analysis's parser + checks
/// prototype exactly that: syntactic detectors for the Section 4 races
/// (loop-variable capture, err capture, mutex-by-value, Add-inside-
/// goroutine, RLock-section mutation, ...).
///
/// The AST is deliberately loose: expressions keep their children
/// positionally with the layout documented per kind, and anything the
/// parser cannot classify degrades to Kind::Other rather than failing the
/// file — industrial linters must survive arbitrary code (§3.2's "many
/// low-cost static analysis checks" run on every PR).
///
//===----------------------------------------------------------------------===//

#ifndef GRS_ANALYSIS_AST_H
#define GRS_ANALYSIS_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace grs {
namespace analysis {
namespace ast {

struct Stmt;

/// A function parameter or result: `name Type`. Results may be unnamed.
struct Param {
  std::string Name;
  std::string Type; ///< Flattened type text, e.g. "*sync.Mutex", "[]int".
};

/// Expression node.
///
/// Child layout by kind:
///  * Ident    — Text = name; no children.
///  * Literal  — Text = literal text; no children.
///  * Selector — Children[0] = base; Text = field name.
///  * Call     — Children[0] = callee; Children[1..] = arguments.
///  * Index    — Children[0] = base; Children[1] = index (may be null for
///               skipped indices).
///  * Unary    — Text = operator; Children[0] = operand.
///  * Binary   — Text = operator; Children[0] = lhs; Children[1] = rhs.
///  * FuncLit  — Params/Results set; Body set; no children.
///  * Composite— Text = flattened type text; children unparsed (skipped).
///  * Other    — anything unparsable; Text best-effort.
struct Expr {
  enum class Kind : uint8_t {
    Ident,
    Literal,
    Selector,
    Call,
    Index,
    Unary,
    Binary,
    FuncLit,
    Composite,
    Other,
  };

  Kind K = Kind::Other;
  uint32_t Line = 0;
  std::string Text;
  std::vector<std::unique_ptr<Expr>> Children;
  // FuncLit payload.
  std::vector<Param> Params;
  std::vector<Param> Results;
  std::unique_ptr<Stmt> Body;

  bool isIdent(std::string_view Name) const {
    return K == Kind::Ident && Text == Name;
  }
};

/// Statement node.
///
/// Expr/Stmt layout by kind:
///  * Block        — Stmts = body.
///  * ExprStmt     — Exprs[0].
///  * Assign       — Text = op ("=", "+=", ...); Exprs = lhs list then rhs
///                   list; NumLhs tells where the split is.
///  * ShortVarDecl — Names = declared names; Exprs = rhs list.
///  * VarDecl      — Names = declared names; Text = type text; Exprs =
///                   initializers (possibly empty).
///  * If           — Exprs[0] = condition; Stmts[0] = then-block;
///                   Stmts[1] = else (optional).
///  * For          — Stmts[0] = body; Exprs hold loosely parsed header
///                   pieces; Names = variables declared in the init.
///  * RangeFor     — Names = key/value variables; Exprs[0] = ranged
///                   expression; Stmts[0] = body.
///  * Go           — Exprs[0] = the spawned call expression.
///  * DeferStmt    — Exprs[0] = the deferred call expression.
///  * Return       — Exprs = returned values (empty = naked return).
///  * Other        — skipped/unparsable region.
struct Stmt {
  enum class Kind : uint8_t {
    Block,
    ExprStmt,
    Assign,
    ShortVarDecl,
    VarDecl,
    If,
    For,
    RangeFor,
    Go,
    DeferStmt,
    Return,
    Other,
  };

  Kind K = Kind::Other;
  uint32_t Line = 0;
  std::string Text;
  size_t NumLhs = 0;
  std::vector<std::string> Names;
  std::vector<std::unique_ptr<Expr>> Exprs;
  std::vector<std::unique_ptr<Stmt>> Stmts;
};

/// A top-level function or method declaration.
struct FuncDecl {
  std::string Name;
  uint32_t Line = 0;
  /// Method receiver ("" for plain functions), e.g. "*HealthGate".
  std::string ReceiverType;
  std::string ReceiverName;
  std::vector<Param> Params;
  std::vector<Param> Results; ///< Named results have non-empty Name.
  std::unique_ptr<Stmt> Body; ///< Block, or null for declarations.

  bool hasNamedResults() const {
    for (const Param &R : Results)
      if (!R.Name.empty())
        return true;
    return false;
  }
};

/// A parsed source file.
struct File {
  std::string PackageName;
  std::vector<FuncDecl> Funcs;
  /// Parser diagnostics (recovered-from errors).
  std::vector<std::string> Errors;
};

//===----------------------------------------------------------------------===//
// Traversal helpers
//===----------------------------------------------------------------------===//

/// Pre-order walk over an expression tree. Does NOT descend into FuncLit
/// bodies (use walk() on the body for that).
template <typename Fn> void walkExprs(const Expr &E, Fn Visit) {
  Visit(E);
  for (const auto &Child : E.Children)
    if (Child)
      walkExprs(*Child, Visit);
}

/// Pre-order walk over statements and their expressions.
/// \p VisitStmt and \p VisitExpr may be any callables; FuncLit bodies are
/// entered when \p IntoFuncLits.
template <typename StmtFn, typename ExprFn>
void walk(const Stmt &S, StmtFn VisitStmt, ExprFn VisitExpr,
          bool IntoFuncLits = true) {
  VisitStmt(S);
  auto WalkExpr = [&](const Expr &E, auto &&Self) -> void {
    VisitExpr(E);
    for (const auto &Child : E.Children)
      if (Child)
        Self(*Child, Self);
    if (IntoFuncLits && E.Body)
      walk(*E.Body, VisitStmt, VisitExpr, IntoFuncLits);
  };
  for (const auto &E : S.Exprs)
    if (E)
      WalkExpr(*E, WalkExpr);
  for (const auto &Sub : S.Stmts)
    if (Sub)
      walk(*Sub, VisitStmt, VisitExpr, IntoFuncLits);
}

} // namespace ast
} // namespace analysis
} // namespace grs

#endif // GRS_ANALYSIS_AST_H
