//===- analysis/Parser.cpp - Error-tolerant parser for the Go subset -------===//

#include "analysis/Parser.h"

#include <cassert>

using namespace grs;
using namespace grs::analysis;
using namespace grs::analysis::ast;

namespace {

/// Assignment operators that make a statement an ast::Stmt::Kind::Assign.
bool isAssignOp(const Token &T) {
  if (T.Kind != TokKind::Operator)
    return false;
  static const char *const Ops[] = {"=",  "+=", "-=",  "*=",  "/=", "%=",
                                    "&=", "|=", "^=", "<<=", ">>="};
  for (const char *Op : Ops)
    if (T.Text == Op)
      return true;
  return false;
}

/// Binary operators recognized by the flat expression combiner. `<-` is
/// included so channel sends parse as Binary("<-", ch, value).
bool isBinaryOp(const Token &T) {
  if (T.Kind != TokKind::Operator)
    return false;
  static const char *const Ops[] = {
      "+",  "-",  "*",  "/",  "%",  "&",  "|", "^",  "<<", ">>",
      "&&", "||", "==", "!=", "<",  "<=", ">", ">=", "<-",
  };
  for (const char *Op : Ops)
    if (T.Text == Op)
      return true;
  return false;
}

bool startsType(const Token &T) {
  if (T.Kind == TokKind::Identifier)
    return true;
  if (T.Kind == TokKind::Keyword)
    return T.Text == "map" || T.Text == "func" || T.Text == "chan" ||
           T.Text == "struct" || T.Text == "interface";
  if (T.Kind == TokKind::Operator)
    return T.Text == "*" || T.Text == "...";
  if (T.Kind == TokKind::Punct)
    return T.Text == "[" || T.Text == "(";
  return false;
}

class Parser {
public:
  explicit Parser(std::string_view Source)
      : Tokens(insertSemicolons(lex(Lang::Go, Source))) {}

  File parseFile();

private:
  //===--------------------------------------------------------------------===
  // Cursor primitives
  //===--------------------------------------------------------------------===

  const Token &peek(size_t Ahead = 0) const {
    size_t Index = Pos + Ahead;
    return Index < Tokens.size() ? Tokens[Index] : Tokens.back();
  }
  bool atEnd() const { return peek().Kind == TokKind::EndOfFile; }
  const Token &advance() {
    const Token &T = peek();
    if (Pos + 1 < Tokens.size())
      ++Pos;
    else
      Pos = Tokens.size() - 1;
    return T;
  }
  bool at(TokKind K, std::string_view Text) const {
    return peek().Kind == K && peek().Text == Text;
  }
  bool atKeyword(std::string_view Kw) const {
    return at(TokKind::Keyword, Kw);
  }
  bool atPunct(std::string_view P) const { return at(TokKind::Punct, P); }
  bool atOp(std::string_view Op) const { return at(TokKind::Operator, Op); }
  bool accept(TokKind K, std::string_view Text) {
    if (!at(K, Text))
      return false;
    advance();
    return true;
  }
  void error(const std::string &Message) {
    Errors.push_back("line " + std::to_string(peek().Line) + ": " + Message);
  }

  /// Skips (balanced) until a depth-0 `;` (consumed) or a depth-0 `}`
  /// (NOT consumed) — the statement-level recovery point.
  void recoverToStatementBoundary() {
    int Depth = 0;
    while (!atEnd()) {
      const Token &T = peek();
      if (T.Kind == TokKind::Punct) {
        if (T.Text == "(" || T.Text == "[" || T.Text == "{")
          ++Depth;
        else if (T.Text == ")" || T.Text == "]")
          --Depth;
        else if (T.Text == "}") {
          if (Depth == 0)
            return;
          --Depth;
        } else if (T.Text == ";" && Depth == 0) {
          advance();
          return;
        }
      }
      advance();
    }
  }

  /// Skips one balanced bracket group starting at the current opener.
  void skipBalanced() {
    static const std::string_view Openers = "([{";
    if (peek().Kind != TokKind::Punct ||
        Openers.find(peek().Text) == std::string_view::npos)
      return;
    int Depth = 0;
    while (!atEnd()) {
      const Token &T = advance();
      if (T.Kind != TokKind::Punct)
        continue;
      if (T.Text == "(" || T.Text == "[" || T.Text == "{")
        ++Depth;
      else if (T.Text == ")" || T.Text == "]" || T.Text == "}") {
        if (--Depth == 0)
          return;
      }
    }
  }

  //===--------------------------------------------------------------------===
  // Types and parameters
  //===--------------------------------------------------------------------===

  /// Flattens type tokens until a depth-0 `,`, `)`, `{`, `;`, or `=`.
  std::string parseTypeText() {
    std::string Text;
    int Depth = 0;
    while (!atEnd()) {
      const Token &T = peek();
      if (T.Kind == TokKind::Punct) {
        if (Depth == 0 &&
            (T.Text == "," || T.Text == ")" || T.Text == "{" ||
             T.Text == ";"))
          break;
        if (T.Text == "(" || T.Text == "[")
          ++Depth;
        if (T.Text == ")" || T.Text == "]")
          --Depth;
        // A `{` inside a type (struct/interface literal types): skip the
        // whole group textually.
        if (T.Text == "{") {
          skipBalanced();
          Text += "{}";
          continue;
        }
      }
      if (Depth == 0 && isAssignOp(T))
        break;
      if (T.Kind == TokKind::Keyword &&
          (T.Text == "chan" || T.Text == "func" || T.Text == "map" ||
           T.Text == "struct" || T.Text == "interface"))
        Text += T.Text == "chan" ? "chan " : T.Text;
      else
        Text += T.Text;
      advance();
    }
    return Text;
  }

  /// Parses a parenthesized parameter/result list; the cursor must be at
  /// `(`. Applies Go's all-named-or-all-unnamed rule to resolve grouped
  /// names (`a, b int`).
  std::vector<Param> parseParamList() {
    std::vector<Param> Params;
    if (!accept(TokKind::Punct, "("))
      return Params;
    while (!atEnd() && !atPunct(")")) {
      Param P;
      // `name Type` when an identifier is followed by something that
      // starts a type; otherwise an unnamed type.
      if (peek().Kind == TokKind::Identifier && startsType(peek(1)) &&
          !(peek(1).Kind == TokKind::Punct && peek(1).Text == "(")) {
        P.Name = advance().Text;
        P.Type = parseTypeText();
      } else if (peek().Kind == TokKind::Identifier &&
                 (peek(1).Kind == TokKind::Punct &&
                  (peek(1).Text == "," || peek(1).Text == ")"))) {
        // Bare identifier: either an unnamed named-type param or a
        // grouped name (`a, b int`); resolved in the post-pass.
        P.Name = advance().Text;
      } else {
        P.Type = parseTypeText();
      }
      Params.push_back(std::move(P));
      if (!accept(TokKind::Punct, ","))
        break;
    }
    accept(TokKind::Punct, ")");

    // Post-pass: `a, b int` leaves `a` with an empty type — give grouped
    // names the type of the next param that has one. If NO param has a
    // type, the bare identifiers were actually unnamed types.
    bool AnyTyped = false;
    for (const Param &P : Params)
      AnyTyped |= !P.Type.empty();
    if (AnyTyped) {
      for (size_t I = Params.size(); I > 0; --I) {
        Param &P = Params[I - 1];
        if (P.Type.empty() && I < Params.size())
          P.Type = Params[I].Type;
      }
    } else {
      for (Param &P : Params) {
        P.Type = P.Name;
        P.Name.clear();
      }
    }
    return Params;
  }

  /// Parses an optional result list: `(r1 T1, r2 T2)`, `(T1, T2)`, or a
  /// single bare type.
  std::vector<Param> parseResults() {
    std::vector<Param> Results;
    if (atPunct("("))
      return parseParamList();
    if (atPunct("{") || atPunct(";") || atEnd())
      return Results;
    Param Single;
    Single.Type = parseTypeText();
    if (!Single.Type.empty())
      Results.push_back(std::move(Single));
    return Results;
  }

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===

  std::unique_ptr<Expr> makeExpr(Expr::Kind K, uint32_t Line,
                                 std::string Text = std::string()) {
    auto E = std::make_unique<Expr>();
    E->K = K;
    E->Line = Line;
    E->Text = std::move(Text);
    return E;
  }

  std::unique_ptr<Expr> parseFuncLit() {
    uint32_t Line = peek().Line;
    advance(); // `func`
    auto Fn = makeExpr(Expr::Kind::FuncLit, Line);
    Fn->Params = parseParamList();
    if (!atPunct("{"))
      Fn->Results = parseResults();
    if (atPunct("{"))
      Fn->Body = parseBlock();
    return Fn;
  }

  std::unique_ptr<Expr> parsePrimary(bool StopAtBrace) {
    const Token &T = peek();
    uint32_t Line = T.Line;

    if (T.Kind == TokKind::Identifier) {
      auto E = makeExpr(Expr::Kind::Ident, Line, advance().Text);
      // Composite literal `Pkg.Type{...}` handled in postfix; plain
      // `Type{...}` here.
      if (!StopAtBrace && atPunct("{")) {
        auto Composite = makeExpr(Expr::Kind::Composite, Line, E->Text);
        skipBalanced();
        return Composite;
      }
      return E;
    }
    if (T.Kind == TokKind::Number || T.Kind == TokKind::String ||
        T.Kind == TokKind::Rune)
      return makeExpr(Expr::Kind::Literal, Line, advance().Text);
    if (T.Kind == TokKind::Keyword && T.Text == "func")
      return parseFuncLit();
    if (T.Kind == TokKind::Keyword &&
        (T.Text == "map" || T.Text == "chan" || T.Text == "struct" ||
         T.Text == "interface")) {
      // Type expression, possibly a composite literal or a make() arg.
      std::string TypeText = parseTypeText();
      auto Composite = makeExpr(Expr::Kind::Composite, Line, TypeText);
      if (atPunct("{"))
        skipBalanced();
      return Composite;
    }
    if (atPunct("[")) {
      // Slice/array type expression: `[]T{...}` or `[N]T`.
      std::string TypeText = parseTypeText();
      auto Composite = makeExpr(Expr::Kind::Composite, Line, TypeText);
      if (atPunct("{"))
        skipBalanced();
      return Composite;
    }
    if (accept(TokKind::Punct, "(")) {
      auto Inner = parseExpr(/*StopAtBrace=*/false);
      accept(TokKind::Punct, ")");
      return Inner;
    }
    // Unparsable: consume one token so progress is guaranteed.
    return makeExpr(Expr::Kind::Other, Line, advance().Text);
  }

  std::unique_ptr<Expr> parsePostfix(std::unique_ptr<Expr> Base,
                                     bool StopAtBrace) {
    for (;;) {
      uint32_t Line = peek().Line;
      if (atOp(".") && peek(1).Kind == TokKind::Identifier) {
        advance();
        auto Sel = makeExpr(Expr::Kind::Selector, Line, advance().Text);
        Sel->Children.push_back(std::move(Base));
        Base = std::move(Sel);
        // `pkg.Type{...}` composite literal.
        if (!StopAtBrace && atPunct("{")) {
          auto Composite = makeExpr(Expr::Kind::Composite, Line,
                                    flattenSelector(*Base));
          skipBalanced();
          Base = std::move(Composite);
        }
        continue;
      }
      if (atPunct("(")) {
        advance();
        auto Call = makeExpr(Expr::Kind::Call, Line);
        Call->Children.push_back(std::move(Base));
        while (!atEnd() && !atPunct(")")) {
          Call->Children.push_back(parseExpr(/*StopAtBrace=*/false));
          if (!accept(TokKind::Punct, ","))
            break;
        }
        accept(TokKind::Punct, ")");
        Base = std::move(Call);
        continue;
      }
      if (atPunct("[")) {
        advance();
        auto Index = makeExpr(Expr::Kind::Index, Line);
        Index->Children.push_back(std::move(Base));
        if (!atPunct("]"))
          Index->Children.push_back(parseExpr(/*StopAtBrace=*/false));
        // Slicing `a[i:j]`: keep only the first index.
        while (!atEnd() && !atPunct("]"))
          advance();
        accept(TokKind::Punct, "]");
        Base = std::move(Index);
        continue;
      }
      return Base;
    }
  }

  std::unique_ptr<Expr> parseUnary(bool StopAtBrace) {
    const Token &T = peek();
    if (T.Kind == TokKind::Operator &&
        (T.Text == "!" || T.Text == "-" || T.Text == "*" || T.Text == "&" ||
         T.Text == "<-" || T.Text == "+")) {
      uint32_t Line = T.Line;
      std::string Op = advance().Text;
      auto E = makeExpr(Expr::Kind::Unary, Line, std::move(Op));
      E->Children.push_back(parseUnary(StopAtBrace));
      return E;
    }
    return parsePostfix(parsePrimary(StopAtBrace), StopAtBrace);
  }

  std::unique_ptr<Expr> parseExpr(bool StopAtBrace) {
    auto Lhs = parseUnary(StopAtBrace);
    while (isBinaryOp(peek())) {
      uint32_t Line = peek().Line;
      std::string Op = advance().Text;
      auto Bin = makeExpr(Expr::Kind::Binary, Line, std::move(Op));
      Bin->Children.push_back(std::move(Lhs));
      Bin->Children.push_back(parseUnary(StopAtBrace));
      Lhs = std::move(Bin);
    }
    return Lhs;
  }

  std::vector<std::unique_ptr<Expr>> parseExprList(bool StopAtBrace) {
    std::vector<std::unique_ptr<Expr>> List;
    List.push_back(parseExpr(StopAtBrace));
    while (accept(TokKind::Punct, ","))
      List.push_back(parseExpr(StopAtBrace));
    return List;
  }

  static std::string flattenSelector(const Expr &E) {
    if (E.K == Expr::Kind::Ident)
      return E.Text;
    if (E.K == Expr::Kind::Selector && !E.Children.empty())
      return flattenSelector(*E.Children[0]) + "." + E.Text;
    return E.Text;
  }

  //===--------------------------------------------------------------------===
  // Statements
  //===--------------------------------------------------------------------===

  std::unique_ptr<Stmt> makeStmt(Stmt::Kind K, uint32_t Line) {
    auto S = std::make_unique<Stmt>();
    S->K = K;
    S->Line = Line;
    return S;
  }

  /// Simple statement: expression, assignment, short declaration, or
  /// inc/dec. Shared by statement position and if/for headers.
  std::unique_ptr<Stmt> parseSimpleStmt(bool StopAtBrace) {
    uint32_t Line = peek().Line;
    auto Lhs = parseExprList(StopAtBrace);

    if (atOp(":=")) {
      advance();
      auto S = makeStmt(Stmt::Kind::ShortVarDecl, Line);
      for (const auto &E : Lhs)
        S->Names.push_back(E && E->K == Expr::Kind::Ident ? E->Text : "_");
      S->Exprs = parseExprList(StopAtBrace);
      return S;
    }
    if (isAssignOp(peek())) {
      auto S = makeStmt(Stmt::Kind::Assign, Line);
      S->Text = advance().Text;
      S->NumLhs = Lhs.size();
      S->Exprs = std::move(Lhs);
      for (auto &Rhs : parseExprList(StopAtBrace))
        S->Exprs.push_back(std::move(Rhs));
      return S;
    }
    if (atOp("++") || atOp("--")) {
      // `x++` is sugar for `x = x + 1`: model as Assign with one side.
      auto S = makeStmt(Stmt::Kind::Assign, Line);
      S->Text = advance().Text;
      S->NumLhs = Lhs.size();
      S->Exprs = std::move(Lhs);
      return S;
    }
    auto S = makeStmt(Stmt::Kind::ExprStmt, Line);
    S->Exprs = std::move(Lhs);
    return S;
  }

  std::unique_ptr<Stmt> parseIf() {
    uint32_t Line = peek().Line;
    advance(); // `if`
    auto S = makeStmt(Stmt::Kind::If, Line);
    auto First = parseSimpleStmt(/*StopAtBrace=*/true);
    if (accept(TokKind::Punct, ";")) {
      // Init statement then condition.
      S->Stmts.push_back(nullptr); // Placeholder replaced below.
      auto Cond = parseSimpleStmt(/*StopAtBrace=*/true);
      if (!Cond->Exprs.empty())
        S->Exprs.push_back(std::move(Cond->Exprs.front()));
      S->Stmts[0] = std::move(First); // Keep init as Stmts[0]? No:
      // Layout promise: Stmts[0]=then, Stmts[1]=else. Fold the init in
      // front of the then-block instead (checks care about exprs only).
      auto Init = std::move(S->Stmts[0]);
      S->Stmts.clear();
      auto Then = parseBlock();
      if (Init && Then)
        Then->Stmts.insert(Then->Stmts.begin(), std::move(Init));
      S->Stmts.push_back(std::move(Then));
    } else {
      if (!First->Exprs.empty())
        S->Exprs.push_back(std::move(First->Exprs.front()));
      S->Stmts.push_back(parseBlock());
    }
    if (accept(TokKind::Keyword, "else")) {
      if (atKeyword("if"))
        S->Stmts.push_back(parseIf());
      else
        S->Stmts.push_back(parseBlock());
    }
    return S;
  }

  /// \returns true if a depth-0 `range` keyword occurs before the body
  /// brace (lookahead only).
  bool loopIsRange() const {
    int Depth = 0;
    for (size_t Ahead = 0;; ++Ahead) {
      const Token &T = peek(Ahead);
      if (T.Kind == TokKind::EndOfFile)
        return false;
      if (T.Kind == TokKind::Punct) {
        if (T.Text == "(" || T.Text == "[")
          ++Depth;
        if (T.Text == ")" || T.Text == "]")
          --Depth;
        if (T.Text == "{" && Depth == 0)
          return false;
        if (T.Text == ";" && Depth == 0)
          return false;
      }
      if (Depth == 0 && T.Kind == TokKind::Keyword && T.Text == "range")
        return true;
    }
  }

  std::unique_ptr<Stmt> parseFor() {
    uint32_t Line = peek().Line;
    advance(); // `for`

    if (atPunct("{")) { // `for { ... }`
      auto S = makeStmt(Stmt::Kind::For, Line);
      S->Stmts.push_back(parseBlock());
      return S;
    }

    if (loopIsRange()) {
      auto S = makeStmt(Stmt::Kind::RangeFor, Line);
      if (!atKeyword("range")) {
        // `k, v := range X` / `k = range X`.
        auto Vars = parseExprList(/*StopAtBrace=*/true);
        for (const auto &V : Vars)
          S->Names.push_back(V && V->K == Expr::Kind::Ident ? V->Text : "_");
        if (!atOp(":=") && !atOp("="))
          error("expected := or = in range clause");
        else
          advance();
      }
      accept(TokKind::Keyword, "range");
      S->Exprs.push_back(parseExpr(/*StopAtBrace=*/true));
      S->Stmts.push_back(parseBlock());
      return S;
    }

    auto S = makeStmt(Stmt::Kind::For, Line);
    auto Init = parseSimpleStmt(/*StopAtBrace=*/true);
    if (Init->K == Stmt::Kind::ShortVarDecl)
      S->Names = Init->Names;
    for (auto &E : Init->Exprs)
      S->Exprs.push_back(std::move(E));
    if (accept(TokKind::Punct, ";")) {
      if (!atPunct(";") && !atPunct("{"))
        S->Exprs.push_back(parseExpr(/*StopAtBrace=*/true));
      if (accept(TokKind::Punct, ";"))
        if (!atPunct("{")) {
          auto Post = parseSimpleStmt(/*StopAtBrace=*/true);
          for (auto &E : Post->Exprs)
            S->Exprs.push_back(std::move(E));
        }
    }
    S->Stmts.push_back(parseBlock());
    return S;
  }

  std::unique_ptr<Stmt> parseVarDecl() {
    uint32_t Line = peek().Line;
    advance(); // `var`
    auto S = makeStmt(Stmt::Kind::VarDecl, Line);
    if (atPunct("(")) { // Grouped declarations: skip (rare in bodies).
      skipBalanced();
      return S;
    }
    while (peek().Kind == TokKind::Identifier) {
      S->Names.push_back(advance().Text);
      if (!accept(TokKind::Punct, ","))
        break;
    }
    if (!atOp("=") && !atPunct(";"))
      S->Text = parseTypeText();
    if (accept(TokKind::Operator, "="))
      S->Exprs = parseExprList(/*StopAtBrace=*/false);
    return S;
  }

  std::unique_ptr<Stmt> parseStmt() {
    while (accept(TokKind::Punct, ";"))
      ;
    uint32_t Line = peek().Line;

    if (atPunct("{"))
      return parseBlock();
    if (atKeyword("go")) {
      advance();
      auto S = makeStmt(Stmt::Kind::Go, Line);
      S->Exprs.push_back(parseExpr(/*StopAtBrace=*/false));
      return S;
    }
    if (atKeyword("defer")) {
      advance();
      auto S = makeStmt(Stmt::Kind::DeferStmt, Line);
      S->Exprs.push_back(parseExpr(/*StopAtBrace=*/false));
      return S;
    }
    if (atKeyword("return")) {
      advance();
      auto S = makeStmt(Stmt::Kind::Return, Line);
      if (!atPunct(";") && !atPunct("}"))
        S->Exprs = parseExprList(/*StopAtBrace=*/false);
      return S;
    }
    if (atKeyword("if"))
      return parseIf();
    if (atKeyword("for"))
      return parseFor();
    if (atKeyword("var"))
      return parseVarDecl();
    if (atKeyword("break") || atKeyword("continue") ||
        atKeyword("goto") || atKeyword("fallthrough")) {
      advance();
      if (peek().Kind == TokKind::Identifier)
        advance(); // Label.
      return makeStmt(Stmt::Kind::Other, Line);
    }
    if (atKeyword("switch") || atKeyword("select") || atKeyword("const") ||
        atKeyword("type")) {
      // Out of subset: skip the header then the balanced body.
      auto S = makeStmt(Stmt::Kind::Other, Line);
      S->Text = peek().Text;
      while (!atEnd() && !atPunct("{") && !atPunct(";"))
        advance();
      if (atPunct("{"))
        skipBalanced();
      return S;
    }
    return parseSimpleStmt(/*StopAtBrace=*/false);
  }

  std::unique_ptr<Stmt> parseBlock() {
    uint32_t Line = peek().Line;
    auto Block = makeStmt(Stmt::Kind::Block, Line);
    if (!accept(TokKind::Punct, "{")) {
      error("expected '{'");
      recoverToStatementBoundary();
      return Block;
    }
    while (!atEnd() && !atPunct("}")) {
      size_t Before = Pos;
      Block->Stmts.push_back(parseStmt());
      while (accept(TokKind::Punct, ";"))
        ;
      if (Pos == Before) { // Guaranteed progress.
        error("stuck token '" + peek().Text + "'");
        advance();
      }
    }
    accept(TokKind::Punct, "}");
    return Block;
  }

  //===--------------------------------------------------------------------===
  // Declarations
  //===--------------------------------------------------------------------===

  void parseFuncDecl(File &Out) {
    uint32_t Line = peek().Line;
    advance(); // `func`
    FuncDecl Fn;
    Fn.Line = Line;

    if (atPunct("(")) { // Method receiver.
      advance();
      if (peek().Kind == TokKind::Identifier &&
          !(peek(1).Kind == TokKind::Punct && peek(1).Text == ")"))
        Fn.ReceiverName = advance().Text;
      Fn.ReceiverType = parseTypeText();
      accept(TokKind::Punct, ")");
    }
    if (peek().Kind == TokKind::Identifier)
      Fn.Name = advance().Text;
    Fn.Params = parseParamList();
    if (!atPunct("{") && !atPunct(";"))
      Fn.Results = parseResults();
    if (atPunct("{"))
      Fn.Body = parseBlock();
    Out.Funcs.push_back(std::move(Fn));
  }

public:
  std::vector<std::string> Errors;

private:
  std::vector<Token> Tokens;
  size_t Pos = 0;
};

File Parser::parseFile() {
  File Out;
  while (!atEnd()) {
    if (atKeyword("package")) {
      advance();
      if (peek().Kind == TokKind::Identifier)
        Out.PackageName = advance().Text;
      continue;
    }
    if (atKeyword("import")) {
      advance();
      if (atPunct("("))
        skipBalanced();
      else if (peek().Kind == TokKind::String ||
               peek().Kind == TokKind::Identifier) {
        advance();
        if (peek().Kind == TokKind::String)
          advance(); // Aliased import.
      }
      continue;
    }
    if (atKeyword("func")) {
      parseFuncDecl(Out);
      continue;
    }
    if (atKeyword("type") || atKeyword("var") || atKeyword("const")) {
      // Top-level declarations: skip to the statement boundary (balanced,
      // so struct bodies are consumed whole).
      advance();
      while (!atEnd() && !atPunct(";")) {
        if (atPunct("{") || atPunct("("))
          skipBalanced();
        else
          advance();
      }
      continue;
    }
    advance(); // Unknown top-level token: recover.
  }
  Out.Errors = std::move(Errors);
  return Out;
}

} // namespace

ast::File grs::analysis::parseGo(std::string_view Source) {
  Parser P(Source);
  return P.parseFile();
}
