//===- analysis/Parser.h - Error-tolerant parser for the Go subset -*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the Go subset the static race checks
/// analyze: functions/methods (including named results), blocks, short
/// variable declarations, assignments, if/for/range, go/defer statements,
/// returns, calls, selectors, indexing, closures.
///
/// Error tolerance over completeness: unrecognized constructs become
/// ast::Stmt::Kind::Other / ast::Expr::Kind::Other and parsing resumes at
/// the next statement boundary — a PR-gate linter must never die on the
/// code it scans (§3.2).
///
//===----------------------------------------------------------------------===//

#ifndef GRS_ANALYSIS_PARSER_H
#define GRS_ANALYSIS_PARSER_H

#include "analysis/Ast.h"
#include "analysis/Lexer.h"

#include <string_view>

namespace grs {
namespace analysis {

/// Parses Go source text into an ast::File. Never throws; recovered
/// errors are collected in File::Errors.
ast::File parseGo(std::string_view Source);

} // namespace analysis
} // namespace grs

#endif // GRS_ANALYSIS_PARSER_H
