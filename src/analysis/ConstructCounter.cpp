//===- analysis/ConstructCounter.cpp - Table 1 feature census --------------===//

#include "analysis/ConstructCounter.h"

#include <algorithm>

using namespace grs;
using namespace grs::analysis;

ConstructCounts &ConstructCounts::operator+=(const ConstructCounts &Other) {
  Lines += Other.Lines;
  GoStatements += Other.GoStatements;
  ThreadStarts += Other.ThreadStarts;
  Synchronized += Other.Synchronized;
  AcquireRelease += Other.AcquireRelease;
  LockUnlock += Other.LockUnlock;
  RLockRUnlock += Other.RLockRUnlock;
  ChannelOps += Other.ChannelOps;
  WaitGroups += Other.WaitGroups;
  BarrierLatchPhaser += Other.BarrierLatchPhaser;
  MapConstructs += Other.MapConstructs;
  return *this;
}

/// \returns true if tokens at [I, end) start with `.` Name `(`.
static bool isMethodCall(const std::vector<Token> &Tokens, size_t I,
                         std::string_view Name) {
  return I + 2 < Tokens.size() && Tokens[I].is(TokKind::Operator, ".") &&
         Tokens[I + 1].Kind == TokKind::Identifier &&
         Tokens[I + 1].Text == Name && Tokens[I + 2].is(TokKind::Punct, "(");
}

ConstructCounts
grs::analysis::countConstructs(Lang Language,
                               const std::vector<Token> &Tokens,
                               uint64_t Lines) {
  ConstructCounts Counts;
  Counts.Lines = Lines;

  for (size_t I = 0; I < Tokens.size(); ++I) {
    const Token &T = Tokens[I];

    if (Language == Lang::Go) {
      // `go <call>`: the keyword followed by a callable expression.
      if (T.is(TokKind::Keyword, "go"))
        ++Counts.GoStatements;
      if (T.is(TokKind::Operator, "<-"))
        ++Counts.ChannelOps;
      if (isMethodCall(Tokens, I, "Lock") || isMethodCall(Tokens, I, "Unlock"))
        ++Counts.LockUnlock;
      if (isMethodCall(Tokens, I, "RLock") ||
          isMethodCall(Tokens, I, "RUnlock"))
        ++Counts.RLockRUnlock;
      if (T.Kind == TokKind::Identifier && T.Text == "WaitGroup")
        ++Counts.WaitGroups;
      // `map[` — the built-in map type constructor.
      if (T.is(TokKind::Keyword, "map") && I + 1 < Tokens.size() &&
          Tokens[I + 1].is(TokKind::Punct, "["))
        ++Counts.MapConstructs;
      continue;
    }

    // Java.
    if (T.is(TokKind::Keyword, "synchronized"))
      ++Counts.Synchronized;
    if (isMethodCall(Tokens, I, "start"))
      ++Counts.ThreadStarts;
    if (isMethodCall(Tokens, I, "acquire") ||
        isMethodCall(Tokens, I, "release"))
      ++Counts.AcquireRelease;
    if (isMethodCall(Tokens, I, "lock") || isMethodCall(Tokens, I, "unlock"))
      ++Counts.LockUnlock;
    if (T.Kind == TokKind::Identifier &&
        (T.Text == "CyclicBarrier" || T.Text == "CountDownLatch" ||
         T.Text == "Phaser"))
      ++Counts.BarrierLatchPhaser;
    if (T.Kind == TokKind::Identifier &&
        (T.Text == "HashMap" || T.Text == "TreeMap" ||
         T.Text == "ConcurrentHashMap" || T.Text == "Map" ||
         T.Text == "LinkedHashMap"))
      ++Counts.MapConstructs;
  }
  return Counts;
}

ConstructCounts grs::analysis::countConstructs(Lang Language,
                                               std::string_view Source) {
  uint64_t Lines =
      static_cast<uint64_t>(std::count(Source.begin(), Source.end(), '\n')) +
      (!Source.empty() && Source.back() != '\n' ? 1 : 0);
  return countConstructs(Language, lex(Language, Source), Lines);
}
