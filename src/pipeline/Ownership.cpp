//===- pipeline/Ownership.cpp - Race defect ownership ----------------------===//

#include "pipeline/Ownership.h"

#include <algorithm>

using namespace grs;
using namespace grs::pipeline;

bool OwnershipResolver::assignable(DevId Dev, const char *Role,
                                   Resolution &Result) const {
  if (std::find(Result.Candidates.begin(), Result.Candidates.end(), Dev) ==
      Result.Candidates.end())
    Result.Candidates.push_back(Dev);
  if (!Repo.isActive(Dev)) {
    Result.Log.push_back(Repo.developerName(Dev) + " (" + Role +
                         ") has left the organization; skipping");
    return false;
  }
  if (!Repo.isActive(Repo.managerOf(Dev))) {
    Result.Log.push_back(Repo.developerName(Dev) + " (" + Role +
                         ") has no active manager; deprioritized");
    return false;
  }
  Result.Log.push_back("assigning to " + Repo.developerName(Dev) + " (" +
                       Role + ")");
  return true;
}

Resolution OwnershipResolver::resolve(const ReportSites &Sites,
                                      support::Rng &Rng) const {
  Resolution Result;

  // Preference 1: the last modifiers of the two chains' ROOT files ("the
  // author of code higher up in the call stack").
  for (FileId Root : {Sites.RootA, Sites.RootB}) {
    DevId Dev = Repo.lastModifier(Root);
    Result.Log.push_back("root frame in " + Repo.filePath(Root) +
                         ", last modified by " + Repo.developerName(Dev));
    if (assignable(Dev, "root-frame last modifier", Result)) {
      Result.Assignee = Dev;
      return Result;
    }
  }

  // Preference 2: frequent modifiers of the root files (churn-resilient).
  for (FileId Root : {Sites.RootA, Sites.RootB})
    for (DevId Dev : Repo.frequentModifiers(Root))
      if (assignable(Dev, "frequent modifier", Result)) {
        Result.Assignee = Dev;
        return Result;
      }

  // Preference 3: owning-team metadata on the root file.
  uint32_t Team = Repo.owningTeam(Sites.RootA);
  DevId TeamMember = Repo.anyActiveTeamMember(Team);
  Result.Log.push_back("falling back to owning team " +
                       std::to_string(Team));
  if (assignable(TeamMember, "owning-team member", Result)) {
    Result.Assignee = TeamMember;
    return Result;
  }

  // Preference 4: leaf-frame authors (they wrote the racing accesses).
  for (FileId Leaf : {Sites.LeafA, Sites.LeafB})
    for (DevId Dev : Repo.frequentModifiers(Leaf))
      if (assignable(Dev, "leaf-frame modifier", Result)) {
        Result.Assignee = Dev;
        return Result;
      }

  // Last resort: triage queue (a random candidate; defects "get triaged
  // and eventually get reassigned to appropriate owners").
  Result.Assignee = Result.Candidates.empty()
                        ? 0
                        : Rng.pick(Result.Candidates);
  Result.Log.push_back("no active candidate; routing to triage as " +
                       Repo.developerName(Result.Assignee));
  return Result;
}
