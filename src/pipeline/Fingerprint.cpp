//===- pipeline/Fingerprint.cpp - Race report fingerprinting ---------------===//

#include "pipeline/Fingerprint.h"

#include "support/Hash.h"

using namespace grs;
using namespace grs::pipeline;

uint64_t grs::pipeline::fingerprintChains(const NameChain &A,
                                          const NameChain &B) {
  // Lexicographic ordering of the two chains, so (A, B) and (B, A) — the
  // two possible observation orders of the same race — collide.
  const NameChain *First = &A;
  const NameChain *Second = &B;
  if (std::lexicographical_compare(B.begin(), B.end(), A.begin(), A.end()))
    std::swap(First, Second);

  support::Fnv1a Hasher;
  for (const std::string &Function : *First)
    Hasher.addString(Function);
  Hasher.addByte(0xfe); // Chain separator.
  for (const std::string &Function : *Second)
    Hasher.addString(Function);
  return Hasher.digest();
}

NameChain grs::pipeline::nameChainOf(const race::StringInterner &Interner,
                                     const race::CallChain &Chain) {
  NameChain Names;
  Names.reserve(Chain.size());
  for (const race::Frame &F : Chain)
    Names.push_back(Interner.text(F.Function)); // Lines dropped here.
  return Names;
}

uint64_t grs::pipeline::raceFingerprint(const race::StringInterner &Interner,
                                        const race::RaceReport &Report) {
  return fingerprintChains(nameChainOf(Interner, Report.Previous.Chain),
                           nameChainOf(Interner, Report.Current.Chain));
}
