//===- pipeline/RootCause.cpp - Root-cause clustering of reports -----------===//

#include "pipeline/RootCause.h"

#include <algorithm>

using namespace grs;
using namespace grs::pipeline;

size_t RootCauseGrouper::findRoot(size_t Index) const {
  while (ParentOf[Index] != Index) {
    ParentOf[Index] = ParentOf[ParentOf[Index]]; // Path halving.
    Index = ParentOf[Index];
  }
  return Index;
}

void RootCauseGrouper::unite(size_t A, size_t B) {
  size_t RootA = findRoot(A);
  size_t RootB = findRoot(B);
  if (RootA != RootB)
    ParentOf[std::max(RootA, RootB)] = std::min(RootA, RootB);
}

void RootCauseGrouper::linkKey(const std::string &KeyText, size_t Index) {
  auto [It, Inserted] = FirstReportForKey.try_emplace(KeyText, Index);
  if (!Inserted)
    unite(It->second, Index);
}

size_t RootCauseGrouper::addReport(const race::StringInterner &Interner,
                                   const race::RaceReport &Report) {
  size_t Index = ParentOf.size();
  ParentOf.push_back(Index);

  for (const race::AccessSnapshot *Side :
       {&Report.Previous, &Report.Current}) {
    if (Side->Chain.empty())
      continue;
    const race::Frame &Leaf = Side->Chain.back();
    std::string KeyText = Granularity == Key::LeafFunction
                              ? Interner.text(Leaf.Function)
                              : Interner.text(Leaf.File);
    linkKey(KeyText, Index);
  }
  return Index;
}

std::vector<std::vector<size_t>> RootCauseGrouper::clusters() const {
  std::unordered_map<size_t, std::vector<size_t>> ByRoot;
  for (size_t Index = 0; Index < ParentOf.size(); ++Index)
    ByRoot[findRoot(Index)].push_back(Index);

  std::vector<std::vector<size_t>> Result;
  Result.reserve(ByRoot.size());
  for (auto &[Root, Members] : ByRoot)
    Result.push_back(std::move(Members));
  // Deterministic order: by smallest member.
  std::sort(Result.begin(), Result.end(),
            [](const auto &A, const auto &B) { return A[0] < B[0]; });
  return Result;
}
