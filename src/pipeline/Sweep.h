//===- pipeline/Sweep.h - Seed-sweep testing harness ------------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library form of the recommended testing recipe (examples/race_hunt):
/// run a program body across many schedules, aggregate detections, and
/// de-duplicate findings with the §3.3.1 fingerprint. Where `go test
/// -race` gives one roll of the OS-scheduler dice, a sweep gives a
/// controlled sample of the interleaving space — directly confronting the
/// §3.1 attributes (execution-dependence, interleaving-dependence).
///
//===----------------------------------------------------------------------===//

#ifndef GRS_PIPELINE_SWEEP_H
#define GRS_PIPELINE_SWEEP_H

#include "obs/Timeline.h"
#include "pipeline/Fingerprint.h"
#include "rt/Runtime.h"

#include <functional>
#include <map>
#include <string>

namespace grs {
namespace pipeline {

/// Aggregated outcome of a seed sweep.
struct SweepResult {
  uint64_t SeedsRun = 0;
  uint64_t SeedsWithRaces = 0;
  uint64_t SeedsWithLeaks = 0;
  uint64_t SeedsWithPanics = 0;
  uint64_t SeedsDeadlocked = 0;
  uint64_t TotalReports = 0;
  /// §3.3.1 fingerprint -> {times seen, rendered sample report}.
  struct Finding {
    size_t Occurrences = 0;
    std::string SampleReport;

    bool operator==(const Finding &) const = default;
  };
  std::map<uint64_t, Finding> Findings;

  /// Bit-for-bit equality, including every finding's sample report; the
  /// sweep engines (trace::parallelSweep, sweep::adaptive) are specified
  /// as indistinguishable from the serial sweep, and their parity tests
  /// compare through this.
  bool operator==(const SweepResult &) const = default;

  /// Detection rate across schedules — 1.0 for always-manifesting bugs,
  /// fractional for the schedule-dependent ones.
  double detectionRate() const {
    return SeedsRun ? static_cast<double>(SeedsWithRaces) /
                          static_cast<double>(SeedsRun)
                    : 0.0;
  }
  bool clean() const {
    return SeedsWithRaces == 0 && SeedsWithLeaks == 0 &&
           SeedsWithPanics == 0 && SeedsDeadlocked == 0;
  }
};

/// Sweep options.
struct SweepOptions {
  uint64_t FirstSeed = 1;
  uint64_t NumSeeds = 50;
  /// Base options applied to every run (Seed overwritten per run).
  rt::RunOptions Run;
  /// Optional flight recorder (borrowed): each slot records a "slot"
  /// span on the "sweep" track. Recording never perturbs the runs.
  obs::Timeline *Timeline = nullptr;
};

/// Runs \p Body under NumSeeds schedules and aggregates.
inline SweepResult sweep(const SweepOptions &Opts,
                         const std::function<void()> &Body) {
  SweepResult Result;
  obs::TimelineTrack *Track =
      Opts.Timeline ? Opts.Timeline->track("sweep") : nullptr;
  for (uint64_t I = 0; I < Opts.NumSeeds; ++I) {
    rt::RunOptions RunOpts = Opts.Run;
    RunOpts.Seed = Opts.FirstSeed + I;
    RunOpts.TimelineTrack = Track;
    // The args string is built only when a track exists, so an untraced
    // sweep pays a single branch per slot.
    obs::TimelineScope SlotSpan =
        Track ? obs::TimelineScope(Track, "slot",
                                   "\"slot\":" + std::to_string(I) +
                                       ",\"seed\":" +
                                       std::to_string(RunOpts.Seed))
              : obs::TimelineScope();
    RunOpts.OnReport = [&Result](const race::Detector &D,
                                 const race::RaceReport &Report) {
      uint64_t Fp = raceFingerprint(D.interner(), Report);
      auto &Finding = Result.Findings[Fp];
      ++Finding.Occurrences;
      if (Finding.SampleReport.empty())
        Finding.SampleReport = race::reportToString(D.interner(), Report);
    };
    rt::Runtime RT(RunOpts);
    rt::RunResult Run = RT.run(Body);
    ++Result.SeedsRun;
    Result.SeedsWithRaces += Run.RaceCount > 0;
    Result.SeedsWithLeaks += !Run.LeakedGoroutines.empty();
    Result.SeedsWithPanics += !Run.Panics.empty();
    Result.SeedsDeadlocked += Run.Deadlocked;
    Result.TotalReports += Run.RaceCount;
  }
  return Result;
}

/// Convenience: sweep with default options and \p NumSeeds schedules.
inline SweepResult sweep(uint64_t NumSeeds,
                         const std::function<void()> &Body) {
  SweepOptions Opts;
  Opts.NumSeeds = NumSeeds;
  return sweep(Opts, Body);
}

} // namespace pipeline
} // namespace grs

#endif // GRS_PIPELINE_SWEEP_H
