//===- pipeline/Monorepo.h - Synthetic monorepo model -----------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded model of the social/structural substrate the deployment ran
/// against: services, files, functions, developers, teams — plus the two
/// dynamics §3.3.2 calls out as hard: organizational churn (developers
/// leaving) and mass refactorings (file authorship shifting). The
/// ownership resolver consumes this model; the deployment simulator
/// advances it day by day.
///
/// Scaled ~10x down from Uber's numbers (2100 services, thousands of
/// developers) so simulations run in milliseconds; all the paper's
/// *ratios* are scale-free.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_PIPELINE_MONOREPO_H
#define GRS_PIPELINE_MONOREPO_H

#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grs {
namespace pipeline {

/// Developer id within the model.
using DevId = uint32_t;
/// File id within the model.
using FileId = uint32_t;

struct MonorepoConfig {
  uint64_t Seed = 1;
  size_t NumServices = 210;      // Paper: 2100.
  size_t FilesPerService = 8;
  size_t FunctionsPerFile = 6;
  size_t NumDevelopers = 500;    // Paper: "hundreds of Go developers".
  size_t NumTeams = 60;
  /// Daily probability that any given developer departs (churn).
  double DailyDeveloperChurn = 0.0005;
  /// Daily probability that a file is mass-refactored (authorship reset).
  double DailyFileRefactor = 0.0008;
};

/// A function site in the model, identifying its file (and thereby
/// service, team, and authorship).
struct FunctionRef {
  FileId File = 0;
  uint32_t Index = 0; // Function index within the file.
};

/// See file comment.
class MonorepoModel {
public:
  explicit MonorepoModel(const MonorepoConfig &Config);

  size_t numDevelopers() const { return Developers.size(); }
  size_t numFiles() const { return Files.size(); }
  size_t numServices() const { return Config.NumServices; }

  /// Uniformly random function site.
  FunctionRef randomFunction(support::Rng &Rng) const;

  /// Random function within the same service as \p Site (call chains stay
  /// mostly service-local).
  FunctionRef randomFunctionNear(support::Rng &Rng, FunctionRef Site) const;

  /// "pkg/service042/file3.go".
  std::string filePath(FileId File) const;

  /// "service042.file3.Func2".
  std::string functionName(FunctionRef Ref) const;

  /// The most recent modifier of the file (candidate assignee a).
  DevId lastModifier(FileId File) const;

  /// Authors who frequently modify the file (heuristic (a) of §3.3.2).
  const std::vector<DevId> &frequentModifiers(FileId File) const;

  /// The owning team's id (heuristic (b): "metadata attached to the
  /// source describing the owning team").
  uint32_t owningTeam(FileId File) const;

  /// An active developer on \p Team, if any (team-based fallback).
  DevId anyActiveTeamMember(uint32_t Team) const;

  /// Heuristic (c): "the presence of the developer and their manager in
  /// the organization".
  bool isActive(DevId Dev) const;
  DevId managerOf(DevId Dev) const;
  std::string developerName(DevId Dev) const;

  /// Advances churn and refactoring by one simulated day.
  void advanceDay(support::Rng &Rng);

private:
  struct Developer {
    std::string Name;
    uint32_t Team = 0;
    DevId Manager = 0;
    bool Active = true;
  };
  struct SourceFile {
    uint32_t Service = 0;
    uint32_t IndexInService = 0;
    uint32_t Team = 0;
    std::vector<DevId> FrequentModifiers; // [0] is the last modifier.
  };

  MonorepoConfig Config;
  std::vector<Developer> Developers;
  std::vector<SourceFile> Files;
};

} // namespace pipeline
} // namespace grs

#endif // GRS_PIPELINE_MONOREPO_H
