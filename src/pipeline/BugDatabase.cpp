//===- pipeline/BugDatabase.cpp - Race defect tracking ---------------------===//

#include "pipeline/BugDatabase.h"

#include <algorithm>
#include <cassert>

using namespace grs;
using namespace grs::pipeline;

FileOutcome BugDatabase::fileReport(uint64_t Fp, DevId Assignee,
                                    uint32_t Day,
                                    std::vector<std::string> Log) {
  FileOutcome Outcome;
  auto Found = OpenByFingerprint.find(Fp);
  if (Found != OpenByFingerprint.end()) {
    // Suppress iff an active defect with the same hash is already open.
    ++Suppressed;
    Outcome.Suppressed = true;
    Outcome.Id = Found->second;
    return Outcome;
  }
  Task NewTask;
  NewTask.Id = static_cast<TaskId>(Tasks.size());
  NewTask.Fingerprint = Fp;
  NewTask.Assignee = Assignee;
  NewTask.CreatedDay = Day;
  NewTask.AssignmentLog = std::move(Log);
  OpenByFingerprint.emplace(Fp, NewTask.Id);
  Open.push_back(NewTask.Id);
  Tasks.push_back(std::move(NewTask));
  Outcome.Created = true;
  Outcome.Id = Tasks.back().Id;
  return Outcome;
}

void BugDatabase::markFixed(TaskId Id, uint32_t Day) {
  assert(Id < Tasks.size() && "unknown task");
  Task &T = Tasks[Id];
  if (T.Status == TaskStatus::Fixed)
    return;
  T.Status = TaskStatus::Fixed;
  T.FixedDay = Day;
  OpenByFingerprint.erase(T.Fingerprint);
  Open.erase(std::remove(Open.begin(), Open.end(), Id), Open.end());
}

const Task *BugDatabase::openTaskFor(uint64_t Fp) const {
  auto Found = OpenByFingerprint.find(Fp);
  if (Found == OpenByFingerprint.end())
    return nullptr;
  return &Tasks[Found->second];
}
