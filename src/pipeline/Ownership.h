//===- pipeline/Ownership.h - Race defect ownership -------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §3.3.2's assignee determination. "We choose to report it to the owner
/// of the root nodes of the call stacks" because those developers "have a
/// stake in the functional correctness of their code and are hence
/// incentivized to eliminate a race and drive the issue to closure even
/// if it is in a downstream library." Fallbacks consider (a) frequent
/// modifiers, (b) owning-team metadata, and (c) whether the developer and
/// their manager are still present. "Attaching a log of how our algorithm
/// arrived at the choice of the assignee ... was useful to the
/// developers" — resolve() produces that log.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_PIPELINE_OWNERSHIP_H
#define GRS_PIPELINE_OWNERSHIP_H

#include "pipeline/Monorepo.h"

#include <string>
#include <vector>

namespace grs {
namespace pipeline {

/// The file locations a race report exposes to the resolver: roots and
/// leaves of the two conflicting call chains.
struct ReportSites {
  FileId RootA = 0;
  FileId RootB = 0;
  FileId LeafA = 0;
  FileId LeafB = 0;
};

/// Outcome of ownership resolution.
struct Resolution {
  DevId Assignee = 0;
  /// Everyone the algorithm considered (surfaced to the developer).
  std::vector<DevId> Candidates;
  /// Human-readable decision trail.
  std::vector<std::string> Log;
};

/// See file comment.
class OwnershipResolver {
public:
  explicit OwnershipResolver(const MonorepoModel &Repo) : Repo(Repo) {}

  /// Picks an assignee for a race whose chains touch \p Sites.
  Resolution resolve(const ReportSites &Sites, support::Rng &Rng) const;

private:
  /// \returns true and logs if \p Dev is assignable (active, with an
  /// active manager).
  bool assignable(DevId Dev, const char *Role,
                  Resolution &Result) const;

  const MonorepoModel &Repo;
};

} // namespace pipeline
} // namespace grs

#endif // GRS_PIPELINE_OWNERSHIP_H
