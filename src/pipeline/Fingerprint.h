//===- pipeline/Fingerprint.h - Race report fingerprinting ------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §3.3.1 de-duplication hash, "relatively resilient" to
/// source evolution:
///
///  1. "We first ignore the source line numbers in both call chains,
///     which takes care of unrelated code modifications within a
///     function."
///  2. "Second, we order the two call stacks lexicographically; meaning
///     two call chains P() -> Q() -> R() and A() -> B() -> C() are always
///     ordered as A() -> B() -> C() and P() -> Q() -> R(), irrespective
///     of the order in which the execution happened."
///
/// The hash deliberately does NOT include access kinds or the memory
/// address: the same pair of chains differing only in line numbers (or in
/// which side raced first) must collide, per the paper.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_PIPELINE_FINGERPRINT_H
#define GRS_PIPELINE_FINGERPRINT_H

#include "race/Report.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grs {
namespace pipeline {

/// A call chain reduced to what the fingerprint keys on: the function
/// names, root first.
using NameChain = std::vector<std::string>;

/// Core fingerprint over two name chains (order-insensitive).
uint64_t fingerprintChains(const NameChain &A, const NameChain &B);

/// Extracts the name chain of one access (dropping files/lines).
NameChain nameChainOf(const race::StringInterner &Interner,
                      const race::CallChain &Chain);

/// Fingerprint of a detector report (the production entry point).
uint64_t raceFingerprint(const race::StringInterner &Interner,
                         const race::RaceReport &Report);

} // namespace pipeline
} // namespace grs

#endif // GRS_PIPELINE_FINGERPRINT_H
