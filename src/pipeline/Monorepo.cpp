//===- pipeline/Monorepo.cpp - Synthetic monorepo model --------------------===//

#include "pipeline/Monorepo.h"

#include <cassert>

using namespace grs;
using namespace grs::pipeline;

MonorepoModel::MonorepoModel(const MonorepoConfig &Config) : Config(Config) {
  support::Rng Rng(Config.Seed);

  Developers.resize(Config.NumDevelopers);
  for (size_t I = 0; I < Developers.size(); ++I) {
    Developer &Dev = Developers[I];
    Dev.Name = "dev" + std::to_string(I);
    Dev.Team = static_cast<uint32_t>(Rng.nextBelow(Config.NumTeams));
    Dev.Active = true;
  }
  // Managers: one designated lead per team; leads report to dev 0.
  std::vector<DevId> TeamLead(Config.NumTeams, 0);
  for (size_t Team = 0; Team < Config.NumTeams; ++Team)
    TeamLead[Team] = static_cast<DevId>(Rng.nextBelow(Developers.size()));
  for (size_t I = 0; I < Developers.size(); ++I)
    Developers[I].Manager = TeamLead[Developers[I].Team];

  // Code ownership is heavily skewed in real organizations: a minority
  // of developers touch most of the shared/library code. Draw file
  // modifiers with a power-law-ish skew so that fix work concentrates on
  // a core group (the paper: 1011 fixes by just 210 engineers).
  auto SkewedDeveloper = [this](support::Rng &R) {
    double U = R.nextDouble();
    double Skewed = U * U * U * U;
    return static_cast<DevId>(Skewed * static_cast<double>(
                                           Developers.size() - 1));
  };

  size_t TotalFiles = Config.NumServices * Config.FilesPerService;
  Files.resize(TotalFiles);
  for (size_t I = 0; I < Files.size(); ++I) {
    SourceFile &File = Files[I];
    File.Service = static_cast<uint32_t>(I / Config.FilesPerService);
    File.IndexInService = static_cast<uint32_t>(I % Config.FilesPerService);
    File.Team = static_cast<uint32_t>(File.Service % Config.NumTeams);
    size_t NumModifiers = 1 + Rng.nextBelow(4);
    for (size_t M = 0; M < NumModifiers; ++M)
      File.FrequentModifiers.push_back(SkewedDeveloper(Rng));
  }
}

FunctionRef MonorepoModel::randomFunction(support::Rng &Rng) const {
  FunctionRef Ref;
  Ref.File = static_cast<FileId>(Rng.nextBelow(Files.size()));
  Ref.Index = static_cast<uint32_t>(Rng.nextBelow(Config.FunctionsPerFile));
  return Ref;
}

FunctionRef MonorepoModel::randomFunctionNear(support::Rng &Rng,
                                              FunctionRef Site) const {
  uint32_t Service = Files[Site.File].Service;
  FunctionRef Ref;
  Ref.File = static_cast<FileId>(Service * Config.FilesPerService +
                                 Rng.nextBelow(Config.FilesPerService));
  Ref.Index = static_cast<uint32_t>(Rng.nextBelow(Config.FunctionsPerFile));
  return Ref;
}

std::string MonorepoModel::filePath(FileId File) const {
  const SourceFile &F = Files[File];
  return "pkg/service" + std::to_string(F.Service) + "/file" +
         std::to_string(F.IndexInService) + ".go";
}

std::string MonorepoModel::functionName(FunctionRef Ref) const {
  const SourceFile &F = Files[Ref.File];
  return "service" + std::to_string(F.Service) + ".file" +
         std::to_string(F.IndexInService) + ".Func" +
         std::to_string(Ref.Index);
}

DevId MonorepoModel::lastModifier(FileId File) const {
  return Files[File].FrequentModifiers.front();
}

const std::vector<DevId> &
MonorepoModel::frequentModifiers(FileId File) const {
  return Files[File].FrequentModifiers;
}

uint32_t MonorepoModel::owningTeam(FileId File) const {
  return Files[File].Team;
}

DevId MonorepoModel::anyActiveTeamMember(uint32_t Team) const {
  for (size_t I = 0; I < Developers.size(); ++I)
    if (Developers[I].Team == Team && Developers[I].Active)
      return static_cast<DevId>(I);
  return 0; // Fall back to dev 0 (the perennial triage owner).
}

bool MonorepoModel::isActive(DevId Dev) const {
  return Developers[Dev].Active;
}

DevId MonorepoModel::managerOf(DevId Dev) const {
  return Developers[Dev].Manager;
}

std::string MonorepoModel::developerName(DevId Dev) const {
  return Developers[Dev].Name;
}

void MonorepoModel::advanceDay(support::Rng &Rng) {
  for (Developer &Dev : Developers)
    if (Dev.Active && Rng.chance(Config.DailyDeveloperChurn))
      Dev.Active = false;
  for (SourceFile &File : Files) {
    if (!Rng.chance(Config.DailyFileRefactor))
      continue;
    // Mass refactoring: a (possibly departed) developer's sweep rewrites
    // the file; authorship history resets to the refactorer.
    DevId Refactorer = static_cast<DevId>(Rng.nextBelow(Developers.size()));
    File.FrequentModifiers.assign(1, Refactorer);
  }
}
