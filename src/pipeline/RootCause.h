//===- pipeline/RootCause.h - Root-cause clustering of reports --*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Remark 2's research direction, prototyped: "the same underlying root
/// cause may result in different pairs of conflicting memory accesses
/// (e.g., absence of a lock causing multiple shared data structures to
/// race). Automatically triaging the root cause and reporting them
/// uniquely is an interesting area of research" (§3.3.1).
///
/// Heuristic here: two reports likely share a root cause when their
/// racing accesses are issued from the same leaf function (one missing
/// lock covers several fields) or their leaf frames live in the same
/// file. Reports are clustered by union-find over those keys; the paper's
/// own data (1011 fixes -> 790 patches, ~78% unique causes) says about a
/// fifth of reports collapse this way.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_PIPELINE_ROOTCAUSE_H
#define GRS_PIPELINE_ROOTCAUSE_H

#include "race/Report.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace grs {
namespace pipeline {

/// Clusters race reports into likely root-cause groups.
class RootCauseGrouper {
public:
  /// Granularity of the sharing heuristic.
  enum class Key : uint8_t {
    LeafFunction, ///< Same innermost function on either side.
    LeafFile,     ///< Same file containing either leaf frame.
  };

  explicit RootCauseGrouper(Key Granularity = Key::LeafFunction)
      : Granularity(Granularity) {}

  /// Adds a report; \returns its index within this grouper.
  size_t addReport(const race::StringInterner &Interner,
                   const race::RaceReport &Report);

  /// \returns the clusters as lists of report indices (each index appears
  /// exactly once; singleton clusters included).
  std::vector<std::vector<size_t>> clusters() const;

  /// Convenience: number of distinct root-cause groups.
  size_t numClusters() const { return clusters().size(); }

  size_t numReports() const { return ParentOf.size(); }

private:
  size_t findRoot(size_t Index) const;
  void unite(size_t A, size_t B);
  void linkKey(const std::string &KeyText, size_t Index);

  Key Granularity;
  mutable std::vector<size_t> ParentOf;
  std::unordered_map<std::string, size_t> FirstReportForKey;
};

} // namespace pipeline
} // namespace grs

#endif // GRS_PIPELINE_ROOTCAUSE_H
