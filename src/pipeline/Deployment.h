//===- pipeline/Deployment.h - Six-month deployment simulator ---*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §3.4/§3.5 deployment as a mechanism-level simulation. Each day
/// (Figure 2's architecture):
///
///   snapshot -> run all unit tests with race detection -> de-duplicate ->
///   file tasks to heuristically-determined owners -> developers fix.
///
/// The phenomena the paper reports all EMERGE from mechanisms rather than
/// being drawn as curves:
///
///  * non-deterministic detection: every latent race carries a
///    per-run manifestation probability (§3.1 attribute 2);
///  * ramped release: "we slowly ramped up the number of data races we
///    reported ... The sudden surge in July is a result of finally
///    opening the flood gates" (Figure 4);
///  * shepherding: fix rates are high while the authors shepherd
///    assignees, then drop ("the authors disengaged from shepherding");
///  * test churn: "enabling and disabling of tests by developers"
///    (Figure 3's fluctuations);
///  * shared root causes: fixes land as patches that may close several
///    sibling races at once ("790 unique patches ... ~78% unique root
///    causes");
///  * fresh introductions: "about five new race reports, on average,
///    every day" arrive as code changes.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_PIPELINE_DEPLOYMENT_H
#define GRS_PIPELINE_DEPLOYMENT_H

#include "pipeline/BugDatabase.h"
#include "pipeline/Monorepo.h"
#include "pipeline/Ownership.h"
#include "support/Stats.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace grs {

namespace obs {
class Registry;
class Timeline;
} // namespace obs

namespace pipeline {

/// How detection is deployed (§3.2's design space).
enum class DeployMode : uint8_t {
  /// Option III, what the paper shipped: periodic post-facto snapshot
  /// runs + bug filing.
  PostFacto,
  /// Remark 1's counterfactual: dynamic race detection additionally runs
  /// at PR time and BLOCKS newly introduced races from landing — to the
  /// extent their schedule-dependent manifestation lets CI see them.
  CiBlocking,
};

struct DeploymentConfig {
  uint64_t Seed = 1;
  /// April through September, inclusive: ~183 days.
  uint32_t Days = 183;
  /// Latent races present in the codebase when the rollout starts.
  uint32_t InitialLatentRaces = 1400;
  /// Mean Poisson arrival of newly introduced latent races per day.
  double NewRacesPerDay = 5.0;
  /// Shepherding phase: authors drive assignees to fix (April-June).
  uint32_t ShepherdingEndDay = 80;
  /// Day the ramp ends and ALL detected races are filed ("July").
  uint32_t FloodgateDay = 95;
  /// Maximum new tasks filed per day during the ramp.
  uint32_t RampFilingsPerDay = 14;
  /// Daily per-task fix probability while shepherded / after.
  double ShepherdedFixProb = 0.030;
  double DisengagedFixProb = 0.0018;
  /// A race counts as "outstanding" (Figure 3) if it is unfixed and the
  /// daily runs saw it manifest within this many days.
  uint32_t OutstandingWindow = 14;
  /// Fraction of races that manifest on (almost) every run; the rest are
  /// flaky with low per-run manifestation probability.
  double StableRaceFraction = 0.55;
  double FlakyManifestMean = 0.18;
  /// Daily probability a race's covering test is disabled / re-enabled.
  double TestDisableProb = 0.002;
  double TestReenableProb = 0.05;
  /// Root-cause clustering: probability that a new latent race joins the
  /// previous race's patch cluster (drives patches/fixes ~ 0.78).
  double ClusterContinueProb = 0.18;
  /// Probability a "fix" does not actually eliminate the race, so the
  /// same hash is re-filed later (§3.3.1 refiling).
  double BadFixProb = 0.04;
  /// §3.5's operational reality: over six months of daily runs across
  /// 100K+ real unit tests, not every test run is clean — tests hang,
  /// crash, or fail for infrastructure reasons, and the pipeline
  /// survives because each loss is contained to that test's run. The
  /// three rates below are PER covering-test PER day; a lost run means
  /// the race cannot manifest that day (it shows up as extra Figure 3
  /// jitter and slightly delayed first detection, which is exactly what
  /// the paper's curves contain). All default 0.0, and the fault model
  /// consumes RNG draws only when some rate is positive, so default
  /// configs reproduce the fault-free simulation bit-for-bit.
  double TestHangProb = 0.0;   ///< Test hangs; the fleet watchdog reaps it.
  double TestCrashProb = 0.0;  ///< Test binary crashes (foreign fault).
  double FlakyInfraProb = 0.0; ///< Infra flake; the result is discarded.
  /// Process-LETHAL faults in the daily snapshot runs: the test does not
  /// merely fail, it takes its host process down (a wild write's SIGSEGV,
  /// heap exhaustion's OOM kill — sweep::isolated's fault classes, seen
  /// from the simulator's altitude). Per covering-test per day, and like
  /// the three rates above the draws are consumed only when some lethal
  /// rate is positive — configs using only the non-lethal fault model
  /// reproduce their pre-lethal results bit-for-bit.
  ///
  /// What a lethal death COSTS depends on IsolateTestRuns: with
  /// isolation (the sweep::isolated deployment), the dead process was a
  /// fork-per-slot child, the loss is contained to that one run, and the
  /// supervisor respawns for the next slot; without isolation the dying
  /// test takes the whole snapshot harness with it and the REMAINDER of
  /// that day's snapshot is lost — exactly the blast-radius difference
  /// the isolation layer exists to buy.
  double TestSegvProb = 0.0; ///< Lethal signal (wild write, stack overflow).
  double TestOomProb = 0.0;  ///< Heap exhaustion; the kernel OOM-kills.
  /// Run the daily snapshot under fork-per-slot process isolation.
  bool IsolateTestRuns = false;
  /// Run the daily snapshot's schedule sampling through sweep::adaptive's
  /// bandit planner instead of the uniform sweep. Only effective when
  /// IsolateTestRuns is set: the adaptive executor lives inside the
  /// fork-per-slot deployment (its exploit runs re-execute slots with
  /// mutated preemption ladders, which only the isolation supervisor can
  /// schedule), so without isolation the planner stays off and the
  /// simulation is bit-identical to the uniform baseline. At simulator
  /// altitude the planner's effect is a manifestation boost for the
  /// schedule-dependent (flaky) races — the bucket the bandit's reward
  /// concentrates exploit runs on — while stable races, already at
  /// ~certain detection, gain nothing.
  bool AdaptiveSnapshot = false;
  /// Multiplier applied to a flaky race's per-run manifestation
  /// probability when the adaptive planner is active (clamped to 1.0).
  /// 1.35 matches bench_adaptive's measured uplift of exploit-heavy
  /// rounds over uniform explore at default ExploitWeight.
  double AdaptiveBoost = 1.35;
  /// Deployment mode (see DeployMode).
  DeployMode Mode = DeployMode::PostFacto;
  /// CiBlocking only: how many detector runs the PR gate executes; a
  /// race is caught (and blocked) with probability
  /// 1 - (1 - manifestProb)^CiRunsPerChange.
  unsigned CiRunsPerChange = 2;
  /// Optional metrics registry (borrowed; must outlive the simulator).
  /// The simulator records its daily series, counters, and per-phase
  /// timings as `grs_pipeline_*` instruments. When null — or when the
  /// registry is disabled — the simulator falls back to a private enabled
  /// registry, because the instruments double as its own bookkeeping (the
  /// DeploymentOutcome series are read back from them).
  obs::Registry *Metrics = nullptr;
  /// Optional flight recorder (borrowed): each simulated day records a
  /// "day" span on the "deployment" track with the per-phase spans
  /// (arrivals, test-churn, snapshot, filing, triage, fixing, telemetry)
  /// nested inside it — the timeline twin of the `grs_obs_phase_*`
  /// profile. Recording never consumes simulation RNG.
  obs::Timeline *Timeline = nullptr;
  MonorepoConfig Repo;
};

/// Aggregate result: the Figure 3/4 series plus §3.5 summary statistics.
struct DeploymentOutcome {
  support::Series Outstanding;         ///< Figure 3.
  support::Series CreatedCumulative;   ///< Figure 4, "found".
  support::Series ResolvedCumulative;  ///< Figure 4, "fixed".
  uint64_t TotalDetectedRaces = 0;     ///< Distinct tasks ever filed.
  uint64_t TotalFixedTasks = 0;
  uint64_t UniquePatches = 0;
  uint64_t UniqueFixers = 0;
  uint64_t SuppressedDuplicates = 0;
  double AvgNewReportsPerDayLate = 0;  ///< Post-floodgate fresh reports.
  double PatchesPerFixedTask = 0;      ///< ~0.78 in the paper.
  /// CiBlocking only: new races blocked at PR time / leaked through the
  /// gate because they did not manifest in the CI runs (§3.2's
  /// non-determinism objection, quantified).
  uint64_t PreventedAtCi = 0;
  uint64_t LeakedPastCi = 0;
  /// Fixed tasks broken down by root-cause category (sampled from the
  /// Table 2/3 empirical distribution at race creation): category index
  /// is corpus::Category's underlying value.
  std::vector<uint64_t> FixedByCategory;
  /// Open tasks re-routed after their assignee left the organization
  /// ("defects get triaged and eventually get reassigned to appropriate
  /// owners", §3.2.1).
  uint64_t Reassignments = 0;
  /// Fault-model losses in the daily snapshot runs (0 unless the
  /// TestHangProb / TestCrashProb / FlakyInfraProb rates are set):
  /// test-run executions lost to hangs, crashes, and infra flakes.
  uint64_t SnapshotHangs = 0;
  uint64_t SnapshotCrashes = 0;
  uint64_t SnapshotFlaky = 0;
  /// Lethal-fault losses (0 unless TestSegvProb / TestOomProb are set):
  /// test runs killed by a lethal signal / OOM.
  uint64_t SnapshotSegvs = 0;
  uint64_t SnapshotOoms = 0;
  /// IsolateTestRuns=true: children respawned after a lethal death (one
  /// per death — the per-run containment the isolation layer buys).
  uint64_t IsolationRespawns = 0;
  /// AdaptiveSnapshot=true (with isolation): snapshot runs whose
  /// manifestation draw was boosted by the adaptive planner (flaky races
  /// only; stable races never need the bandit's help).
  uint64_t AdaptiveBoostedRuns = 0;
  /// IsolateTestRuns=false: days whose snapshot was cut short because a
  /// lethal test death took the un-isolated harness down with it.
  uint64_t AbortedSnapshotDays = 0;
};

/// See file comment.
class DeploymentSimulator {
public:
  explicit DeploymentSimulator(const DeploymentConfig &Config);
  ~DeploymentSimulator();

  /// Runs the full simulation and returns the outcome. The internal bug
  /// database remains inspectable afterwards.
  DeploymentOutcome run();

  const BugDatabase &bugs() const { return Bugs; }
  const MonorepoModel &repo() const { return Repo; }

  /// The registry holding this deployment's `grs_pipeline_*` instruments:
  /// DeploymentConfig::Metrics when that is an enabled registry, else a
  /// lazily created private one. The Figure 3/4 benches read their series
  /// from here instead of recounting.
  obs::Registry &metrics();

private:
  struct LatentRace;

  /// Materializes a latent race (synthetic chains over the monorepo).
  LatentRace makeLatentRace(uint32_t Day);

  DeploymentConfig Config;
  support::Rng Rng;
  MonorepoModel Repo;
  OwnershipResolver Resolver;
  BugDatabase Bugs;
  std::vector<LatentRace> Races;
  uint32_t NextClusterId = 0;
  /// Fallback registry when no (enabled) external one is configured.
  std::unique_ptr<obs::Registry> OwnedMetrics;
};

} // namespace pipeline
} // namespace grs

#endif // GRS_PIPELINE_DEPLOYMENT_H
