//===- pipeline/Explore.h - Systematic interleaving exploration --*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CHESS-style systematic schedule exploration (the paper's §5 contrasts
/// it with random approaches: "Chess systematically explores various
/// thread interleavings by performing a tree traversal on the
/// interleaving tree").
///
/// The runtime's ChoiceHook determinizes every nondeterministic choice
/// (which goroutine runs next, which ready select arm fires). Exploration
/// then breadth-first-searches the decision tree:
///
///   * run the program following a decision PREFIX, defaulting to option
///     0 past its end, while recording how many options each choice point
///     actually had;
///   * for each post-prefix choice point with more than one option,
///     enqueue the alternative prefixes;
///   * repeat until the frontier is exhausted (small programs: complete
///     coverage) or a run budget is consumed.
///
/// Compared to a random seed sweep (pipeline/Sweep.h), exploration finds
/// needle-in-haystack interleavings deterministically and can PROVE small
/// programs schedule-free of races — but its tree grows exponentially,
/// the very trade-off the related work debates. bench_explore measures
/// both sides on the corpus's schedule-dependent bugs.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_PIPELINE_EXPLORE_H
#define GRS_PIPELINE_EXPLORE_H

#include "pipeline/Fingerprint.h"
#include "rt/Runtime.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace grs {
namespace pipeline {

struct ExploreOptions {
  /// Hard cap on executions.
  size_t MaxRuns = 500;
  /// Per-run cap on recorded choice points eligible for branching (the
  /// CHESS-style depth bound; deeper choices follow option 0).
  size_t BranchDepth = 64;
  /// CHESS iterative-context-bounding: maximum number of PREEMPTIONS
  /// (choices that switch away from a still-runnable goroutine) per
  /// explored schedule. SIZE_MAX = unbounded. CHESS's empirical claim —
  /// most races need only ~2 preemptions — makes small bounds shrink the
  /// tree dramatically.
  size_t MaxPreemptions = SIZE_MAX;
  /// Base options (Seed fixed; PreemptProbability forced to 1 so every
  /// instrumented access is a choice point).
  rt::RunOptions Run;
};

struct ExploreResult {
  size_t RunsExecuted = 0;
  size_t RacyRuns = 0;
  size_t DeadlockRuns = 0;
  size_t LeakRuns = 0;
  /// True when the frontier emptied before MaxRuns: the decision tree
  /// (up to BranchDepth) was covered COMPLETELY.
  bool Exhaustive = false;
  /// First run index (1-based) that exhibited a race; 0 = none found.
  size_t FirstRacyRun = 0;
  /// Deduplicated findings, as in SweepResult.
  std::map<uint64_t, size_t> Findings;

  bool foundRace() const { return RacyRuns > 0; }
};

/// Systematically explores \p Body's interleavings. See file comment.
inline ExploreResult explore(const ExploreOptions &Opts,
                             const std::function<void()> &Body) {
  ExploreResult Result;
  std::deque<std::vector<uint32_t>> Frontier;
  Frontier.push_back({});

  while (!Frontier.empty() && Result.RunsExecuted < Opts.MaxRuns) {
    std::vector<uint32_t> Prefix = std::move(Frontier.front());
    Frontier.pop_front();

    // Decisions actually taken, the option count, and the non-preempting
    // option at each point (UINT32_MAX = no preference existed).
    std::vector<uint32_t> Taken;
    std::vector<uint32_t> Options;
    std::vector<uint32_t> ContinueAt;
    size_t PreemptionsUsed = 0;

    rt::RunOptions RunOpts = Opts.Run;
    RunOpts.Seed = 0;
    RunOpts.PreemptProbability = 1.0;
    RunOpts.ChoiceHook = [&Prefix, &Taken, &Options, &ContinueAt,
                          &PreemptionsUsed](size_t NumChoices,
                                            size_t ContinueIndex) {
      size_t Index = Taken.size();
      uint32_t Pick;
      if (Index < Prefix.size()) {
        Pick = Prefix[Index];
      } else {
        // Default policy past the prefix: continue the current goroutine
        // when possible (zero preemptions), else option 0.
        Pick = ContinueIndex != SIZE_MAX
                   ? static_cast<uint32_t>(ContinueIndex)
                   : 0;
      }
      if (Pick >= NumChoices)
        Pick = static_cast<uint32_t>(NumChoices - 1);
      if (ContinueIndex != SIZE_MAX && Pick != ContinueIndex)
        ++PreemptionsUsed;
      Taken.push_back(Pick);
      Options.push_back(static_cast<uint32_t>(NumChoices));
      ContinueAt.push_back(ContinueIndex == SIZE_MAX
                               ? UINT32_MAX
                               : static_cast<uint32_t>(ContinueIndex));
      return static_cast<size_t>(Pick);
    };
    RunOpts.OnReport = [&Result](const race::Detector &D,
                                 const race::RaceReport &Report) {
      ++Result.Findings[raceFingerprint(D.interner(), Report)];
    };

    rt::Runtime RT(RunOpts);
    rt::RunResult Run = RT.run(Body);
    ++Result.RunsExecuted;
    if (Run.RaceCount > 0) {
      ++Result.RacyRuns;
      if (Result.FirstRacyRun == 0)
        Result.FirstRacyRun = Result.RunsExecuted;
    }
    Result.DeadlockRuns += Run.Deadlocked;
    Result.LeakRuns += !Run.LeakedGoroutines.empty();

    // Branch on every post-prefix choice point (depth- and
    // preemption-bounded). A prefix's preemption count is cumulative:
    // once the budget is spent, only continuing alternatives enqueue.
    size_t Limit =
        std::min(Taken.size(), Prefix.size() + Opts.BranchDepth);
    size_t PrefixPreemptions = 0;
    for (size_t I = 0; I < Prefix.size() && I < Taken.size(); ++I)
      if (ContinueAt[I] != UINT32_MAX && Taken[I] != ContinueAt[I])
        ++PrefixPreemptions;
    size_t Running = PrefixPreemptions;
    for (size_t I = Prefix.size(); I < Limit; ++I) {
      for (uint32_t Alt = 0; Alt < Options[I]; ++Alt) {
        if (Alt == Taken[I])
          continue; // Already executed this run.
        bool AltPreempts =
            ContinueAt[I] != UINT32_MAX && Alt != ContinueAt[I];
        if (AltPreempts && Running >= Opts.MaxPreemptions)
          continue; // Budget exhausted: prune the subtree.
        std::vector<uint32_t> Next(
            Taken.begin(), Taken.begin() + static_cast<long>(I));
        Next.push_back(Alt);
        Frontier.push_back(std::move(Next));
      }
      // The decision actually taken contributes to the running count for
      // later branch points of this run.
      if (ContinueAt[I] != UINT32_MAX && Taken[I] != ContinueAt[I])
        ++Running;
    }
  }

  Result.Exhaustive = Frontier.empty();
  return Result;
}

/// Convenience with default options and a run cap.
inline ExploreResult explore(size_t MaxRuns,
                             const std::function<void()> &Body) {
  ExploreOptions Opts;
  Opts.MaxRuns = MaxRuns;
  return explore(Opts, Body);
}

} // namespace pipeline
} // namespace grs

#endif // GRS_PIPELINE_EXPLORE_H
