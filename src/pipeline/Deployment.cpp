//===- pipeline/Deployment.cpp - Six-month deployment simulator ------------===//

#include "pipeline/Deployment.h"

#include "corpus/Sampler.h"
#include "obs/Metrics.h"
#include "obs/Timeline.h"
#include "pipeline/Fingerprint.h"

#include <set>

using namespace grs;
using namespace grs::pipeline;

/// One latent data race living in the (simulated) codebase.
struct DeploymentSimulator::LatentRace {
  uint64_t Fingerprint = 0;
  ReportSites Sites;
  /// Per-run manifestation probability (§3.1: detection depends on the
  /// interleavings of that run).
  double ManifestProb = 1.0;
  /// Patch cluster: races sharing a root cause are fixed together.
  uint32_t Cluster = 0;
  /// Root-cause category, sampled from the Table 2/3 distribution.
  uint8_t Category = 0;
  bool Present = true;
  bool TestEnabled = true;
  bool TaskOpen = false;
  TaskId OpenTask = 0;
  bool EverDetected = false;
  uint32_t LastSeenDay = 0;
};

DeploymentSimulator::DeploymentSimulator(const DeploymentConfig &Config)
    : Config(Config), Rng(Config.Seed), Repo([&] {
        MonorepoConfig RepoConfig = Config.Repo;
        RepoConfig.Seed = Config.Seed ^ 0x5eedf00d;
        return RepoConfig;
      }()),
      Resolver(Repo) {}

DeploymentSimulator::~DeploymentSimulator() = default;

obs::Registry &DeploymentSimulator::metrics() {
  if (Config.Metrics && Config.Metrics->enabled())
    return *Config.Metrics;
  if (!OwnedMetrics)
    OwnedMetrics = std::make_unique<obs::Registry>(/*Enabled=*/true);
  return *OwnedMetrics;
}

DeploymentSimulator::LatentRace
DeploymentSimulator::makeLatentRace(uint32_t Day) {
  (void)Day;
  LatentRace Race;

  // Synthesize the two conflicting call chains over the monorepo's
  // function namespace: a root entry point descending (mostly service-
  // locally) to a leaf access.
  FunctionRef RootA = Repo.randomFunction(Rng);
  FunctionRef LeafA = Repo.randomFunctionNear(Rng, RootA);
  FunctionRef RootB = Rng.chance(0.5) ? RootA : Repo.randomFunctionNear(Rng, RootA);
  FunctionRef LeafB = Repo.randomFunctionNear(Rng, RootB);

  NameChain ChainA{Repo.functionName(RootA), Repo.functionName(LeafA)};
  NameChain ChainB{Repo.functionName(RootB), Repo.functionName(LeafB)};
  size_t Middles = Rng.nextBelow(3);
  for (size_t I = 0; I < Middles; ++I)
    ChainA.insert(ChainA.begin() + 1,
                  Repo.functionName(Repo.randomFunctionNear(Rng, RootA)));
  Race.Fingerprint = fingerprintChains(ChainA, ChainB);

  Race.Sites.RootA = RootA.File;
  Race.Sites.RootB = RootB.File;
  Race.Sites.LeafA = LeafA.File;
  Race.Sites.LeafB = LeafB.File;

  // Stable races manifest on (almost) every daily run; the rest are
  // schedule-dependent with a low per-run probability.
  if (Rng.chance(Config.StableRaceFraction))
    Race.ManifestProb = 0.9 + 0.1 * Rng.nextDouble();
  else
    Race.ManifestProb =
        std::min(1.0, Rng.nextDouble() * 2.0 * Config.FlakyManifestMean);

  // Root-cause clustering; cluster mates share their cause's category,
  // fresh causes draw a category from the paper's Table 2/3 mass.
  bool JoinsPrevious =
      !Races.empty() && Rng.chance(Config.ClusterContinueProb);
  if (JoinsPrevious) {
    Race.Cluster = Races.back().Cluster;
    Race.Category = Races.back().Category;
  } else {
    Race.Cluster = NextClusterId++;
    const std::vector<corpus::CategoryCount> &T2 = corpus::table2Counts();
    const std::vector<corpus::CategoryCount> &T3 = corpus::table3Counts();
    std::vector<double> Weights;
    for (const corpus::CategoryCount &Row : T2)
      Weights.push_back(Row.PaperCount);
    for (const corpus::CategoryCount &Row : T3)
      Weights.push_back(Row.PaperCount);
    size_t Pick = Rng.weightedIndex(Weights);
    corpus::Category Cat =
        Pick < T2.size() ? T2[Pick].Cat : T3[Pick - T2.size()].Cat;
    Race.Category = static_cast<uint8_t>(Cat);
  }
  return Race;
}

DeploymentOutcome DeploymentSimulator::run() {
  DeploymentOutcome Outcome;

  // The grs_pipeline_* instruments are the single source of truth for the
  // run's telemetry; the Outcome series/counts are read back from them at
  // the end (metrics() is always an enabled registry, so every handle is
  // non-null).
  obs::Registry &Reg = metrics();
  obs::Timeseries *SOutstanding =
      Reg.timeseries("grs_pipeline_outstanding_races");
  obs::Timeseries *SCreated =
      Reg.timeseries("grs_pipeline_tasks_created_cumulative");
  obs::Timeseries *SResolved =
      Reg.timeseries("grs_pipeline_tasks_resolved_cumulative");
  obs::Counter *CIntroduced =
      Reg.counter("grs_pipeline_races_introduced_total");
  obs::Counter *CFiled = Reg.counter("grs_pipeline_tasks_filed_total");
  obs::Counter *CFixed = Reg.counter("grs_pipeline_tasks_fixed_total");
  obs::Counter *CPatches = Reg.counter("grs_pipeline_patches_total");
  obs::Counter *CDuplicates =
      Reg.counter("grs_pipeline_duplicates_suppressed_total");
  obs::Counter *CReassigned =
      Reg.counter("grs_pipeline_reassignments_total");
  obs::Counter *CCiPrevented = Reg.counter("grs_pipeline_ci_prevented_total");
  obs::Counter *CCiLeaked = Reg.counter("grs_pipeline_ci_leaked_total");
  obs::Gauge *GDedupRatio = Reg.gauge("grs_pipeline_dedup_ratio");
  obs::Gauge *GUniqueFixers = Reg.gauge("grs_pipeline_unique_fixers");
  obs::Counter *CHangs = Reg.counter("grs_pipeline_snapshot_hangs_total");
  obs::Counter *CCrashes =
      Reg.counter("grs_pipeline_snapshot_crashes_total");
  obs::Counter *CFlaky = Reg.counter("grs_pipeline_snapshot_flaky_total");
  obs::Counter *CSegvs = Reg.counter("grs_pipeline_snapshot_segvs_total");
  obs::Counter *COoms = Reg.counter("grs_pipeline_snapshot_ooms_total");
  obs::Counter *CRespawns =
      Reg.counter("grs_pipeline_isolation_respawns_total");
  obs::Counter *CAdaptiveBoosted =
      Reg.counter("grs_pipeline_adaptive_boosted_runs_total");
  obs::Counter *CAbortedDays =
      Reg.counter("grs_pipeline_snapshot_aborted_days_total");
  obs::Gauge *GSnapshotLoss =
      Reg.gauge("grs_pipeline_snapshot_loss_ratio");

  // Flight recorder: the "deployment" track mirrors the day/phase span
  // structure the registry profiles, so the Figure 2 architecture is
  // visible as a timeline, not just as aggregate phase timings.
  obs::TimelineTrack *Track =
      Config.Timeline ? Config.Timeline->track("deployment") : nullptr;

  // The fault model consumes RNG draws only when some rate is positive:
  // Rng::chance always advances the stream, so an unconditional draw
  // would perturb every downstream decision even at rate 0.0 and break
  // the default config's bit-for-bit reproducibility.
  const bool FaultModel = Config.TestHangProb > 0.0 ||
                          Config.TestCrashProb > 0.0 ||
                          Config.FlakyInfraProb > 0.0;
  // The lethal model is gated separately so configs that enable only the
  // non-lethal rates keep their exact pre-lethal RNG stream.
  const bool LethalModel =
      Config.TestSegvProb > 0.0 || Config.TestOomProb > 0.0;
  // The bandit planner rides the fork-per-slot deployment; without
  // isolation it stays off and the stream is the uniform baseline's.
  // With it on, chance() still consumes exactly one draw per considered
  // run (only the probability changes), so the draw COUNT matches the
  // uniform snapshot and divergence comes solely from boosted verdicts.
  const bool Adaptive = Config.AdaptiveSnapshot && Config.IsolateTestRuns;
  uint64_t SnapshotRunsConsidered = 0;

  Races.reserve(Config.InitialLatentRaces + 1024);
  for (uint32_t I = 0; I < Config.InitialLatentRaces; ++I)
    Races.push_back(makeLatentRace(0));

  std::set<DevId> Fixers;
  uint64_t LateCreated = 0;
  uint32_t LateDays = 0;

  for (uint32_t Day = 0; Day < Config.Days; ++Day) {
    obs::Span DaySpan = Reg.span("day");
    obs::TimelineScope DayTl =
        Track ? obs::TimelineScope(Track, "day",
                                   "\"day\":" + std::to_string(Day))
              : obs::TimelineScope();
    // (1) Code change lands: new latent races are introduced. In
    // CiBlocking mode the PR gate runs the detector first; a race lands
    // only if it stays dormant in every CI run — the §3.2 flakiness
    // objection made quantitative.
    {
      obs::Span S = Reg.span("arrivals");
      obs::TimelineScope Tl(Track, "arrivals");
      uint64_t Arrivals = Rng.poisson(Config.NewRacesPerDay);
      for (uint64_t I = 0; I < Arrivals; ++I) {
        LatentRace Race = makeLatentRace(Day);
        if (Config.Mode == DeployMode::CiBlocking) {
          bool Caught = false;
          for (unsigned Run = 0; Run < Config.CiRunsPerChange && !Caught;
               ++Run)
            Caught = Rng.chance(Race.ManifestProb);
          if (Caught) {
            CCiPrevented->inc();
            continue; // Author fixes before merging; never lands.
          }
          CCiLeaked->inc();
        }
        CIntroduced->inc();
        Races.push_back(std::move(Race));
      }
    }

    // (2) Developers enable/disable tests; the organization churns.
    {
      obs::Span S = Reg.span("test-churn");
      obs::TimelineScope Tl(Track, "test-churn");
      for (LatentRace &Race : Races) {
        if (Race.TestEnabled) {
          if (Rng.chance(Config.TestDisableProb))
            Race.TestEnabled = false;
        } else if (Rng.chance(Config.TestReenableProb)) {
          Race.TestEnabled = true;
        }
      }
      Repo.advanceDay(Rng);
    }

    // (3) The daily snapshot run: execute all unit tests with the race
    // detector on; collect manifested races.
    std::vector<size_t> Manifested;
    {
      obs::Span S = Reg.span("snapshot");
      obs::TimelineScope Tl(Track, "snapshot");
      bool DayAborted = false;
      for (size_t I = 0; I < Races.size() && !DayAborted; ++I) {
        LatentRace &Race = Races[I];
        if (!Race.Present || !Race.TestEnabled)
          continue;
        if (FaultModel || LethalModel)
          ++SnapshotRunsConsidered;
        if (LethalModel) {
          bool Segv = Rng.chance(Config.TestSegvProb);
          bool Oom = !Segv && Rng.chance(Config.TestOomProb);
          if (Segv)
            CSegvs->inc();
          if (Oom)
            COoms->inc();
          if (Segv || Oom) {
            if (Config.IsolateTestRuns) {
              // Fork-per-slot isolation: only the dead child's run is
              // lost; the supervisor respawns and the snapshot marches
              // on to the next test.
              CRespawns->inc();
              continue;
            }
            // Un-isolated: the dying test kills the snapshot harness,
            // and every test after it is lost for the day.
            CAbortedDays->inc();
            DayAborted = true;
            continue;
          }
        }
        if (FaultModel) {
          // A lost run is contained to this test, today: the race simply
          // cannot manifest until tomorrow's snapshot — the §3.5 fleet's
          // per-run quarantine, seen from the simulator's altitude.
          if (Rng.chance(Config.TestHangProb)) {
            CHangs->inc();
            continue;
          }
          if (Rng.chance(Config.TestCrashProb)) {
            CCrashes->inc();
            continue;
          }
          if (Rng.chance(Config.FlakyInfraProb)) {
            CFlaky->inc();
            continue;
          }
        }
        double ManifestProb = Race.ManifestProb;
        if (Adaptive && Race.ManifestProb < 0.5) {
          // Flaky bucket: exploit runs concentrate schedule samples
          // here, which at this altitude is a higher per-day chance of
          // catching the interleaving. Stable races are left alone.
          ManifestProb = std::min(1.0, Race.ManifestProb * Config.AdaptiveBoost);
          CAdaptiveBoosted->inc();
        }
        if (!Rng.chance(ManifestProb))
          continue;
        Race.EverDetected = true;
        Race.LastSeenDay = Day;
        if (Race.TaskOpen) {
          // Same hash already open: suppressed duplicate (§3.3.1).
          Bugs.fileReport(Race.Fingerprint, 0, Day, {});
          continue;
        }
        Manifested.push_back(I);
      }
    }

    // (4) File tasks, throttled during the ramp-up period.
    {
      obs::Span S = Reg.span("filing");
      obs::TimelineScope Tl(Track, "filing");
      uint64_t FilingBudget = Day >= Config.FloodgateDay
                                  ? Manifested.size()
                                  : Config.RampFilingsPerDay;
      uint32_t DayCreated = 0;
      for (size_t Index : Manifested) {
        if (FilingBudget == 0)
          break;
        LatentRace &Race = Races[Index];
        Resolution Who = Resolver.resolve(Race.Sites, Rng);
        FileOutcome Filed =
            Bugs.fileReport(Race.Fingerprint, Who.Assignee, Day,
                            std::move(Who.Log));
        if (Filed.Created) {
          Race.TaskOpen = true;
          Race.OpenTask = Filed.Id;
          CFiled->inc();
          --FilingBudget;
          ++DayCreated;
        }
      }
      if (Day >= Config.FloodgateDay + 30) {
        LateCreated += DayCreated;
        ++LateDays;
      }
    }

    // (4b) Triage: open tasks whose assignee has left are re-routed to
    // an active member of the owning team (weekly pass).
    if (Day % 7 == 0) {
      obs::Span S = Reg.span("triage");
      obs::TimelineScope Tl(Track, "triage");
      for (TaskId Id : Bugs.openTasks()) {
        Task &T = Bugs.task(Id);
        if (Repo.isActive(T.Assignee))
          continue;
        DevId NewOwner = Repo.anyActiveTeamMember(
            static_cast<uint32_t>(T.Assignee) %
            static_cast<uint32_t>(Config.Repo.NumTeams));
        T.AssignmentLog.push_back(
            "day " + std::to_string(Day) + ": " +
            Repo.developerName(T.Assignee) +
            " left; triaged to " + Repo.developerName(NewOwner));
        T.Assignee = NewOwner;
        CReassigned->inc();
      }
    }

    // (5) Developers fix open tasks; one patch may close a whole
    // root-cause cluster; some fixes do not stick.
    {
      obs::Span S = Reg.span("fixing");
      obs::TimelineScope Tl(Track, "fixing");
      double FixProb = Day <= Config.ShepherdingEndDay
                           ? Config.ShepherdedFixProb
                           : Config.DisengagedFixProb;
      std::vector<TaskId> ToFix;
      for (TaskId Id : Bugs.openTasks())
        if (Rng.chance(FixProb))
          ToFix.push_back(Id);

      for (TaskId Id : ToFix) {
        if (Bugs.task(Id).Status == TaskStatus::Fixed)
          continue; // Already closed by a sibling's patch today.
        CPatches->inc();
        Fixers.insert(Bugs.task(Id).Assignee);

        // Find the race this task tracks, then close its whole cluster.
        uint32_t Cluster = ~0u;
        for (LatentRace &Race : Races)
          if (Race.TaskOpen && Race.OpenTask == Id)
            Cluster = Race.Cluster;
        for (LatentRace &Race : Races) {
          if (Race.Cluster != Cluster || !Race.Present)
            continue;
          if (Race.TaskOpen) {
            Bugs.markFixed(Race.OpenTask, Day);
            CFixed->inc();
            Race.TaskOpen = false;
            if (Race.Category >= Outcome.FixedByCategory.size())
              Outcome.FixedByCategory.resize(Race.Category + 1, 0);
            ++Outcome.FixedByCategory[Race.Category];
          }
          // Most fixes eliminate the race; a few do not stick, and the
          // same hash will be re-filed once re-detected.
          if (!Rng.chance(Config.BadFixProb))
            Race.Present = false;
        }
      }
    }

    // (6) Record the day's telemetry. "Outstanding" is the detector's
    // rolling view: unfixed races the daily runs saw recently — so the
    // series fluctuates with flaky manifestation and test churn, as in
    // Figure 3.
    {
      obs::Span S = Reg.span("telemetry");
      obs::TimelineScope Tl(Track, "telemetry");
      uint64_t Outstanding = 0;
      for (const LatentRace &Race : Races) {
        if (!Race.Present || !Race.EverDetected)
          continue;
        if (Day - Race.LastSeenDay <= Config.OutstandingWindow)
          ++Outstanding;
      }
      SOutstanding->append(static_cast<double>(Outstanding));
      SCreated->append(static_cast<double>(Bugs.numCreated()));
      SResolved->append(static_cast<double>(Bugs.numFixed()));
      CDuplicates->mirror(Bugs.numSuppressedDuplicates());
      uint64_t Reports = Bugs.numCreated() + Bugs.numSuppressedDuplicates();
      GDedupRatio->set(Reports ? static_cast<double>(
                                     Bugs.numSuppressedDuplicates()) /
                                     static_cast<double>(Reports)
                               : 0.0);
      GUniqueFixers->set(static_cast<double>(Fixers.size()));
    }
  }

  // Read the outcome back from the instruments (the series get their
  // legacy display names so downstream rendering is unchanged).
  Outcome.Outstanding = SOutstanding->toSeries("outstanding races");
  Outcome.CreatedCumulative =
      SCreated->toSeries("tasks created (cumulative)");
  Outcome.ResolvedCumulative =
      SResolved->toSeries("tasks resolved (cumulative)");
  Outcome.TotalDetectedRaces = Bugs.numCreated();
  Outcome.TotalFixedTasks = CFixed->value();
  Outcome.UniquePatches = CPatches->value();
  Outcome.UniqueFixers = Fixers.size();
  Outcome.SuppressedDuplicates = Bugs.numSuppressedDuplicates();
  Outcome.PreventedAtCi = CCiPrevented->value();
  Outcome.LeakedPastCi = CCiLeaked->value();
  Outcome.Reassignments = CReassigned->value();
  Outcome.AvgNewReportsPerDayLate =
      LateDays ? static_cast<double>(LateCreated) / LateDays : 0.0;
  Outcome.PatchesPerFixedTask =
      Outcome.TotalFixedTasks ? static_cast<double>(Outcome.UniquePatches) /
                                    static_cast<double>(Outcome.TotalFixedTasks)
                              : 0.0;
  Outcome.SnapshotHangs = CHangs->value();
  Outcome.SnapshotCrashes = CCrashes->value();
  Outcome.SnapshotFlaky = CFlaky->value();
  Outcome.SnapshotSegvs = CSegvs->value();
  Outcome.SnapshotOoms = COoms->value();
  Outcome.IsolationRespawns = CRespawns->value();
  Outcome.AdaptiveBoostedRuns = CAdaptiveBoosted->value();
  Outcome.AbortedSnapshotDays = CAbortedDays->value();
  uint64_t SnapshotLost = Outcome.SnapshotHangs + Outcome.SnapshotCrashes +
                          Outcome.SnapshotFlaky + Outcome.SnapshotSegvs +
                          Outcome.SnapshotOoms;
  GSnapshotLoss->set(SnapshotRunsConsidered
                         ? static_cast<double>(SnapshotLost) /
                               static_cast<double>(SnapshotRunsConsidered)
                         : 0.0);
  return Outcome;
}
