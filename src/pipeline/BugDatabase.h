//===- pipeline/BugDatabase.h - Race defect tracking ------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The defect tracker behind the post-facto workflow (§3.3.1): "we
/// suppress a defect iff there is an active one with the same hash that
/// is already open in our bug database. As soon as the open defect with
/// the same hash is fixed, our system files another defect with the same
/// hash (sharing the call chains), if it finds one."
///
//===----------------------------------------------------------------------===//

#ifndef GRS_PIPELINE_BUGDATABASE_H
#define GRS_PIPELINE_BUGDATABASE_H

#include "pipeline/Monorepo.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace grs {
namespace pipeline {

/// Task id in the bug database.
using TaskId = uint32_t;

enum class TaskStatus : uint8_t { Open, Fixed };

/// One filed race defect.
struct Task {
  TaskId Id = 0;
  uint64_t Fingerprint = 0;
  TaskStatus Status = TaskStatus::Open;
  DevId Assignee = 0;
  uint32_t CreatedDay = 0;
  uint32_t FixedDay = 0;
  std::vector<std::string> AssignmentLog;
};

/// Outcome of attempting to file a report.
struct FileOutcome {
  bool Created = false;     ///< A new task was filed.
  bool Suppressed = false;  ///< Same-hash task already open.
  TaskId Id = 0;            ///< The new or suppressing task.
};

/// See file comment.
class BugDatabase {
public:
  /// Files a race with fingerprint \p Fp, unless one is already open.
  FileOutcome fileReport(uint64_t Fp, DevId Assignee, uint32_t Day,
                         std::vector<std::string> Log);

  /// Marks \p Id fixed; a later fileReport() with the same hash files a
  /// fresh task.
  void markFixed(TaskId Id, uint32_t Day);

  /// \returns the currently open task for \p Fp, or nullptr.
  const Task *openTaskFor(uint64_t Fp) const;

  const Task &task(TaskId Id) const { return Tasks[Id]; }
  Task &task(TaskId Id) { return Tasks[Id]; }

  const std::vector<Task> &tasks() const { return Tasks; }
  const std::vector<TaskId> &openTasks() const { return Open; }

  size_t numOutstanding() const { return Open.size(); }
  size_t numCreated() const { return Tasks.size(); }
  size_t numFixed() const { return Tasks.size() - Open.size(); }
  size_t numSuppressedDuplicates() const { return Suppressed; }

private:
  std::vector<Task> Tasks;
  std::vector<TaskId> Open;
  std::unordered_map<uint64_t, TaskId> OpenByFingerprint;
  size_t Suppressed = 0;
};

} // namespace pipeline
} // namespace grs

#endif // GRS_PIPELINE_BUGDATABASE_H
