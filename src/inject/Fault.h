//===- inject/Fault.h - Deterministic seeded fault injection ----*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Manufactured misbehaviour for the fleet layers. The paper's deployment
/// pipeline (§3) survived six months of daily sweeps over 100K+ real unit
/// tests because hanging, crashing and flaky tests were contained per-run;
/// our sweep engines assumed every body is well-behaved. This layer
/// manufactures exactly the faults that assumption hides — Go panics at
/// channel/lock/spawn sites, foreign C++ exceptions, scheduler stalls,
/// non-yielding CPU spins, wall-clock latency spikes — deterministically
/// from a seed, so the resilience machinery (rt watchdog, fiber-boundary
/// exception capture, sweep::resilient quarantine/retry/checkpointing) can
/// be tested against reproducible chaos.
///
/// The unit of injection is the FaultPlan: a seeded, precomputed map from
/// run seed to FaultSpec over a sweep's seed range. Faulted runs get a
/// saboteur goroutine (or an inline latency sleep) prepended to the body;
/// non-faulted runs execute the original body with ZERO added runtime
/// interaction — the plan lookup is plain C++ before the first scheduling
/// point — so every non-faulted run is bit-identical to the fault-free
/// sweep. That invariant is what the chaos tests pin.
///
/// Fault taxonomy and how each surfaces in rt::RunResult:
///
///   GoPanic          saboteur panics at a channel / lock / spawn site
///                    -> Panics (a normal verdict: kept by the sweep)
///   ForeignException saboteur throws a C++ std::runtime_error
///                    -> ForeignExceptions (infra fault: quarantined)
///   SchedulerStall   saboteur yields forever, starving completion
///                    -> StepLimitHit (infra fault: quarantined)
///   CpuSpin          saboteur spins without ever yielding; only the
///                    hard watchdog can recover the thread
///                    -> WatchdogFired (infra fault: quarantined)
///   LatencySpike     wall-clock sleep before the body, no runtime calls
///                    -> result bit-identical (a benign slow run)
///
/// PROCESS-LETHAL kinds (PR 5): faults no in-process machinery can
/// contain — the paper's fleet survived them only because each test ran
/// in its own process, and so does our sweep::isolated executor. Inside
/// a sandboxed child (inject::enterSandbox) they kill the process and
/// the parent classifies the death; outside a sandbox they DOWNGRADE to
/// a foreign C++ exception so the PR-4 in-process path quarantines the
/// slot instead of the harness dying:
///
///   HeapExhaustion   allocate until RLIMIT_AS fails the allocator
///                    -> child _exit(OomExitCode) (FaultClass::OomKill)
///   WildWrite        store through a wild pointer -> SIGSEGV
///   StackOverflow    unbounded recursion off the fiber stack -> SIGSEGV
///   AbortCall        std::abort() -> SIGABRT
///
/// Lethal faults model real-world crash flakiness: FaultSpec::
/// LethalAttempts bounds the attempts (RunOptions::Attempt) on which the
/// fault detonates — a TRANSIENT crasher recovers on the next attempt in
/// a fresh child, a CHRONIC one (UINT32_MAX) dies every time and is
/// quarantined. Detonation stays a pure function of (seed, attempt).
///
//===----------------------------------------------------------------------===//

#ifndef GRS_INJECT_FAULT_H
#define GRS_INJECT_FAULT_H

#include "obs/Metrics.h"
#include "rt/Runtime.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace grs {
namespace inject {

/// What a faulted run suffers. See file comment for how each kind
/// surfaces in rt::RunResult.
enum class FaultKind : uint8_t {
  GoPanic = 0,
  ForeignException,
  SchedulerStall,
  CpuSpin,
  LatencySpike,
  // Process-lethal kinds: only sweep::isolated can contain these (see
  // file comment; outside a sandbox they downgrade to ForeignException).
  HeapExhaustion,
  WildWrite,
  StackOverflow,
  AbortCall,
};

inline constexpr size_t NumFaultKinds = 9;

/// Stable lower-case name of \p Kind (instrument label / diagnostics).
const char *faultKindName(FaultKind Kind);

/// Which site an injected GoPanic is raised from — the paper's recurring
/// panic sources (§4.9 channel misuse, lock discipline, spawned helpers).
enum class PanicSite : uint8_t {
  Channel = 0, ///< Send on a channel the saboteur already closed.
  Lock,        ///< Double close — the lock-discipline analogue our
               ///< runtime panics on (close of closed channel).
  Spawn,       ///< A spawned grandchild goroutine panics directly.
};

inline constexpr size_t NumPanicSites = 3;

/// One planned fault.
struct FaultSpec {
  FaultKind Kind = FaultKind::GoPanic;
  /// GoPanic only: which site panics.
  PanicSite Site = PanicSite::Channel;
  /// LatencySpike only: how long the inline wall-clock sleep lasts.
  uint64_t LatencyMicros = 0;
  /// Lethal kinds only: the fault detonates while RunOptions::Attempt <=
  /// LethalAttempts. 1 models a transient crasher (recovers on the first
  /// respawn), UINT32_MAX a chronic one (dies every attempt). Ignored by
  /// non-lethal kinds, which detonate on every attempt as before.
  uint32_t LethalAttempts = 1;

  bool operator==(const FaultSpec &) const = default;
};

/// True for kinds that invalidate the run's verdict (the run's outcome
/// reflects infrastructure misbehaviour, not the program under test):
/// ForeignException, SchedulerStall, CpuSpin, and every lethal kind.
/// GoPanic is a legitimate program verdict and LatencySpike does not
/// change the result at all.
bool isInfraFault(FaultKind Kind);

/// True for kinds that kill the whole process when sandboxed:
/// HeapExhaustion, WildWrite, StackOverflow, AbortCall.
bool isLethalFault(FaultKind Kind);

//===----------------------------------------------------------------------===//
// Sandbox gating
//
// Lethal faults must only actually kill a process whose death something
// contains. sweep::isolated's forked child calls enterSandbox() before
// running its slots; detonate() consults inSandbox() and, outside one,
// downgrades lethal kinds to a foreign C++ exception the PR-4 in-process
// machinery quarantines. The flag is process-global and one-way (a child
// never leaves its sandbox; the fork-free parent never enters one).
//===----------------------------------------------------------------------===//

/// Marks this process as a sandboxed sweep child: lethal faults are now
/// allowed to kill it.
void enterSandbox();
bool inSandbox();

/// Process exit code a sandboxed child uses for allocation failure under
/// RLIMIT_AS (the deterministic stand-in for a kernel OOM kill, which
/// cannot be provoked safely). Parents map it to FaultClass::OomKill.
inline constexpr int OomExitCode = 97;

/// Recipe for a FaultPlan over a sweep's seed range.
struct FaultPlanOptions {
  /// Seed of the plan's own RNG stream (which run seeds are faulted and
  /// with what). Independent of the run seeds themselves.
  uint64_t PlanSeed = 1;
  /// The sweep seed range the plan covers, pipeline::SweepOptions-style.
  uint64_t FirstSeed = 1;
  uint64_t NumSeeds = 0;
  /// Probability that a given run seed is faulted.
  double FaultRate = 0.05;
  /// Relative weights of the fault kinds (0 disables a kind). Defaults
  /// exercise the PR-4 in-process kinds equally and DISABLE the lethal
  /// kinds (weights and plan draws are unchanged for pre-isolation
  /// callers); enable lethal kinds explicitly for sandboxed sweeps.
  double Weights[NumFaultKinds] = {1, 1, 1, 1, 1, 0, 0, 0, 0};
  /// Duration of LatencySpike sleeps.
  uint64_t LatencyMicros = 200;
  /// Fraction of lethal faults that are CHRONIC (LethalAttempts =
  /// UINT32_MAX, die on every attempt); the rest are transient
  /// (LethalAttempts = 1). The chronic draw consumes RNG only for lethal
  /// kinds, so plans without them are bit-identical to PR-4 plans.
  double LethalChronicFraction = 0.1;
};

/// A precomputed, immutable schedule of faults for one sweep.
struct FaultPlan {
  std::map<uint64_t, FaultSpec> BySeed;

  /// \returns the fault planned for run seed \p Seed, or nullptr.
  const FaultSpec *faultFor(uint64_t Seed) const {
    auto It = BySeed.find(Seed);
    return It == BySeed.end() ? nullptr : &It->second;
  }
  bool faulted(uint64_t Seed) const { return BySeed.count(Seed) != 0; }
  /// Faulted and of a kind that invalidates the verdict.
  bool infraFaulted(uint64_t Seed) const {
    const FaultSpec *S = faultFor(Seed);
    return S && isInfraFault(S->Kind);
  }
  size_t size() const { return BySeed.size(); }
};

/// Draws a FaultPlan from \p Opts. Deterministic: same options, same
/// plan, regardless of how the sweep later executes.
FaultPlan makeFaultPlan(const FaultPlanOptions &Opts);

/// Detonates \p Spec inside the current run. Must be called from inside a
/// goroutine (uses rt::Runtime::current()). GoPanic / ForeignException /
/// SchedulerStall / CpuSpin spawn a "saboteur" goroutine so the host body
/// still runs; LatencySpike sleeps inline without touching the runtime.
/// Lethal kinds consult RunOptions::Attempt (no detonation past
/// LethalAttempts — the run is then the unmodified body) and inSandbox()
/// (outside a sandbox they throw instead of killing the process).
void detonate(const FaultSpec &Spec);

/// Wraps \p Body so each run consults \p Plan by its own seed
/// (rt::Runtime::current().options().Seed) and detonates the planned
/// fault, if any, before the body. Non-faulted seeds add zero runtime
/// interaction. The plan is captured by value (shared with all copies of
/// the returned body), so the wrapper outlives the caller's plan.
std::function<void()> instrumentBody(std::function<void()> Body,
                                     FaultPlan Plan);

/// A program under sweep, shaped like sweep::Runner / corpus
/// Pattern::RunRacy (inject sits below sweep, so the alias is local).
using Runner = std::function<rt::RunResult(const rt::RunOptions &)>;

/// Hosts instrumentBody(Body, Plan) in a fresh Runtime per call — the
/// Runner-shaped form the sweep engines consume.
Runner instrumentedRunner(std::function<void()> Body, FaultPlan Plan);

/// Counters describing fault-injection activity. All pointers may be
/// null (disabled registry); use the null-safe obs helpers.
struct FaultInstruments {
  /// grs_fault_injections_total{kind=...}: detonations by kind.
  obs::Counter *Injections[NumFaultKinds] = {};
  /// grs_fault_planned_total: faults in the plans counted so far.
  obs::Counter *Planned = nullptr;
};

/// Registers (or looks up) the `grs_fault_*` instruments on \p Reg.
/// Returns all-null handles when \p Reg is null or disabled. NOT
/// thread-safe (obs::Registry is single-threaded); call from the
/// serial planning/merge side only.
FaultInstruments faultInstruments(obs::Registry *Reg);

/// Convenience: counts \p Plan into \p Ins (Planned and per-kind
/// Injections are NOT the same thing; this bumps Planned only).
void countPlan(const FaultInstruments &Ins, const FaultPlan &Plan);

} // namespace inject
} // namespace grs

#endif // GRS_INJECT_FAULT_H
