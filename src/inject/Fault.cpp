//===- inject/Fault.cpp - Deterministic seeded fault injection ------------===//

#include "inject/Fault.h"

#include "rt/Channel.h"
#include "support/Rng.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <thread>

#include <unistd.h>

using namespace grs;
using namespace grs::inject;

const char *inject::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::GoPanic:
    return "go_panic";
  case FaultKind::ForeignException:
    return "foreign_exception";
  case FaultKind::SchedulerStall:
    return "scheduler_stall";
  case FaultKind::CpuSpin:
    return "cpu_spin";
  case FaultKind::LatencySpike:
    return "latency_spike";
  case FaultKind::HeapExhaustion:
    return "heap_exhaustion";
  case FaultKind::WildWrite:
    return "wild_write";
  case FaultKind::StackOverflow:
    return "stack_overflow";
  case FaultKind::AbortCall:
    return "abort_call";
  }
  return "unknown";
}

bool inject::isInfraFault(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::ForeignException:
  case FaultKind::SchedulerStall:
  case FaultKind::CpuSpin:
  case FaultKind::HeapExhaustion:
  case FaultKind::WildWrite:
  case FaultKind::StackOverflow:
  case FaultKind::AbortCall:
    return true;
  case FaultKind::GoPanic:
  case FaultKind::LatencySpike:
    return false;
  }
  return false;
}

bool inject::isLethalFault(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::HeapExhaustion:
  case FaultKind::WildWrite:
  case FaultKind::StackOverflow:
  case FaultKind::AbortCall:
    return true;
  default:
    return false;
  }
}

namespace {
std::atomic<bool> SandboxFlag{false};
} // namespace

void inject::enterSandbox() { SandboxFlag.store(true); }
bool inject::inSandbox() { return SandboxFlag.load(); }

FaultPlan inject::makeFaultPlan(const FaultPlanOptions &Opts) {
  FaultPlan Plan;
  // One RNG stream, consumed in seed order: the plan is a pure function
  // of the options, independent of how (or whether) the runs execute.
  support::Rng Rng(Opts.PlanSeed);
  std::vector<double> Weights(Opts.Weights, Opts.Weights + NumFaultKinds);
  double Total = 0;
  for (double W : Weights)
    Total += W;
  if (Total <= 0)
    return Plan; // All kinds disabled: an empty (fault-free) plan.
  for (uint64_t I = 0; I < Opts.NumSeeds; ++I) {
    uint64_t Seed = Opts.FirstSeed + I;
    if (!Rng.chance(Opts.FaultRate))
      continue;
    FaultSpec Spec;
    Spec.Kind = static_cast<FaultKind>(Rng.weightedIndex(Weights));
    if (Spec.Kind == FaultKind::GoPanic)
      Spec.Site = static_cast<PanicSite>(Rng.nextBelow(NumPanicSites));
    if (Spec.Kind == FaultKind::LatencySpike)
      Spec.LatencyMicros = Opts.LatencyMicros;
    // The chronic draw consumes RNG only for lethal kinds, which default
    // to weight 0: plans without them are bit-identical to PR-4 plans.
    if (isLethalFault(Spec.Kind))
      Spec.LethalAttempts =
          Rng.chance(Opts.LethalChronicFraction) ? UINT32_MAX : 1;
    Plan.BySeed.emplace(Seed, Spec);
  }
  return Plan;
}

namespace {

/// The GoPanic saboteur body: panic at the planned site.
void panicAtSite(PanicSite Site) {
  rt::Runtime &RT = rt::Runtime::current();
  switch (Site) {
  case PanicSite::Channel: {
    // Send on a channel we already closed (§4.9 channel misuse).
    rt::Chan<rt::Unit> C(1, "inject.chan");
    C.close();
    C.send(rt::Unit{}); // panics: send on closed channel
    break;
  }
  case PanicSite::Lock: {
    // Double release of the closing "lock" on a channel — our runtime's
    // lock-discipline panic (close of closed channel).
    rt::Chan<rt::Unit> C(1, "inject.lock");
    C.close();
    C.close(); // panics: close of closed channel
    break;
  }
  case PanicSite::Spawn:
    // A spawned grandchild panics directly, exercising panic capture
    // off the saboteur's own fiber.
    RT.go("inject.spawned-panicker", [] {
      rt::Runtime::current().panicNow(
          "injected panic in spawned goroutine");
    });
    rt::gosched();
    break;
  }
}

/// Unbounded large-frame recursion. The volatile stores defeat tail-call
/// and frame collapsing; the fiber stack is a dedicated mapping, so the
/// runaway frames exit it into unmapped pages for a clean SIGSEGV.
[[gnu::noinline]] uint64_t burnStack(uint64_t Depth) {
  volatile char Frame[4096];
  Frame[0] = static_cast<char>(Depth);
  Frame[sizeof(Frame) - 1] = Frame[0];
  // Never true at runtime, but the volatile read is opaque to the
  // compiler, so the recursion is not provably (or warnably) infinite.
  if (Frame[0] != static_cast<char>(Depth))
    return Depth;
  return burnStack(Depth + 1) + Frame[sizeof(Frame) - 1];
}

/// Allocates until the allocator fails (RLIMIT_AS in a sandboxed child),
/// then exits with OomExitCode — the deterministic stand-in for a kernel
/// OOM kill. The new_handler keeps bad_alloc from unwinding into the
/// fiber machinery.
[[noreturn]] void exhaustHeap() {
  std::set_new_handler([] { _exit(OomExitCode); });
  for (;;) {
    char *Block = new char[1 << 20];
    std::memset(Block, 0x5A, 1 << 20); // force commit; deliberately leaked
  }
}

/// Detonates a lethal fault for real: the process does not survive this.
[[noreturn]] void detonateLethal(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::HeapExhaustion:
    exhaustHeap();
  case FaultKind::WildWrite: {
    // Page zero is never mapped; the store is a guaranteed SIGSEGV. The
    // volatile address cell keeps the optimizer from proving (and
    // warning about) the dereference target.
    static volatile uintptr_t WildAddress = 8;
    *reinterpret_cast<volatile uint64_t *>(WildAddress) = 0xDEADBEEF;
    break;
  }
  case FaultKind::StackOverflow:
    burnStack(0);
    break;
  case FaultKind::AbortCall:
    std::abort();
  default:
    break;
  }
  // A lethal fault that somehow returned (e.g. the wild store was
  // tolerated) must still kill the process: the parent's classification
  // depends on it.
  std::abort();
}

} // namespace

void inject::detonate(const FaultSpec &Spec) {
  if (Spec.Kind == FaultKind::LatencySpike) {
    // Inline wall-clock stall, zero runtime interaction: the schedule and
    // therefore the verdict are bit-identical to the un-faulted run.
    std::this_thread::sleep_for(std::chrono::microseconds(Spec.LatencyMicros));
    return;
  }
  rt::Runtime &RT = rt::Runtime::current();
  if (isLethalFault(Spec.Kind)) {
    // Attempt-gated: past LethalAttempts the crasher has "recovered" and
    // the run is the unmodified body (bit-identical to fault-free).
    if (RT.options().Attempt > Spec.LethalAttempts)
      return;
    if (!inSandbox()) {
      // No sandbox to die in: downgrade to a foreign C++ exception so the
      // in-process resilient path quarantines the slot instead of the
      // harness dying.
      RT.go("inject.lethal-downgrade", [Kind = Spec.Kind] {
        throw std::runtime_error(
            std::string("injected lethal fault (no sandbox): ") +
            faultKindName(Kind));
      });
      return;
    }
    detonateLethal(Spec.Kind);
  }
  switch (Spec.Kind) {
  case FaultKind::GoPanic:
    RT.go("inject.panicker", [Site = Spec.Site] { panicAtSite(Site); });
    break;
  case FaultKind::ForeignException:
    RT.go("inject.thrower", [] {
      throw std::runtime_error("injected foreign fault");
    });
    break;
  case FaultKind::SchedulerStall:
    // Yields forever: consumes scheduling steps without progress until
    // MaxSteps trips (StepLimitHit) — the classic livelocked test.
    RT.go("inject.staller", [] {
      for (;;)
        rt::gosched();
    });
    break;
  case FaultKind::CpuSpin:
    // Never reaches a scheduling point: StepLimit CANNOT fire; only the
    // hard watchdog (RunOptions::WatchdogMillis) recovers the thread.
    RT.go("inject.spinner", [] {
      volatile uint64_t Spin = 0;
      for (;;)
        ++Spin;
    });
    break;
  case FaultKind::LatencySpike:
  case FaultKind::HeapExhaustion:
  case FaultKind::WildWrite:
  case FaultKind::StackOverflow:
  case FaultKind::AbortCall:
    break; // handled above
  }
}

std::function<void()> inject::instrumentBody(std::function<void()> Body,
                                             FaultPlan Plan) {
  return [Body = std::move(Body), Plan = std::move(Plan)] {
    // Pure C++ lookup — no scheduling point — so a miss leaves the run
    // untouched.
    if (const FaultSpec *Spec =
            Plan.faultFor(rt::Runtime::current().options().Seed))
      detonate(*Spec);
    Body();
  };
}

Runner inject::instrumentedRunner(std::function<void()> Body,
                                  FaultPlan Plan) {
  return [Wrapped = instrumentBody(std::move(Body), std::move(Plan))](
             const rt::RunOptions &Opts) {
    rt::Runtime RT(Opts);
    return RT.run(Wrapped);
  };
}

FaultInstruments inject::faultInstruments(obs::Registry *Reg) {
  FaultInstruments Ins;
  if (!Reg)
    return Ins;
  for (size_t K = 0; K < NumFaultKinds; ++K)
    Ins.Injections[K] = Reg->counter(
        "grs_fault_injections_total",
        {{"kind", faultKindName(static_cast<FaultKind>(K))}});
  Ins.Planned = Reg->counter("grs_fault_planned_total");
  return Ins;
}

void inject::countPlan(const FaultInstruments &Ins, const FaultPlan &Plan) {
  obs::inc(Ins.Planned, Plan.size());
}
