//===- trace/Trace.cpp - Binary event-trace capture format ----------------===//

#include "trace/Trace.h"

#include "support/Varint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace grs;
using namespace grs::trace;

//===----------------------------------------------------------------------===//
// Field layout
//===----------------------------------------------------------------------===//

EventFields trace::eventFields(race::EventKind Kind) {
  using K = race::EventKind;
  EventFields F;
  switch (Kind) {
  case K::RootGoroutine:
  case K::Finish:
  case K::PopFrame:
    F.HasT = true;
    break;
  case K::Fork:
    F.HasT = true;
    break;
  case K::Join:
  case K::SetLine:
    F.HasT = true;
    F.HasA = true;
    break;
  case K::NewSync:
    F.HasStr1 = true;
    break;
  case K::Acquire:
  case K::Release:
  case K::ReleaseMerge:
    F.HasT = true;
    F.HasA = true;
    break;
  case K::TransferSync:
    F.HasA = true;
    F.HasB = true;
    break;
  case K::LockAcquire:
  case K::LockRelease:
    F.HasT = true;
    F.HasA = true;
    F.HasFlag = true;
    break;
  case K::PushFrame:
    F.HasT = true;
    F.HasB = true;
    F.HasStr1 = true;
    F.HasStr2 = true;
    break;
  case K::Read:
  case K::Write:
    F.HasT = true;
    F.HasA = true;
    F.HasStr1 = true;
    break;
  case K::ChannelSend:
  case K::ChannelRecv:
  case K::ChannelClose:
    F.HasT = true;
    F.HasA = true;
    F.HasStr1 = true;
    break;
  case K::AtomicOp:
    F.HasT = true;
    F.HasA = true;
    F.HasFlag = true;
    F.HasStr1 = true;
    break;
  case K::DestroySync:
    F.HasT = true;
    F.HasA = true;
    break;
  }
  return F;
}

const std::string &Trace::text(TraceStrId Id) const {
  static const std::string Empty;
  if (Id == NoTraceStr || Id >= Strings.size())
    return Empty;
  return Strings[Id];
}

//===----------------------------------------------------------------------===//
// TraceSink
//===----------------------------------------------------------------------===//

TraceSink::TraceSink() { reset(); }

void TraceSink::reset() {
  Buffer.clear();
  StringIds.clear();
  Events = 0;
  Buffer.insert(Buffer.end(), TraceMagic, TraceMagic + sizeof(TraceMagic));
  putVarint(TraceVersion);
}

void TraceSink::putVarint(uint64_t Value) {
  support::putVarint(Buffer, Value);
}

TraceStrId TraceSink::internString(const std::string &Text) {
  auto [It, Inserted] =
      StringIds.try_emplace(Text, static_cast<TraceStrId>(StringIds.size()));
  if (Inserted) {
    // strdef record: tag 0, dense id, length, bytes.
    putVarint(0);
    putVarint(It->second);
    putVarint(Text.size());
    Buffer.insert(Buffer.end(), Text.begin(), Text.end());
  }
  return It->second;
}

void TraceSink::onTraceEvent(const race::TraceEvent &Event) {
  static const std::string Empty;
  EventFields F = eventFields(Event.Kind);
  // Intern before the event tag so strdefs always precede their use.
  TraceStrId S1 = NoTraceStr, S2 = NoTraceStr;
  if (F.HasStr1)
    S1 = internString(Event.Str1 ? *Event.Str1 : Empty);
  if (F.HasStr2)
    S2 = internString(Event.Str2 ? *Event.Str2 : Empty);
  putVarint(static_cast<uint64_t>(Event.Kind) + 1);
  if (F.HasT)
    putVarint(Event.T);
  if (F.HasA)
    putVarint(Event.A);
  if (F.HasB)
    putVarint(Event.B);
  if (F.HasFlag)
    putVarint(Event.Flag ? 1 : 0);
  if (F.HasStr1)
    putVarint(S1);
  if (F.HasStr2)
    putVarint(S2);
  ++Events;
}

std::vector<uint8_t> TraceSink::take() {
  std::vector<uint8_t> Out = std::move(Buffer);
  reset();
  return Out;
}

bool TraceSink::writeFile(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  size_t Written = std::fwrite(Buffer.data(), 1, Buffer.size(), File);
  bool Ok = Written == Buffer.size();
  Ok &= std::fclose(File) == 0;
  return Ok;
}

//===----------------------------------------------------------------------===//
// TraceReader
//===----------------------------------------------------------------------===//

TraceReader::TraceReader(const uint8_t *Data, size_t Size)
    : Data(Data), Size(Size) {}

bool TraceReader::fail(const std::string &Message) {
  if (Error.empty())
    Error = Message + " (at byte " + std::to_string(Pos) + ")";
  return false;
}

bool TraceReader::readVarint(uint64_t &Value) {
  support::VarintError E = support::readVarint(Data, Size, Pos, Value);
  if (E == support::VarintError::Ok)
    return true;
  return fail(support::varintErrorText(E));
}

bool TraceReader::readHeader(Trace &Out) {
  if (Size - Pos < sizeof(TraceMagic))
    return fail("truncated header");
  if (std::memcmp(Data + Pos, TraceMagic, sizeof(TraceMagic)) != 0)
    return fail("bad magic (not a GRSTRACE file)");
  Pos += sizeof(TraceMagic);
  uint64_t Version = 0;
  if (!readVarint(Version))
    return false;
  if (Version != TraceVersion)
    return fail("unsupported trace version " + std::to_string(Version));
  Out.Version = static_cast<uint32_t>(Version);
  return true;
}

bool TraceReader::readRecord(Trace &Out, bool &Done) {
  Done = false;
  if (Pos >= Size) {
    Done = true;
    return true;
  }
  uint64_t Tag = 0;
  if (!readVarint(Tag))
    return false;

  if (Tag == 0) {
    // strdef: id must be dense (== current table size).
    uint64_t Id = 0, Length = 0;
    if (!readVarint(Id) || !readVarint(Length))
      return false;
    if (Id != Out.Strings.size())
      return fail("non-dense string id " + std::to_string(Id) +
                  " (expected " + std::to_string(Out.Strings.size()) + ")");
    if (Length > Size - Pos)
      return fail("truncated string payload");
    Out.Strings.emplace_back(reinterpret_cast<const char *>(Data + Pos),
                             static_cast<size_t>(Length));
    Pos += static_cast<size_t>(Length);
    return true;
  }

  uint64_t KindValue = Tag - 1;
  if (KindValue >= race::NumEventKinds)
    return fail("unknown event tag " + std::to_string(Tag));
  TraceRecord Record;
  Record.Kind = static_cast<race::EventKind>(KindValue);
  EventFields F = eventFields(Record.Kind);
  uint64_t Value = 0;
  if (F.HasT) {
    if (!readVarint(Value))
      return false;
    if (Value > ~static_cast<race::Tid>(0))
      return fail("goroutine id out of range");
    Record.T = static_cast<race::Tid>(Value);
  }
  if (F.HasA && !readVarint(Record.A))
    return false;
  if (F.HasB && !readVarint(Record.B))
    return false;
  if (F.HasFlag) {
    if (!readVarint(Value))
      return false;
    if (Value > 1)
      return fail("flag operand not 0/1");
    Record.Flag = Value != 0;
  }
  auto ReadStr = [&](TraceStrId &Slot) {
    if (!readVarint(Value))
      return false;
    if (Value >= Out.Strings.size())
      return fail("dangling string id " + std::to_string(Value));
    Slot = static_cast<TraceStrId>(Value);
    return true;
  };
  if (F.HasStr1 && !ReadStr(Record.Str1))
    return false;
  if (F.HasStr2 && !ReadStr(Record.Str2))
    return false;
  Out.Events.push_back(Record);
  return true;
}

bool TraceReader::readAll(Trace &Out) {
  if (!readHeader(Out))
    return false;
  bool Done = false;
  while (!Done)
    if (!readRecord(Out, Done))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Convenience entry points
//===----------------------------------------------------------------------===//

Trace trace::decodeOrDie(const std::vector<uint8_t> &Bytes) {
  Trace Out;
  TraceReader Reader(Bytes);
  if (!Reader.readAll(Out)) {
    std::fprintf(stderr, "fatal: undecodable trace: %s\n",
                 Reader.error().c_str());
    std::abort();
  }
  return Out;
}

bool trace::readTraceFile(const std::string &Path, Trace &Out,
                          std::string &Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Error = "cannot open " + Path;
    return false;
  }
  std::vector<uint8_t> Bytes;
  uint8_t Chunk[64 * 1024];
  size_t Got = 0;
  while ((Got = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
    Bytes.insert(Bytes.end(), Chunk, Chunk + Got);
  bool ReadOk = std::ferror(File) == 0;
  std::fclose(File);
  if (!ReadOk) {
    Error = "I/O error reading " + Path;
    return false;
  }
  TraceReader Reader(Bytes);
  if (!Reader.readAll(Out)) {
    Error = Reader.error();
    return false;
  }
  return true;
}
