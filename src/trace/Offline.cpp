//===- trace/Offline.cpp - Offline replay race detection ------------------===//

#include "trace/Offline.h"

#include "obs/Metrics.h"
#include "pipeline/Fingerprint.h"

#include <algorithm>

using namespace grs;
using namespace grs::trace;
using race::EventKind;

OfflineDetector::OfflineDetector(race::DetectorOptions Opts) : Det(Opts) {}

void OfflineDetector::setMetrics(obs::Registry *Reg) {
  Metrics = Reg;
  MEvents = Reg ? Reg->counter("grs_trace_replay_events_total") : nullptr;
}

bool OfflineDetector::fail(std::string Message) {
  if (Error.empty())
    Error = std::move(Message);
  return false;
}

bool OfflineDetector::apply(const Trace &T, const TraceRecord &Record) {
  // The detector asserts on out-of-range ids in debug builds; validate
  // here so release-mode replay of hostile bytes fails cleanly instead.
  auto CheckTid = [&](race::Tid Id) {
    return Id < Det.numGoroutines() ||
           fail("event references unallocated goroutine " +
                std::to_string(Id));
  };
  auto CheckSync = [&](uint64_t Id) {
    // Slot count, not NewSync count: destroy-driven free-list reuse
    // means ids are recycled, so the detector's slot table is the
    // authoritative bound.
    return Id < Det.numSyncVarSlots() ||
           fail("event references unallocated sync var " +
                std::to_string(Id));
  };

  switch (Record.Kind) {
  case EventKind::RootGoroutine:
    Det.newRootGoroutine();
    break;
  case EventKind::Fork:
    if (!CheckTid(Record.T))
      return false;
    Det.fork(Record.T);
    break;
  case EventKind::Finish:
    if (!CheckTid(Record.T))
      return false;
    Det.finish(Record.T);
    break;
  case EventKind::Join:
    if (!CheckTid(Record.T) || !CheckTid(static_cast<race::Tid>(Record.A)))
      return false;
    Det.join(Record.T, static_cast<race::Tid>(Record.A));
    break;
  case EventKind::NewSync:
    Det.newSyncVar(T.text(Record.Str1));
    ++NumSyncVars;
    break;
  case EventKind::Acquire:
    if (!CheckTid(Record.T) || !CheckSync(Record.A))
      return false;
    Det.acquire(Record.T, static_cast<race::SyncId>(Record.A));
    break;
  case EventKind::Release:
    if (!CheckTid(Record.T) || !CheckSync(Record.A))
      return false;
    Det.release(Record.T, static_cast<race::SyncId>(Record.A));
    break;
  case EventKind::ReleaseMerge:
    if (!CheckTid(Record.T) || !CheckSync(Record.A))
      return false;
    Det.releaseMerge(Record.T, static_cast<race::SyncId>(Record.A));
    break;
  case EventKind::TransferSync:
    if (!CheckSync(Record.A) || !CheckSync(Record.B))
      return false;
    Det.transferSync(static_cast<race::SyncId>(Record.A),
                     static_cast<race::SyncId>(Record.B));
    break;
  case EventKind::LockAcquire:
    if (!CheckTid(Record.T) || !CheckSync(Record.A))
      return false;
    Det.lockAcquired(Record.T, static_cast<race::SyncId>(Record.A),
                     Record.Flag);
    break;
  case EventKind::LockRelease:
    if (!CheckTid(Record.T) || !CheckSync(Record.A))
      return false;
    Det.lockReleased(Record.T, static_cast<race::SyncId>(Record.A),
                     Record.Flag);
    break;
  case EventKind::PushFrame:
    if (!CheckTid(Record.T))
      return false;
    Det.pushFrame(Record.T,
                  Det.makeFrame(T.text(Record.Str1), T.text(Record.Str2),
                                static_cast<uint32_t>(Record.B)));
    break;
  case EventKind::PopFrame:
    if (!CheckTid(Record.T))
      return false;
    if (Det.currentChain(Record.T).empty())
      return fail("pop-frame on empty call chain of goroutine " +
                  std::to_string(Record.T));
    Det.popFrame(Record.T);
    break;
  case EventKind::SetLine:
    if (!CheckTid(Record.T))
      return false;
    Det.setLine(Record.T, static_cast<uint32_t>(Record.A));
    break;
  case EventKind::Read:
    if (!CheckTid(Record.T))
      return false;
    Det.onRead(Record.T, Record.A, T.text(Record.Str1));
    break;
  case EventKind::Write:
    if (!CheckTid(Record.T))
      return false;
    Det.onWrite(Record.T, Record.A, T.text(Record.Str1));
    break;
  case EventKind::DestroySync:
    if (!CheckTid(Record.T) || !CheckSync(Record.A))
      return false;
    // destroySyncVar is GcMode-independent, so the free-list state (and
    // with it every subsequent NewSync id) matches the capture-time
    // detector no matter which options this replay runs under.
    Det.destroySyncVar(Record.T, static_cast<race::SyncId>(Record.A));
    break;
  case EventKind::ChannelSend:
  case EventKind::ChannelRecv:
  case EventKind::ChannelClose:
  case EventKind::AtomicOp:
    // Pure annotations: no detector transition.
    break;
  }
  return true;
}

bool OfflineDetector::replay(const Trace &T) {
  obs::Span S = Metrics ? Metrics->span("replay") : obs::Span();
  for (const TraceRecord &Record : T.Events) {
    if (!apply(T, Record))
      return false;
    ++EventsReplayed;
    obs::inc(MEvents);
  }
  return true;
}

bool OfflineDetector::replayBytes(const std::vector<uint8_t> &Bytes) {
  Trace T;
  TraceReader Reader(Bytes);
  if (!Reader.readAll(T))
    return fail("decode: " + Reader.error());
  return replay(T);
}

std::vector<uint64_t> OfflineDetector::fingerprints() const {
  std::vector<uint64_t> Out;
  Out.reserve(Det.reports().size());
  for (const race::RaceReport &Report : Det.reports())
    Out.push_back(pipeline::raceFingerprint(Det.interner(), Report));
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::vector<uint64_t> trace::replayFingerprints(const Trace &T,
                                                race::DetectorOptions Opts) {
  OfflineDetector Offline(Opts);
  Offline.replay(T);
  return Offline.fingerprints();
}
