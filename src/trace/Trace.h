//===- trace/Trace.h - Binary event-trace capture format --------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact append-only binary format for detector event traces, plus
/// the capture sink and checked reader. This is the record half of the
/// paper-style record-once/analyze-at-scale pipeline (§3): the runtime's
/// instrumentation tees its detector event stream into a TraceSink during
/// one execution, and any number of offline analyses (trace/Offline.h)
/// re-consume the bytes later without re-running the scheduler.
///
/// Format (all integers unsigned LEB128 varints unless noted):
///
///   header  := magic[8] = "GRSTRACE", version varint (currently 1)
///   record  := strdef | event
///   strdef  := tag(0), id varint, length varint, bytes[length]
///   event   := tag(kind+1), operands...   (operand set depends on kind,
///              see eventFields(); string operands are string-table ids)
///
/// String operands are interned: the first occurrence of a string emits a
/// strdef record whose id is checked to be dense (== table size), so a
/// reader can never observe a dangling reference. The trace is therefore
/// streamable — records can be decoded one at a time as bytes arrive —
/// and self-contained.
///
/// Guarantees:
///  * Round trip: decode(encode(events)) yields the identical event
///    sequence (property-tested in tests/TraceTest.cpp).
///  * Checked decoding: truncated input, bad magic, unknown versions or
///    tags, oversized varints, and dangling string ids are reported as
///    errors with byte offsets, never undefined behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_TRACE_TRACE_H
#define GRS_TRACE_TRACE_H

#include "race/Event.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace grs {
namespace trace {

/// Magic bytes opening every trace.
inline constexpr char TraceMagic[8] = {'G', 'R', 'S', 'T',
                                       'R', 'A', 'C', 'E'};

/// Current (and only) format version.
inline constexpr uint32_t TraceVersion = 1;

/// Id into a trace's string table.
using TraceStrId = uint32_t;

/// Sentinel for "kind has no such string operand".
inline constexpr TraceStrId NoTraceStr = ~static_cast<TraceStrId>(0);

/// Which operand fields an event kind serializes. Field order on the wire
/// is T, A, B, Flag, Str1, Str2 (present fields only).
struct EventFields {
  bool HasT = false;
  bool HasA = false;
  bool HasB = false;
  bool HasFlag = false;
  bool HasStr1 = false;
  bool HasStr2 = false;
};

/// \returns the operand layout of \p Kind.
EventFields eventFields(race::EventKind Kind);

/// A decoded event: like race::TraceEvent but with string operands
/// resolved into string-table ids owned by the enclosing Trace.
struct TraceRecord {
  race::EventKind Kind = race::EventKind::RootGoroutine;
  race::Tid T = 0;
  uint64_t A = 0;
  uint64_t B = 0;
  bool Flag = false;
  TraceStrId Str1 = NoTraceStr;
  TraceStrId Str2 = NoTraceStr;

  friend bool operator==(const TraceRecord &X, const TraceRecord &Y) {
    return X.Kind == Y.Kind && X.T == Y.T && X.A == Y.A && X.B == Y.B &&
           X.Flag == Y.Flag && X.Str1 == Y.Str1 && X.Str2 == Y.Str2;
  }
};

/// A fully decoded trace: the string table plus the event sequence.
struct Trace {
  uint32_t Version = TraceVersion;
  std::vector<std::string> Strings;
  std::vector<TraceRecord> Events;

  /// \returns the text of \p Id ("" for NoTraceStr).
  const std::string &text(TraceStrId Id) const;
};

//===----------------------------------------------------------------------===//
// Capture
//===----------------------------------------------------------------------===//

/// Append-only trace encoder and capture sink. Install on a detector
/// (race::Detector::setEventObserver) or a runtime run
/// (rt::RunOptions::Trace) to tee the event stream into a byte buffer.
class TraceSink final : public race::EventObserver {
public:
  TraceSink();

  /// Records one event (EventObserver interface).
  void onTraceEvent(const race::TraceEvent &Event) override;

  /// Encoded bytes so far (header included; always decodable as-is).
  const std::vector<uint8_t> &bytes() const { return Buffer; }

  /// Number of events recorded (string definitions excluded).
  uint64_t eventCount() const { return Events; }

  /// Extracts the buffer, leaving the sink ready for a fresh capture.
  std::vector<uint8_t> take();

  /// Writes bytes() to \p Path. \returns false on I/O failure.
  bool writeFile(const std::string &Path) const;

private:
  void reset();
  void putVarint(uint64_t Value);
  TraceStrId internString(const std::string &Text);

  std::vector<uint8_t> Buffer;
  std::unordered_map<std::string, TraceStrId> StringIds;
  uint64_t Events = 0;
};

//===----------------------------------------------------------------------===//
// Reading
//===----------------------------------------------------------------------===//

/// Checked streaming decoder over an in-memory byte buffer.
class TraceReader {
public:
  TraceReader(const uint8_t *Data, size_t Size);
  explicit TraceReader(const std::vector<uint8_t> &Bytes)
      : TraceReader(Bytes.data(), Bytes.size()) {}

  /// Decodes the whole buffer into \p Out. \returns false on malformed
  /// input, with the failure in error(); \p Out then holds everything
  /// decoded before the error.
  bool readAll(Trace &Out);

  /// True once a decoding error occurred; decoding stops at that point.
  bool failed() const { return !Error.empty(); }
  const std::string &error() const { return Error; }

  /// Byte offset of the next unread record (diagnostics).
  size_t offset() const { return Pos; }

private:
  bool readHeader(Trace &Out);
  bool readRecord(Trace &Out, bool &Done);
  bool readVarint(uint64_t &Value);
  bool fail(const std::string &Message);

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  std::string Error;
};

/// Convenience: decodes \p Bytes, aborting the process on malformed input
/// (for callers that just produced the bytes themselves).
Trace decodeOrDie(const std::vector<uint8_t> &Bytes);

/// Reads and decodes a trace file. \returns false on I/O or decode
/// failure (message in \p Error).
bool readTraceFile(const std::string &Path, Trace &Out, std::string &Error);

} // namespace trace
} // namespace grs

#endif // GRS_TRACE_TRACE_H
