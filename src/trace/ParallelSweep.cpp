//===- trace/ParallelSweep.cpp - Multi-core seed-sweep engine -------------===//

#include "trace/ParallelSweep.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

using namespace grs;
using namespace grs::trace;

namespace {

/// Per-worker aggregation, merged under the result mutex at worker exit.
/// Sample selection tracks (seed, report index within the run) so the
/// merged result is the one the ascending serial sweep would have kept,
/// independent of worker interleaving.
struct LocalFinding {
  size_t Occurrences = 0;
  uint64_t FirstSeed = ~0ULL;
  uint64_t FirstIndex = ~0ULL;
  std::string Sample;
};

struct LocalResult {
  pipeline::SweepResult Counters;
  std::map<uint64_t, LocalFinding> Findings;
};

void runSeed(const rt::RunOptions &Base, uint64_t Seed,
             const std::function<void()> &Body, LocalResult &Local,
             obs::TimelineTrack *Track) {
  rt::RunOptions RunOpts = Base;
  RunOpts.Seed = Seed;
  RunOpts.TimelineTrack = Track;
  obs::TimelineScope SlotSpan =
      Track ? obs::TimelineScope(Track, "slot",
                                 "\"seed\":" + std::to_string(Seed))
            : obs::TimelineScope();
  uint64_t ReportIndex = 0;
  RunOpts.OnReport = [&](const race::Detector &D,
                         const race::RaceReport &Report) {
    uint64_t Fp = pipeline::raceFingerprint(D.interner(), Report);
    LocalFinding &Finding = Local.Findings[Fp];
    ++Finding.Occurrences;
    if (std::make_pair(Seed, ReportIndex) <
        std::make_pair(Finding.FirstSeed, Finding.FirstIndex)) {
      Finding.FirstSeed = Seed;
      Finding.FirstIndex = ReportIndex;
      Finding.Sample = race::reportToString(D.interner(), Report);
    }
    ++ReportIndex;
  };
  rt::Runtime RT(RunOpts);
  rt::RunResult Run = RT.run(Body);
  pipeline::SweepResult &R = Local.Counters;
  ++R.SeedsRun;
  R.SeedsWithRaces += Run.RaceCount > 0;
  R.SeedsWithLeaks += !Run.LeakedGoroutines.empty();
  R.SeedsWithPanics += !Run.Panics.empty();
  R.SeedsDeadlocked += Run.Deadlocked;
  R.TotalReports += Run.RaceCount;
}

} // namespace

pipeline::SweepResult
trace::parallelSweep(const ParallelSweepOptions &Opts,
                     const std::function<void()> &Body) {
  unsigned Threads = Opts.Threads ? Opts.Threads
                                  : std::thread::hardware_concurrency();
  if (Threads == 0)
    Threads = 1;
  if (Threads > Opts.NumSeeds)
    Threads = static_cast<unsigned>(Opts.NumSeeds ? Opts.NumSeeds : 1);

  // Merged state. Findings carry the serial-sweep sample-selection
  // metadata until the final projection into SweepResult.
  std::mutex MergeMutex;
  pipeline::SweepResult Merged;
  std::map<uint64_t, LocalFinding> MergedFindings;

  // Dynamic work stealing over the seed range: an atomic cursor instead
  // of static striping, so one long-running seed (e.g. a step-limit run)
  // does not idle the rest of the pool.
  std::atomic<uint64_t> NextOffset{0};

  // Worker tracks are created up front on this thread so the exported
  // track order is deterministic regardless of worker start order.
  std::vector<obs::TimelineTrack *> Tracks(Threads, nullptr);
  if (Opts.Timeline)
    for (unsigned I = 0; I < Threads; ++I)
      Tracks[I] = Opts.Timeline->track("sweep-worker-" + std::to_string(I));

  auto Worker = [&](unsigned Wid) {
    LocalResult Local;
    for (;;) {
      uint64_t Offset = NextOffset.fetch_add(1, std::memory_order_relaxed);
      if (Offset >= Opts.NumSeeds)
        break;
      runSeed(Opts.Run, Opts.FirstSeed + Offset, Body, Local, Tracks[Wid]);
    }
    std::lock_guard<std::mutex> Lock(MergeMutex);
    Merged.SeedsRun += Local.Counters.SeedsRun;
    Merged.SeedsWithRaces += Local.Counters.SeedsWithRaces;
    Merged.SeedsWithLeaks += Local.Counters.SeedsWithLeaks;
    Merged.SeedsWithPanics += Local.Counters.SeedsWithPanics;
    Merged.SeedsDeadlocked += Local.Counters.SeedsDeadlocked;
    Merged.TotalReports += Local.Counters.TotalReports;
    for (auto &[Fp, Finding] : Local.Findings) {
      LocalFinding &Into = MergedFindings[Fp];
      Into.Occurrences += Finding.Occurrences;
      if (std::make_pair(Finding.FirstSeed, Finding.FirstIndex) <
          std::make_pair(Into.FirstSeed, Into.FirstIndex)) {
        Into.FirstSeed = Finding.FirstSeed;
        Into.FirstIndex = Finding.FirstIndex;
        Into.Sample = std::move(Finding.Sample);
      }
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Pool.emplace_back(Worker, I);
  for (std::thread &T : Pool)
    T.join();

  for (auto &[Fp, Finding] : MergedFindings) {
    pipeline::SweepResult::Finding &Out = Merged.Findings[Fp];
    Out.Occurrences = Finding.Occurrences;
    Out.SampleReport = std::move(Finding.Sample);
  }
  return Merged;
}

pipeline::SweepResult trace::parallelSweep(uint64_t NumSeeds,
                                           unsigned Threads,
                                           const std::function<void()> &Body) {
  ParallelSweepOptions Opts;
  Opts.NumSeeds = NumSeeds;
  Opts.Threads = Threads;
  return parallelSweep(Opts, Body);
}
