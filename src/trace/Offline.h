//===- trace/Offline.h - Offline replay race detection ----------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline race detection over captured event traces: the analyze half of
/// the record-once/analyze-at-scale pipeline. An OfflineDetector feeds a
/// decoded trace (trace/Trace.h) through a fresh race::Detector, making
/// detection a pure function of (trace bytes, DetectorOptions):
///
///  * With the options of the recording run, the replay's verdicts —
///    reports, fingerprints, stats — are identical to the online run's
///    (parity-tested across the corpus in tests/TraceTest.cpp).
///  * With different options, one recorded execution is re-analyzed under
///    another detector configuration (pure-HB vs hybrid vs lock-set-only,
///    epoch ablation) without re-running the scheduler — the §3.1
///    "detected races depend on the interleaving" problem factored so the
///    interleaving is captured once and questions are asked offline.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_TRACE_OFFLINE_H
#define GRS_TRACE_OFFLINE_H

#include "race/Detector.h"
#include "trace/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grs {

namespace obs {
class Counter;
class Registry;
} // namespace obs

namespace trace {

/// Replays decoded traces through a private race::Detector.
class OfflineDetector {
public:
  explicit OfflineDetector(race::DetectorOptions Opts = {});

  /// Attaches a metrics registry (borrowed; must outlive the detector).
  /// Each replay then bumps `grs_trace_replay_events_total` per applied
  /// event and runs under a "replay" phase span, so events/sec falls out
  /// of the exported phase timings. Null detaches.
  void setMetrics(obs::Registry *Reg);

  /// Feeds every event of \p T into the detector, in order. Annotation
  /// events (channel/atomic markers) carry no detector transition and are
  /// counted but not applied. \returns false if the trace is structurally
  /// inconsistent (references a goroutine or sync var never allocated);
  /// the failure is in error() and replay stops there. May be called
  /// with several traces in sequence to model concatenated executions.
  bool replay(const Trace &T);

  /// Decodes \p Bytes and replays. Decode failures land in error().
  bool replayBytes(const std::vector<uint8_t> &Bytes);

  /// Events applied so far (annotations included).
  uint64_t eventsReplayed() const { return EventsReplayed; }

  bool failed() const { return !Error.empty(); }
  const std::string &error() const { return Error; }

  /// The detector holding replay verdicts (reports, stats, interner).
  race::Detector &det() { return Det; }
  const race::Detector &det() const { return Det; }

  /// §3.3.1 fingerprints of every replayed report, sorted (the canonical
  /// comparable verdict form; online/offline parity is equality of these
  /// plus report counts).
  std::vector<uint64_t> fingerprints() const;

private:
  bool apply(const Trace &T, const TraceRecord &Record);
  bool fail(std::string Message);

  race::Detector Det;
  /// NewSync events replayed so far. Structural validation bounds sync
  /// ids by Det.numSyncVarSlots() (free-list reuse makes the slot table,
  /// not this count, authoritative); kept as a replay statistic.
  uint64_t NumSyncVars = 0;
  uint64_t EventsReplayed = 0;
  std::string Error;
  /// Optional telemetry (see setMetrics).
  obs::Registry *Metrics = nullptr;
  obs::Counter *MEvents = nullptr;
};

/// One-shot helper: replay \p T under \p Opts and return the sorted
/// fingerprints (empty also when the trace is malformed — use
/// OfflineDetector directly to distinguish).
std::vector<uint64_t> replayFingerprints(const Trace &T,
                                         race::DetectorOptions Opts = {});

} // namespace trace
} // namespace grs

#endif // GRS_TRACE_OFFLINE_H
