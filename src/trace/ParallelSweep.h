//===- trace/ParallelSweep.h - Multi-core seed-sweep engine -----*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet-shaped sweep executor: fans a seed range out over a pool of
/// OS threads, each worker hosting its own Runtime + Detector instance
/// (the runtime's active-instance pointer is thread_local and the
/// detector has no global state, so instances are fully isolated — see
/// tests/MultiInstanceTest.cpp), and streams fingerprinted reports into
/// the same §3.3.1 dedup aggregation as the single-threaded
/// pipeline::sweep. This is the shape of the paper's deployment: 100K+
/// instrumented tests running concurrently across a fleet, with race
/// evidence deduplicated centrally (§3).
///
/// Determinism: each seed's run is the same pure function of (program,
/// seed) as in pipeline::sweep, and aggregation is order-insensitive
/// (counters commute; each finding's sample report is taken from its
/// lowest reporting seed), so a parallel sweep returns a result
/// indistinguishable from the serial sweep of the same options.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_TRACE_PARALLELSWEEP_H
#define GRS_TRACE_PARALLELSWEEP_H

#include "pipeline/Sweep.h"

#include <functional>

namespace grs {
namespace trace {

/// Parallel sweep options. Mirrors pipeline::SweepOptions plus the
/// worker-pool width.
struct ParallelSweepOptions {
  uint64_t FirstSeed = 1;
  uint64_t NumSeeds = 256;
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned Threads = 0;
  /// Base options applied to every run (Seed overwritten per run). The
  /// OnReport/Trace hooks must be unset — each worker installs its own.
  rt::RunOptions Run;
  /// Optional flight recorder (borrowed): each worker records its slots
  /// as "slot" spans on its own "sweep-worker-<i>" track. Recording
  /// never perturbs the runs or the parallel == serial invariant.
  obs::Timeline *Timeline = nullptr;
};

/// Runs \p Body under NumSeeds schedules across the worker pool and
/// aggregates exactly like pipeline::sweep. \p Body is invoked
/// concurrently from several threads (each invocation inside its own
/// Runtime); it must not touch state outside the runtime it runs in —
/// which is already true of any body built from Shared/Chan/Mutex
/// primitives, since those bind to the current (thread-local) runtime.
pipeline::SweepResult
parallelSweep(const ParallelSweepOptions &Opts,
              const std::function<void()> &Body);

/// Convenience: sweep \p NumSeeds schedules on \p Threads workers.
pipeline::SweepResult parallelSweep(uint64_t NumSeeds, unsigned Threads,
                                    const std::function<void()> &Body);

} // namespace trace
} // namespace grs

#endif // GRS_TRACE_PARALLELSWEEP_H
