//===- obs/Http.cpp - Minimal Prometheus /metrics endpoint ----------------===//

#include "obs/Http.h"

#include "obs/Export.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define GRS_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define GRS_HAVE_SOCKETS 0
#endif

using namespace grs;
using namespace grs::obs;

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::publish(std::string Text) {
  std::lock_guard<std::mutex> Lock(SnapshotMutex);
  Snapshot = std::move(Text);
}

void MetricsServer::publishJson(std::string Text) {
  std::lock_guard<std::mutex> Lock(SnapshotMutex);
  JsonSnapshot = std::move(Text);
}

void MetricsServer::publishTrace(std::string Text) {
  std::lock_guard<std::mutex> Lock(SnapshotMutex);
  TraceSnapshot = std::move(Text);
}

void MetricsServer::publishRegistry(const Registry &Reg) {
  // Render outside the lock: the exporters walk the registry, which
  // belongs to the calling thread, and can be arbitrarily large.
  std::string Prom = prometheusText(Reg);
  std::string Json = jsonLines(Reg);
  std::lock_guard<std::mutex> Lock(SnapshotMutex);
  Snapshot = std::move(Prom);
  JsonSnapshot = std::move(Json);
}

bool IntervalPublisher::tick(const Registry &Reg) {
  uint64_t Now = now();
  if (Started && Now - LastPublishMs < IntervalMillis)
    return false;
  Started = true;
  LastPublishMs = Now;
  Server.publishRegistry(Reg);
  ++Publishes;
  return true;
}

void IntervalPublisher::force(const Registry &Reg) {
  Started = true;
  LastPublishMs = now();
  Server.publishRegistry(Reg);
  ++Publishes;
}

uint64_t IntervalPublisher::now() const {
  if (Clock)
    return Clock();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if GRS_HAVE_SOCKETS

bool MetricsServer::start(uint16_t Port) {
  if (Running.load())
    return false;
  int Fd = socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  int One = 1;
  setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // loopback only
  Addr.sin_port = htons(Port);
  if (bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      listen(Fd, 8) != 0) {
    close(Fd);
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    close(Fd);
    return false;
  }
  ListenFd = Fd;
  BoundPort = ntohs(Addr.sin_port);
  StopRequested.store(false);
  Running.store(true);
  Server = std::thread([this] { serveLoop(); });
  return true;
}

void MetricsServer::stop() {
  if (!Running.load())
    return;
  StopRequested.store(true);
  // No shutdown() of the listening socket here: the serve loop polls
  // with a bounded timeout, finishes whatever response it is writing,
  // and drains the accept backlog before returning — a scrape racing
  // this stop gets its bytes instead of a connection reset.
  Server.join();
  close(ListenFd);
  ListenFd = -1;
  BoundPort = 0;
  Running.store(false);
}

namespace {

bool writeAll(int Fd, const char *Data, size_t Size) {
  while (Size) {
    ssize_t N = write(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

} // namespace

void MetricsServer::serveClient(int Client) {
  // One read is enough for any real scrape request line; anything
  // pathological just yields a 404 or a dropped connection.
  char Buf[2048];
  ssize_t N = read(Client, Buf, sizeof(Buf) - 1);
  if (N <= 0) {
    close(Client);
    return;
  }
  Buf[N] = '\0';
  // Parse "GET <target> ..." — the only line we care about.
  std::string Target;
  if (std::strncmp(Buf, "GET ", 4) == 0) {
    const char *Start = Buf + 4;
    const char *End = Start;
    while (*End && *End != ' ' && *End != '\r' && *End != '\n')
      ++End;
    Target.assign(Start, End);
  }
  auto Ok = [](const std::string &ContentType, const std::string &Body) {
    return "HTTP/1.1 200 OK\r\n"
           "Content-Type: " +
           ContentType +
           "\r\n"
           "Content-Length: " +
           std::to_string(Body.size()) +
           "\r\n"
           "Connection: close\r\n\r\n" +
           Body;
  };
  std::string Response;
  if (Target == "/metrics" || Target == "/") {
    std::string Body;
    {
      std::lock_guard<std::mutex> Lock(SnapshotMutex);
      Body = Snapshot;
    }
    Response = Ok("text/plain; version=0.0.4; charset=utf-8", Body);
    Scrapes.fetch_add(1);
  } else if (Target == "/metrics.jsonl") {
    std::string Body;
    {
      std::lock_guard<std::mutex> Lock(SnapshotMutex);
      Body = JsonSnapshot;
    }
    Response = Ok("application/jsonlines", Body);
    Scrapes.fetch_add(1);
  } else if (Target == "/trace.json") {
    std::string Body;
    {
      std::lock_guard<std::mutex> Lock(SnapshotMutex);
      Body = TraceSnapshot;
    }
    Response = Ok("application/json", Body);
    Scrapes.fetch_add(1);
  } else if (Target == "/healthz") {
    // Liveness, not snapshot state: answering at all means the serving
    // thread is up, which is the whole question. Not counted as a
    // scrape — probes would otherwise swamp the scrape counter.
    Response = Ok("text/plain; charset=utf-8", "ok\n");
  } else {
    std::string Body = "404 not found; valid endpoints: /metrics, "
                       "/metrics.jsonl, /trace.json, /healthz\n";
    Response = "HTTP/1.1 404 Not Found\r\n"
               "Content-Type: text/plain; charset=utf-8\r\n"
               "Content-Length: " +
               std::to_string(Body.size()) +
               "\r\n"
               "Connection: close\r\n\r\n" +
               Body;
  }
  writeAll(Client, Response.data(), Response.size());
  close(Client);
}

void MetricsServer::serveLoop() {
  while (!StopRequested.load()) {
    struct pollfd PFD;
    PFD.fd = ListenFd;
    PFD.events = POLLIN;
    PFD.revents = 0;
    int PR = poll(&PFD, 1, /*timeout ms=*/200);
    if (PR <= 0)
      continue; // timeout (re-check the stop flag) or EINTR
    int Client = accept(ListenFd, nullptr, nullptr);
    if (Client < 0)
      continue;
    serveClient(Client);
  }
  // Drain: serve whatever connections the kernel already queued on the
  // listen backlog, so a request that raced stop() is answered rather
  // than reset when the socket closes.
  for (;;) {
    struct pollfd PFD;
    PFD.fd = ListenFd;
    PFD.events = POLLIN;
    PFD.revents = 0;
    if (poll(&PFD, 1, /*timeout ms=*/0) <= 0 || !(PFD.revents & POLLIN))
      break;
    int Client = accept(ListenFd, nullptr, nullptr);
    if (Client < 0)
      break;
    serveClient(Client);
  }
}

#else // !GRS_HAVE_SOCKETS

bool MetricsServer::start(uint16_t) { return false; }
void MetricsServer::stop() {}
void MetricsServer::serveLoop() {}
void MetricsServer::serveClient(int) {}

#endif // GRS_HAVE_SOCKETS
