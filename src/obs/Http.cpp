//===- obs/Http.cpp - Minimal Prometheus /metrics endpoint ----------------===//

#include "obs/Http.h"

#include "obs/Export.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define GRS_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define GRS_HAVE_SOCKETS 0
#endif

using namespace grs;
using namespace grs::obs;

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::publish(std::string Text) {
  std::lock_guard<std::mutex> Lock(SnapshotMutex);
  Snapshot = std::move(Text);
}

void MetricsServer::publishJson(std::string Text) {
  std::lock_guard<std::mutex> Lock(SnapshotMutex);
  JsonSnapshot = std::move(Text);
}

void MetricsServer::publishTrace(std::string Text) {
  std::lock_guard<std::mutex> Lock(SnapshotMutex);
  TraceSnapshot = std::move(Text);
}

void MetricsServer::publishRegistry(const Registry &Reg) {
  // Render outside the lock: the exporters walk the registry, which
  // belongs to the calling thread, and can be arbitrarily large.
  std::string Prom = prometheusText(Reg);
  std::string Json = jsonLines(Reg);
  std::lock_guard<std::mutex> Lock(SnapshotMutex);
  Snapshot = std::move(Prom);
  JsonSnapshot = std::move(Json);
}

bool IntervalPublisher::tick(const Registry &Reg) {
  uint64_t Now = now();
  if (Started && Now - LastPublishMs < IntervalMillis)
    return false;
  Started = true;
  LastPublishMs = Now;
  Server.publishRegistry(Reg);
  ++Publishes;
  return true;
}

void IntervalPublisher::force(const Registry &Reg) {
  Started = true;
  LastPublishMs = now();
  Server.publishRegistry(Reg);
  ++Publishes;
}

uint64_t IntervalPublisher::now() const {
  if (Clock)
    return Clock();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if GRS_HAVE_SOCKETS

bool MetricsServer::start(uint16_t Port) {
  if (Running.load())
    return false;
  int Fd = socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  int One = 1;
  setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // loopback only
  Addr.sin_port = htons(Port);
  if (bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      listen(Fd, 8) != 0) {
    close(Fd);
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    close(Fd);
    return false;
  }
  ListenFd = Fd;
  BoundPort = ntohs(Addr.sin_port);
  StopRequested.store(false);
  Running.store(true);
  Server = std::thread([this] { serveLoop(); });
  return true;
}

void MetricsServer::stop() {
  if (!Running.load())
    return;
  StopRequested.store(true);
  // No shutdown() of the listening socket here: the serve loop polls
  // with a bounded timeout, finishes whatever response it is writing,
  // and drains the accept backlog before returning — a scrape racing
  // this stop gets its bytes instead of a connection reset. A loopback
  // self-connect wakes the poll NOW, so join doesn't wait out the poll
  // interval (the connection lands in the drain pass and is closed).
  int Wake = socket(AF_INET, SOCK_STREAM, 0);
  if (Wake >= 0) {
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(BoundPort);
    connect(Wake, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
    close(Wake);
  }
  Server.join();
  close(ListenFd);
  ListenFd = -1;
  BoundPort = 0;
  Running.store(false);
}

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds until \p Deadline, clamped to [0, INT_MAX] for poll().
int millisUntil(Clock::time_point Deadline) {
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Deadline - Clock::now())
                  .count();
  if (Left <= 0)
    return 0;
  return static_cast<int>(std::min<int64_t>(Left, 1'000'000));
}

/// Deadline-bounded full write on a non-blocking socket. \returns false
/// when the peer stopped reading (timeout) or the socket died.
bool writeAllDeadline(int Fd, const char *Data, size_t Size,
                      Clock::time_point Deadline, bool &TimedOut) {
  TimedOut = false;
  while (Size) {
    ssize_t N = write(Fd, Data, Size);
    if (N > 0) {
      Data += N;
      Size -= static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      int Left = millisUntil(Deadline);
      if (Left == 0) {
        TimedOut = true;
        return false;
      }
      struct pollfd PFD = {Fd, POLLOUT, 0};
      if (poll(&PFD, 1, Left) < 0 && errno != EINTR)
        return false;
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}

const char *reasonPhrase(int Status) {
  switch (Status) {
  case 200: return "OK";
  case 201: return "Created";
  case 202: return "Accepted";
  case 204: return "No Content";
  case 400: return "Bad Request";
  case 404: return "Not Found";
  case 405: return "Method Not Allowed";
  case 408: return "Request Timeout";
  case 409: return "Conflict";
  case 413: return "Payload Too Large";
  case 429: return "Too Many Requests";
  case 500: return "Internal Server Error";
  case 503: return "Service Unavailable";
  default:  return "Status";
  }
}

std::string renderResponse(const HttpResponse &R) {
  std::string Out = "HTTP/1.1 " + std::to_string(R.Status) + " " +
                    reasonPhrase(R.Status) + "\r\n";
  Out += "Content-Type: " + R.ContentType + "\r\n";
  for (const auto &H : R.ExtraHeaders)
    Out += H.first + ": " + H.second + "\r\n";
  Out += "Content-Length: " + std::to_string(R.Body.size()) + "\r\n";
  Out += "Connection: close\r\n\r\n";
  Out += R.Body;
  return Out;
}

enum class RecvStatus { Ok, TimedOut, TooLarge, Dead, Malformed };

/// Reads one full request — headers, then exactly Content-Length body
/// bytes — off a non-blocking socket, under one absolute deadline and a
/// hard size cap. A client feeding one byte per poll interval (the
/// slowloris shape) burns exactly ReadTimeoutMillis of the plane's
/// time, never more.
RecvStatus recvRequest(int Fd, const ServerLimits &Limits, HttpRequest &Req) {
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(Limits.ReadTimeoutMillis);
  std::string Data;
  size_t HeaderEnd = std::string::npos;
  size_t Want = 0; // headers + body, known once headers are complete
  char Buf[4096];
  for (;;) {
    if (HeaderEnd == std::string::npos) {
      HeaderEnd = Data.find("\r\n\r\n");
      if (HeaderEnd != std::string::npos) {
        HeaderEnd += 4;
        // Sole framing header we honor; no chunked uploads here.
        size_t Len = 0;
        size_t Pos = 0;
        while (Pos < HeaderEnd) {
          size_t Eol = Data.find("\r\n", Pos);
          if (Eol == std::string::npos || Eol >= HeaderEnd)
            break;
          std::string Line = Data.substr(Pos, Eol - Pos);
          Pos = Eol + 2;
          size_t Colon = Line.find(':');
          if (Colon == std::string::npos)
            continue;
          std::string Name = Line.substr(0, Colon);
          std::transform(Name.begin(), Name.end(), Name.begin(),
                         [](unsigned char C) { return std::tolower(C); });
          if (Name != "content-length")
            continue;
          size_t V = Colon + 1;
          while (V < Line.size() && Line[V] == ' ')
            ++V;
          Len = 0;
          for (; V < Line.size() && Line[V] >= '0' && Line[V] <= '9'; ++V)
            Len = Len * 10 + static_cast<size_t>(Line[V] - '0');
        }
        Want = HeaderEnd + Len;
        if (Want > Limits.MaxRequestBytes)
          return RecvStatus::TooLarge;
      }
    }
    if (HeaderEnd != std::string::npos && Data.size() >= Want)
      break;
    if (Data.size() >= Limits.MaxRequestBytes)
      return RecvStatus::TooLarge;
    ssize_t N = read(Fd, Buf, sizeof(Buf));
    if (N > 0) {
      Data.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N == 0)
      return HeaderEnd == std::string::npos ? RecvStatus::Dead
                                            : RecvStatus::Malformed;
    if (errno == EINTR)
      continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK)
      return RecvStatus::Dead;
    int Left = millisUntil(Deadline);
    if (Left == 0)
      return RecvStatus::TimedOut;
    struct pollfd PFD = {Fd, POLLIN, 0};
    if (poll(&PFD, 1, Left) < 0 && errno != EINTR)
      return RecvStatus::Dead;
  }
  // Request line: METHOD SP TARGET SP VERSION.
  size_t Eol = Data.find("\r\n");
  std::string Line = Data.substr(0, Eol);
  size_t Sp1 = Line.find(' ');
  if (Sp1 == std::string::npos)
    return RecvStatus::Malformed;
  size_t Sp2 = Line.find(' ', Sp1 + 1);
  if (Sp2 == std::string::npos)
    return RecvStatus::Malformed;
  Req.Method = Line.substr(0, Sp1);
  Req.Target = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  Req.Body = Data.substr(HeaderEnd, Want - HeaderEnd);
  if (Req.Method.empty() || Req.Target.empty())
    return RecvStatus::Malformed;
  return RecvStatus::Ok;
}

} // namespace

void MetricsServer::serveClient(int Client) {
  // Non-blocking from the first byte: the deadlines below are the ONLY
  // thing bounding how long this client may hold the serving thread.
  fcntl(Client, F_SETFL, fcntl(Client, F_GETFL, 0) | O_NONBLOCK);

  HttpRequest Req;
  HttpResponse Resp;
  bool Handled = false;
  switch (recvRequest(Client, Limits, Req)) {
  case RecvStatus::Ok:
    break;
  case RecvStatus::TimedOut:
    Timeouts.fetch_add(1);
    Resp.Status = 408;
    Resp.Body = "request not received in time\n";
    Handled = true;
    break;
  case RecvStatus::TooLarge:
    Overlarge.fetch_add(1);
    Resp.Status = 413;
    Resp.Body = "request exceeds " + std::to_string(Limits.MaxRequestBytes) +
                " bytes\n";
    Handled = true;
    break;
  case RecvStatus::Malformed:
    Resp.Status = 400;
    Resp.Body = "malformed request\n";
    Handled = true;
    break;
  case RecvStatus::Dead:
    shutdown(Client, SHUT_RDWR);
    close(Client);
    return;
  }

  // Control-plane hook first (the sweep service mounts /jobs here),
  // then the built-in read-only endpoints.
  if (!Handled && Handler && Handler(Req, Resp))
    Handled = true;
  if (!Handled && Req.Method != "GET") {
    Resp.Status = 405;
    Resp.Body = "only GET is served here\n";
    Handled = true;
  }
  if (!Handled) {
    const std::string &Target = Req.Target;
    if (Target == "/metrics" || Target == "/") {
      std::lock_guard<std::mutex> Lock(SnapshotMutex);
      Resp.ContentType = "text/plain; version=0.0.4; charset=utf-8";
      Resp.Body = Snapshot;
      Scrapes.fetch_add(1);
    } else if (Target == "/metrics.jsonl") {
      std::lock_guard<std::mutex> Lock(SnapshotMutex);
      Resp.ContentType = "application/jsonlines";
      Resp.Body = JsonSnapshot;
      Scrapes.fetch_add(1);
    } else if (Target == "/trace.json") {
      std::lock_guard<std::mutex> Lock(SnapshotMutex);
      Resp.ContentType = "application/json";
      Resp.Body = TraceSnapshot;
      Scrapes.fetch_add(1);
    } else if (Target == "/healthz") {
      // Liveness, not snapshot state: answering at all means the
      // serving thread is up, which is the whole question. Not counted
      // as a scrape — probes would otherwise swamp the scrape counter.
      Resp.Body = "ok\n";
    } else {
      Resp.Status = 404;
      Resp.Body = "404 not found; valid endpoints: /metrics, "
                  "/metrics.jsonl, /trace.json, /healthz\n";
    }
  }

  std::string Response = renderResponse(Resp);
  Clock::time_point WriteDeadline =
      Clock::now() + std::chrono::milliseconds(Limits.WriteTimeoutMillis);
  bool WriteTimedOut = false;
  if (!writeAllDeadline(Client, Response.data(), Response.size(),
                        WriteDeadline, WriteTimedOut) &&
      WriteTimedOut)
    Timeouts.fetch_add(1);
  // shutdown BEFORE close: a forked worker (sweep::PoolHost) may hold a
  // duplicate of this fd from the instant of its fork, and close() alone
  // would leave the connection open — wedging a client that reads to
  // EOF. shutdown() acts on the socket itself, dup'd fds and all.
  shutdown(Client, SHUT_RDWR);
  close(Client);
}

void MetricsServer::serveLoop() {
  while (!StopRequested.load()) {
    struct pollfd PFD;
    PFD.fd = ListenFd;
    PFD.events = POLLIN;
    PFD.revents = 0;
    int PR = poll(&PFD, 1, /*timeout ms=*/200);
    if (PR <= 0)
      continue; // timeout (re-check the stop flag) or EINTR
    int Client = accept(ListenFd, nullptr, nullptr);
    if (Client < 0)
      continue;
    serveClient(Client);
  }
  // Drain: serve whatever connections the kernel already queued on the
  // listen backlog, so a request that raced stop() is answered rather
  // than reset when the socket closes.
  for (;;) {
    struct pollfd PFD;
    PFD.fd = ListenFd;
    PFD.events = POLLIN;
    PFD.revents = 0;
    if (poll(&PFD, 1, /*timeout ms=*/0) <= 0 || !(PFD.revents & POLLIN))
      break;
    int Client = accept(ListenFd, nullptr, nullptr);
    if (Client < 0)
      break;
    serveClient(Client);
  }
}

#else // !GRS_HAVE_SOCKETS

bool MetricsServer::start(uint16_t) { return false; }
void MetricsServer::stop() {}
void MetricsServer::serveLoop() {}
void MetricsServer::serveClient(int) {}

#endif // GRS_HAVE_SOCKETS
