//===- obs/Metrics.cpp - Fleet telemetry instruments ----------------------===//

#include "obs/Metrics.h"

#include "obs/RuntimeMetrics.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>

using namespace grs;
using namespace grs::obs;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram() : Histogram(Options()) {}

Histogram::Histogram(Options Opts) : Opts(Opts) {
  assert(Opts.Growth > 1.0 && "bucket growth factor must exceed 1");
  assert(Opts.FirstBucketUpper > 0.0 && "first bucket edge must be positive");
  assert(Opts.MaxBuckets >= 2 && "need at least one bucket plus overflow");
}

size_t Histogram::bucketIndex(double Value) const {
  double Upper = Opts.FirstBucketUpper;
  size_t K = 0;
  while (Value > Upper && K + 1 < Opts.MaxBuckets) {
    Upper *= Opts.Growth;
    ++K;
  }
  return K;
}

double Histogram::bucketUpperEdge(size_t K) const {
  if (K + 1 >= Opts.MaxBuckets)
    return std::numeric_limits<double>::infinity();
  return Opts.FirstBucketUpper * std::pow(Opts.Growth, static_cast<double>(K));
}

void Histogram::observe(double Value) {
  if (std::isnan(Value))
    return;
  size_t K = bucketIndex(Value);
  if (K >= Buckets.size())
    Buckets.resize(K + 1, 0);
  ++Buckets[K];
  if (Count == 0) {
    MinV = MaxV = Value;
  } else {
    MinV = std::min(MinV, Value);
    MaxV = std::max(MaxV, Value);
  }
  ++Count;
  Sum += Value;
}

double Histogram::quantile(double Q) const {
  if (Count == 0)
    return std::numeric_limits<double>::quiet_NaN();
  Q = std::min(std::max(Q, 0.0), 1.0);
  // Target rank in [0, Count]; walk the cumulative distribution to the
  // containing bucket and interpolate linearly inside it.
  double Rank = Q * static_cast<double>(Count);
  uint64_t Before = 0;
  for (size_t K = 0; K < Buckets.size(); ++K) {
    uint64_t InBucket = Buckets[K];
    if (InBucket == 0)
      continue;
    if (Rank <= static_cast<double>(Before + InBucket)) {
      double Lower =
          K == 0 ? MinV : Opts.FirstBucketUpper *
                              std::pow(Opts.Growth, static_cast<double>(K - 1));
      double Upper = bucketUpperEdge(K);
      // Clamp the bucket envelope to the observed extremes so quantiles
      // never leave [min, max] (and the overflow bucket stays finite).
      Lower = std::max(Lower, MinV);
      Upper = std::min(std::isinf(Upper) ? MaxV : Upper, MaxV);
      if (Upper < Lower)
        Upper = Lower;
      double Frac = (Rank - static_cast<double>(Before)) /
                    static_cast<double>(InBucket);
      return Lower + (Upper - Lower) * Frac;
    }
    Before += InBucket;
  }
  return MaxV;
}

//===----------------------------------------------------------------------===//
// Timeseries
//===----------------------------------------------------------------------===//

support::Series Timeseries::toSeries(std::string DisplayName) const {
  support::Series S;
  S.Name = std::move(DisplayName);
  S.Values = V;
  return S;
}

//===----------------------------------------------------------------------===//
// Phase tree
//===----------------------------------------------------------------------===//

uint64_t PhaseNode::childrenNs() const {
  uint64_t Total = 0;
  for (const std::unique_ptr<PhaseNode> &C : Children)
    Total += C->CumulativeNs;
  return Total;
}

PhaseNode *PhaseNode::child(const std::string &ChildName) {
  for (std::unique_ptr<PhaseNode> &C : Children)
    if (C->Name == ChildName)
      return C.get();
  Children.push_back(
      std::make_unique<PhaseNode>(PhaseNode{ChildName, 0, 0, {}}));
  return Children.back().get();
}

const PhaseNode *PhaseNode::find(const std::string &ChildName) const {
  for (const std::unique_ptr<PhaseNode> &C : Children)
    if (C->Name == ChildName)
      return C.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

Span &Span::operator=(Span &&Other) noexcept {
  if (this != &Other) {
    end();
    Owner = Other.Owner;
    Node = Other.Node;
    StartNs = Other.StartNs;
    Other.Owner = nullptr;
    Other.Node = nullptr;
  }
  return *this;
}

void Span::end() {
  if (!Owner)
    return;
  Owner->endSpan(Node, StartNs);
  Owner = nullptr;
  Node = nullptr;
}

//===----------------------------------------------------------------------===//
// InstrumentKey
//===----------------------------------------------------------------------===//

std::string InstrumentKey::str() const {
  if (Labels.empty())
    return Name;
  std::string Out = Name + "{";
  for (size_t I = 0; I < Labels.size(); ++I) {
    if (I)
      Out += ",";
    Out += Labels[I].first + "=\"" + Labels[I].second + "\"";
  }
  Out += "}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

static uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Registry::Registry(bool Enabled) : Enabled(Enabled), Clock(&steadyNowNs) {}

Registry::~Registry() = default;

void Registry::setClock(std::function<uint64_t()> NewClock) {
  Clock = std::move(NewClock);
}

namespace {
/// Find-or-create over one instrument map. Sorting labels at creation
/// makes {a,b} and {b,a} the same instrument.
template <typename T, typename... MakeArgs>
T *findOrCreate(std::map<InstrumentKey, std::unique_ptr<T>> &Map,
                const std::string &Name, const LabelList &Labels,
                MakeArgs &&...Args) {
  assert(!Name.empty() && "instrument name must be non-empty");
  InstrumentKey Key{Name, Labels};
  std::sort(Key.Labels.begin(), Key.Labels.end());
  auto [It, Inserted] = Map.try_emplace(std::move(Key));
  if (Inserted)
    It->second = std::make_unique<T>(std::forward<MakeArgs>(Args)...);
  return It->second.get();
}

template <typename T>
const T *findOnly(const std::map<InstrumentKey, std::unique_ptr<T>> &Map,
                  const std::string &Name, const LabelList &Labels) {
  InstrumentKey Key{Name, Labels};
  std::sort(Key.Labels.begin(), Key.Labels.end());
  auto It = Map.find(Key);
  return It == Map.end() ? nullptr : It->second.get();
}
} // namespace

Counter *Registry::counter(const std::string &Name, const LabelList &Labels) {
  if (!Enabled)
    return nullptr;
  return findOrCreate(Counters, Name, Labels);
}

Gauge *Registry::gauge(const std::string &Name, const LabelList &Labels) {
  if (!Enabled)
    return nullptr;
  return findOrCreate(Gauges, Name, Labels);
}

Histogram *Registry::histogram(const std::string &Name,
                               const LabelList &Labels,
                               Histogram::Options Opts) {
  if (!Enabled)
    return nullptr;
  return findOrCreate(Histograms, Name, Labels, Opts);
}

Timeseries *Registry::timeseries(const std::string &Name,
                                 const LabelList &Labels) {
  if (!Enabled)
    return nullptr;
  return findOrCreate(Series, Name, Labels);
}

const Counter *Registry::findCounter(const std::string &Name,
                                     const LabelList &Labels) const {
  return findOnly(Counters, Name, Labels);
}

const Gauge *Registry::findGauge(const std::string &Name,
                                 const LabelList &Labels) const {
  return findOnly(Gauges, Name, Labels);
}

const Histogram *Registry::findHistogram(const std::string &Name,
                                         const LabelList &Labels) const {
  return findOnly(Histograms, Name, Labels);
}

const Timeseries *Registry::findTimeseries(const std::string &Name,
                                           const LabelList &Labels) const {
  return findOnly(Series, Name, Labels);
}

uint64_t Registry::counterTotal(const std::string &Name) const {
  uint64_t Total = 0;
  for (const auto &[Key, C] : Counters)
    if (Key.Name == Name)
      Total += C->value();
  return Total;
}

Span Registry::span(const std::string &Phase) {
  if (!Enabled)
    return Span();
  PhaseNode *Node = Stack.back()->child(Phase);
  ++Node->Count;
  Stack.push_back(Node);
  return Span(this, Node, now());
}

void Registry::endSpan(PhaseNode *Node, uint64_t StartNs) {
  uint64_t End = now();
  Node->CumulativeNs += End > StartNs ? End - StartNs : 0;
  // Close any nested phases left open (Span destruction order normally
  // guarantees LIFO; be forgiving if an inner span outlived its parent).
  while (Stack.size() > 1) {
    PhaseNode *Top = Stack.back();
    Stack.pop_back();
    if (Top == Node)
      break;
  }
}
