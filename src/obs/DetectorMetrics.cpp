//===- obs/DetectorMetrics.cpp - Metrics-backed detector observer ---------===//

#include "obs/DetectorMetrics.h"

#include <algorithm>

using namespace grs;
using namespace grs::obs;
using race::EventKind;

DetectorObserver::DetectorObserver(Registry &Reg, const race::Detector *Det,
                                   race::EventObserver *Next)
    : Reg(Reg), Det(Det), Next(Next) {
  for (uint8_t K = 0; K < race::NumEventKinds; ++K)
    EventsByKind[K] = Reg.counter(
        "grs_race_events_total",
        {{"kind", race::eventKindName(static_cast<EventKind>(K))}});

  Reads = Reg.counter("grs_race_reads_total");
  Writes = Reg.counter("grs_race_writes_total");
  SyncOps = Reg.counter("grs_race_sync_ops_total");
  FastPathHits = Reg.counter("grs_race_same_epoch_fastpath_total");
  ReadPromotions = Reg.counter("grs_race_read_vc_promotions_total");
  EraserTransitions = Reg.counter("grs_race_eraser_transitions_total");
  ReportsEmitted = Reg.counter("grs_race_reports_emitted_total");
  ReportsSuppressed = Reg.counter("grs_race_reports_suppressed_total");
  ShadowCells = Reg.gauge("grs_race_shadow_cells");
  ShadowCellsPeak = Reg.gauge("grs_detector_shadow_cells_peak");
  ShadowVcWordsPeak = Reg.gauge("grs_detector_shadow_vc_words_peak");
  ShadowChainBytesPeak = Reg.gauge("grs_detector_shadow_chain_bytes_peak");
  GcRuns = Reg.counter("grs_detector_gc_runs_total");
  GcReclaimedCells = Reg.counter("grs_detector_gc_reclaimed_cells_total");
  GcReclaimedVcWords =
      Reg.counter("grs_detector_gc_reclaimed_vc_words_total");
  GcReclaimedChainBytes =
      Reg.counter("grs_detector_gc_reclaimed_chain_bytes_total");
  GcReclaimedSyncClocks =
      Reg.counter("grs_detector_gc_reclaimed_sync_clocks_total");
  GcTrimmedThreads = Reg.counter("grs_detector_gc_trimmed_threads_total");
  RetiredCells = Reg.gauge("grs_detector_retired_cells");
  Goroutines = Reg.gauge("grs_race_goroutines");
  VcMax = Reg.gauge("grs_race_vector_clock_max_size");
  VcMean = Reg.gauge("grs_race_vector_clock_mean_size");
  LockSetsInterned = Reg.gauge("grs_race_locksets_interned");
  LockSetInternHits = Reg.counter("grs_race_lockset_intern_hits_total");
  LockSetInternMisses = Reg.counter("grs_race_lockset_intern_misses_total");
  LockSetMemoHits = Reg.counter("grs_race_lockset_memo_hits_total");
  VcSizes = Reg.histogram("grs_race_vector_clock_size", {},
                          {/*FirstBucketUpper=*/1.0, /*Growth=*/2.0,
                           /*MaxBuckets=*/24});
}

void DetectorObserver::onTraceEvent(const race::TraceEvent &Event) {
  uint8_t K = static_cast<uint8_t>(Event.Kind);
  if (K < race::NumEventKinds)
    inc(EventsByKind[K]);
  if (Next)
    Next->onTraceEvent(Event);
}

void DetectorObserver::sync() {
  if (!Det)
    return;
  const race::DetectorStats &S = Det->stats();
  if (Reads) {
    Reads->inc(S.Reads - LastStats.Reads);
    Writes->inc(S.Writes - LastStats.Writes);
    SyncOps->inc(S.SyncOps - LastStats.SyncOps);
    FastPathHits->inc(S.SameEpochFastPath - LastStats.SameEpochFastPath);
    ReadPromotions->inc(S.ReadSharePromotions -
                        LastStats.ReadSharePromotions);
    EraserTransitions->inc(S.EraserTransitions - LastStats.EraserTransitions);
    ReportsEmitted->inc(S.RacesReported - LastStats.RacesReported);
    ReportsSuppressed->inc(S.ReportsSuppressed - LastStats.ReportsSuppressed);
    GcRuns->inc(S.GcRuns - LastStats.GcRuns);
    GcReclaimedCells->inc(S.GcCellsRetired - LastStats.GcCellsRetired);
    GcReclaimedVcWords->inc(S.GcVcWordsReclaimed -
                            LastStats.GcVcWordsReclaimed);
    GcReclaimedChainBytes->inc(S.GcChainBytesReclaimed -
                               LastStats.GcChainBytesReclaimed);
    GcReclaimedSyncClocks->inc(S.GcSyncClocksFreed -
                               LastStats.GcSyncClocksFreed);
    GcTrimmedThreads->inc(S.GcThreadsTrimmed - LastStats.GcThreadsTrimmed);
  }
  LastStats = S;
  set(ShadowCells, static_cast<double>(S.ShadowCells));
  set(Goroutines, static_cast<double>(Det->numGoroutines()));

  // Footprint peaks: max-merge with the gauge's current value so the
  // high-water mark survives rebind() across a pooled fleet — each
  // detector's peak competes, the fleet-wide peak wins. The detector-side
  // Peak* fields are themselves monotone high-water marks sampled before
  // every collection, so a scrape that straddles a GC cycle still
  // observes the pre-GC peak instead of the just-collected trough.
  race::ShadowFootprint F = Det->footprint();
  if (ShadowCellsPeak)
    ShadowCellsPeak->set(std::max(ShadowCellsPeak->value(),
                                  static_cast<double>(F.PeakShadowCells)));
  if (ShadowVcWordsPeak)
    ShadowVcWordsPeak->set(std::max(ShadowVcWordsPeak->value(),
                                    static_cast<double>(F.PeakVcWords)));
  if (ShadowChainBytesPeak)
    ShadowChainBytesPeak->set(std::max(ShadowChainBytesPeak->value(),
                                       static_cast<double>(F.PeakChainBytes)));
  set(RetiredCells, static_cast<double>(F.RetiredCells));

  size_t MaxSize = 0;
  size_t TotalSize = 0;
  size_t N = Det->numGoroutines();
  for (size_t T = 0; T < N; ++T) {
    size_t Size = Det->clockOf(static_cast<race::Tid>(T)).size();
    MaxSize = std::max(MaxSize, Size);
    TotalSize += Size;
    observe(VcSizes, static_cast<double>(Size));
  }
  set(VcMax, static_cast<double>(MaxSize));
  set(VcMean, N ? static_cast<double>(TotalSize) / static_cast<double>(N)
                : 0.0);

  const race::LockSetRegistry &LS = Det->lockSets();
  set(LockSetsInterned, static_cast<double>(LS.numInternedSets()));
  const race::LockSetStats &LStats = LS.stats();
  if (LockSetInternHits) {
    LockSetInternHits->inc(LStats.InternHits - LastLockStats.InternHits);
    LockSetInternMisses->inc(LStats.InternMisses -
                             LastLockStats.InternMisses);
    LockSetMemoHits->inc(LStats.MemoHits - LastLockStats.MemoHits);
  }
  LastLockStats = LStats;
}
