//===- obs/RuntimeMetrics.cpp - Cached rt::Runtime handle bundle ----------===//

#include "obs/RuntimeMetrics.h"

using namespace grs;
using namespace grs::obs;

RuntimeInstruments::RuntimeInstruments(Registry &Reg) : Reg(Reg) {
  CtxSwitches = Reg.counter("grs_rt_context_switches_total");
  Spawns = Reg.counter("grs_rt_goroutines_spawned_total");
  Blocks = Reg.counter("grs_rt_blocks_total");
  Yields = Reg.counter("grs_rt_yields_total");
  Steps = Reg.counter("grs_rt_steps_total");
  Selects = Reg.counter("grs_rt_selects_total");
  ChanSends = Reg.counter("grs_rt_chan_sends_total");
  ChanRecvs = Reg.counter("grs_rt_chan_recvs_total");
  ChanCloses = Reg.counter("grs_rt_chan_closes_total");
  SelectReady = Reg.histogram("grs_rt_select_ready_arms", {},
                              {/*FirstBucketUpper=*/1.0, /*Growth=*/2.0,
                               /*MaxBuckets=*/8});
}

Counter *RuntimeInstruments::preemptionsForSeed(uint64_t Seed) {
  auto It = PreemptBySeed.find(Seed);
  if (It != PreemptBySeed.end())
    return It->second;
  Counter *C = Reg.counter("grs_rt_preemptions_total",
                           {{"seed", std::to_string(Seed)}});
  PreemptBySeed.emplace(Seed, C);
  return C;
}

DetectorObserver *RuntimeInstruments::acquireObserver(
    const race::Detector *Det, race::EventObserver *Next) {
  if (Free.empty()) {
    Pool.push_back(std::make_unique<DetectorObserver>(Reg));
    Free.push_back(Pool.back().get());
  }
  DetectorObserver *Obs = Free.back();
  Free.pop_back();
  Obs->rebind(Det, Next);
  return Obs;
}

void RuntimeInstruments::releaseObserver(DetectorObserver *Obs) {
  // Detach from the dying Runtime's detector so a stale sync() cannot
  // dereference it, then recycle.
  Obs->rebind(nullptr, nullptr);
  Free.push_back(Obs);
}

RuntimeInstruments *Registry::runtimeInstruments() {
  if (!Enabled)
    return nullptr;
  if (!RtInstruments)
    RtInstruments = std::make_unique<RuntimeInstruments>(*this);
  return RtInstruments.get();
}
