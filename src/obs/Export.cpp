//===- obs/Export.cpp - Metric snapshot exporters -------------------------===//

#include "obs/Export.h"

#include "obs/Metrics.h"
#include "support/Render.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

using namespace grs;
using namespace grs::obs;

//===----------------------------------------------------------------------===//
// Deterministic number / string formatting
//===----------------------------------------------------------------------===//

namespace {

/// Formats \p V identically on every run: integers without a fraction,
/// everything else with up to 9 significant digits.
std::string num(double V) {
  if (std::isnan(V))
    return "NaN";
  if (std::isinf(V))
    return V > 0 ? "+Inf" : "-Inf";
  if (V == std::floor(V) && std::fabs(V) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", V);
    return Buf;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  return Buf;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string jsonLabels(const LabelList &Labels) {
  std::string Out = "{";
  for (size_t I = 0; I < Labels.size(); ++I) {
    if (I)
      Out += ",";
    Out += "\"" + jsonEscape(Labels[I].first) + "\":\"" +
           jsonEscape(Labels[I].second) + "\"";
  }
  return Out + "}";
}

/// Renders `name<suffix>{labels}` for histogram/_sum/_count companions.
std::string suffixed(const InstrumentKey &Key, const char *Suffix) {
  InstrumentKey K{Key.Name + Suffix, Key.Labels};
  return K.str();
}

/// Renders `{existing,le="edge"}` — merges the `le` bucket label into an
/// instrument's label list for Prometheus histogram lines.
std::string withLe(const InstrumentKey &Key, const std::string &Le) {
  std::string Out = Key.Name + "_bucket{";
  for (const auto &[K, V] : Key.Labels)
    Out += K + "=\"" + V + "\",";
  Out += "le=\"" + Le + "\"}";
  return Out;
}

void walkPhases(const PhaseNode &Node, const std::string &Path,
                const std::function<void(const PhaseNode &,
                                         const std::string &)> &Fn) {
  for (const std::unique_ptr<PhaseNode> &C : Node.Children) {
    std::string ChildPath = Path.empty() ? C->Name : Path + "/" + C->Name;
    Fn(*C, ChildPath);
    walkPhases(*C, ChildPath, Fn);
  }
}

/// Emits a `# TYPE` header the first time \p Name appears.
void typeHeader(std::ostream &OS, std::string &Last, const std::string &Name,
                const char *Kind) {
  if (Name == Last)
    return;
  OS << "# TYPE " << Name << " " << Kind << "\n";
  Last = Name;
}

} // namespace

//===----------------------------------------------------------------------===//
// Prometheus text exposition
//===----------------------------------------------------------------------===//

void obs::exportPrometheus(const Registry &R, std::ostream &OS) {
  std::string Last;
  for (const auto &[Key, C] : R.counters()) {
    typeHeader(OS, Last, Key.Name, "counter");
    OS << Key.str() << " " << C->value() << "\n";
  }
  for (const auto &[Key, G] : R.gauges()) {
    typeHeader(OS, Last, Key.Name, "gauge");
    OS << Key.str() << " " << num(G->value()) << "\n";
  }
  for (const auto &[Key, H] : R.histograms()) {
    typeHeader(OS, Last, Key.Name, "histogram");
    uint64_t Cumulative = 0;
    for (size_t K = 0; K < H->numBuckets(); ++K) {
      Cumulative += H->bucketCount(K);
      OS << withLe(Key, num(H->bucketUpperEdge(K))) << " " << Cumulative
         << "\n";
    }
    if (H->numBuckets() == 0 ||
        !std::isinf(H->bucketUpperEdge(H->numBuckets() - 1)))
      OS << withLe(Key, "+Inf") << " " << H->count() << "\n";
    OS << suffixed(Key, "_sum") << " " << num(H->sum()) << "\n";
    OS << suffixed(Key, "_count") << " " << H->count() << "\n";
  }
  for (const auto &[Key, S] : R.series()) {
    typeHeader(OS, Last, Key.Name, "gauge");
    OS << Key.str() << " " << num(S->back()) << "\n";
    OS << suffixed(Key, "_points") << " " << S->size() << "\n";
  }
  bool PhaseHeader = false;
  walkPhases(R.phaseRoot(), "",
             [&](const PhaseNode &Node, const std::string &Path) {
               if (!PhaseHeader) {
                 OS << "# TYPE grs_obs_phase_ns_total counter\n"
                    << "# TYPE grs_obs_phase_calls_total counter\n";
                 PhaseHeader = true;
               }
               OS << "grs_obs_phase_ns_total{path=\"" << Path << "\"} "
                  << Node.CumulativeNs << "\n";
               OS << "grs_obs_phase_calls_total{path=\"" << Path << "\"} "
                  << Node.Count << "\n";
             });
}

std::string obs::prometheusText(const Registry &R) {
  std::ostringstream OS;
  exportPrometheus(R, OS);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// JSON lines
//===----------------------------------------------------------------------===//

void obs::exportJsonLines(const Registry &R, std::ostream &OS) {
  for (const auto &[Key, C] : R.counters())
    OS << "{\"type\":\"counter\",\"name\":\"" << jsonEscape(Key.Name)
       << "\",\"labels\":" << jsonLabels(Key.Labels)
       << ",\"value\":" << C->value() << "}\n";
  for (const auto &[Key, G] : R.gauges())
    OS << "{\"type\":\"gauge\",\"name\":\"" << jsonEscape(Key.Name)
       << "\",\"labels\":" << jsonLabels(Key.Labels) << ",\"value\":"
       << num(G->value()) << "}\n";
  for (const auto &[Key, H] : R.histograms()) {
    OS << "{\"type\":\"histogram\",\"name\":\"" << jsonEscape(Key.Name)
       << "\",\"labels\":" << jsonLabels(Key.Labels)
       << ",\"count\":" << H->count() << ",\"sum\":" << num(H->sum())
       << ",\"min\":" << num(H->min()) << ",\"max\":" << num(H->max())
       << ",\"buckets\":[";
    for (size_t K = 0; K < H->numBuckets(); ++K) {
      if (K)
        OS << ",";
      OS << "{\"le\":\"" << num(H->bucketUpperEdge(K))
         << "\",\"count\":" << H->bucketCount(K) << "}";
    }
    OS << "]}\n";
  }
  for (const auto &[Key, S] : R.series()) {
    OS << "{\"type\":\"series\",\"name\":\"" << jsonEscape(Key.Name)
       << "\",\"labels\":" << jsonLabels(Key.Labels) << ",\"values\":[";
    const std::vector<double> &V = S->values();
    for (size_t I = 0; I < V.size(); ++I) {
      if (I)
        OS << ",";
      OS << num(V[I]);
    }
    OS << "]}\n";
  }
  walkPhases(R.phaseRoot(), "",
             [&](const PhaseNode &Node, const std::string &Path) {
               OS << "{\"type\":\"phase\",\"path\":\"" << jsonEscape(Path)
                  << "\",\"calls\":" << Node.Count
                  << ",\"cum_ns\":" << Node.CumulativeNs
                  << ",\"self_ns\":" << Node.selfNs() << "}\n";
             });
}

std::string obs::jsonLines(const Registry &R) {
  std::ostringstream OS;
  exportJsonLines(R, OS);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Phase table rendering
//===----------------------------------------------------------------------===//

void obs::renderPhaseTable(std::ostream &OS, const Registry &R,
                           const std::string &Title) {
  support::TextTable Table(Title);
  Table.setHeader({"Phase", "Calls", "Cum ms", "Self ms", "Self %"});
  uint64_t Total = R.phaseRoot().childrenNs();
  std::function<void(const PhaseNode &, size_t)> Emit =
      [&](const PhaseNode &Node, size_t Depth) {
        for (const std::unique_ptr<PhaseNode> &C : Node.Children) {
          double Share = Total
                             ? 100.0 * static_cast<double>(C->selfNs()) /
                                   static_cast<double>(Total)
                             : 0.0;
          Table.addRow({std::string(2 * Depth, ' ') + C->Name,
                        std::to_string(C->Count),
                        support::fixed(static_cast<double>(C->CumulativeNs) /
                                           1e6,
                                       3),
                        support::fixed(static_cast<double>(C->selfNs()) / 1e6,
                                       3),
                        support::fixed(Share, 1)});
          Emit(*C, Depth + 1);
        }
      };
  Emit(R.phaseRoot(), 0);
  Table.render(OS);
}
