//===- obs/Export.h - Metric snapshot exporters -----------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a Registry snapshot in two formats:
///
///  * Prometheus text exposition (`# TYPE` headers, `name{labels} value`
///    lines, histogram `_bucket`/`_sum`/`_count` expansion) — what a
///    production deployment of the §3.4 pipeline would expose on /metrics;
///  * JSON-lines (one instrument per line) — the diffable build artifact
///    CI uploads so perf trajectories can be compared across PRs.
///
/// Both outputs iterate instruments in sorted key order and never embed
/// timestamps, so a snapshot is a pure function of the instruments — the
/// basis of the ObsTest determinism property.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_OBS_EXPORT_H
#define GRS_OBS_EXPORT_H

#include <iosfwd>
#include <string>

namespace grs {
namespace obs {

class Registry;

/// Writes the Prometheus text exposition of \p R to \p OS. Timeseries
/// instruments export their latest value as a gauge plus a `_points`
/// count; phase-tree nodes export as `grs_obs_phase_ns_total` /
/// `grs_obs_phase_calls_total` counters labelled with their slash-joined
/// path.
void exportPrometheus(const Registry &R, std::ostream &OS);
std::string prometheusText(const Registry &R);

/// Writes one JSON object per line for every instrument of \p R
/// (counters, gauges, histograms with their buckets, full timeseries
/// value arrays, and phase nodes with cumulative/self split).
void exportJsonLines(const Registry &R, std::ostream &OS);
std::string jsonLines(const Registry &R);

/// Renders the phase tree as an indented support::TextTable (calls,
/// cumulative ms, self ms, self share) — the profiler half of the
/// bench_obs dashboard.
void renderPhaseTable(std::ostream &OS, const Registry &R,
                      const std::string &Title);

} // namespace obs
} // namespace grs

#endif // GRS_OBS_EXPORT_H
