//===- obs/DetectorMetrics.h - Metrics-backed detector observer -*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detector instrumentation that leaves the detector core untouched: a
/// race::EventObserver that counts every event of the detector's stream
/// into `grs_race_*` / `grs_rt_chan_*` instruments, and a sync() pass that
/// mirrors the aggregate DetectorStats (shadow-cell transitions, epoch→VC
/// promotions, report throttling), vector-clock sizes, and lock-set
/// interning efficiency into the registry.
///
/// The observer chains: a trace::TraceSink (or any other observer)
/// installed as Next still sees the identical event stream, so metrics and
/// trace capture compose on the single Detector::setEventObserver() seam.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_OBS_DETECTORMETRICS_H
#define GRS_OBS_DETECTORMETRICS_H

#include "obs/Metrics.h"
#include "race/Detector.h"
#include "race/Event.h"

namespace grs {
namespace obs {

/// See file comment.
class DetectorObserver final : public race::EventObserver {
public:
  /// \p Det may be null when only event counts are wanted (sync() then
  /// skips the stats mirror). \p Next receives every event after counting.
  explicit DetectorObserver(Registry &Reg,
                            const race::Detector *Det = nullptr,
                            race::EventObserver *Next = nullptr);

  void onTraceEvent(const race::TraceEvent &Event) override;

  /// Folds the detector's aggregate state into the registry: call after a
  /// run (or periodically) — per-event mirroring would defeat the plain-
  /// increment fast path. Counters are advanced by the delta since the
  /// previous sync(), so several observers (one per Runtime) sharing one
  /// registry aggregate fleet-wide instead of overwriting each other;
  /// gauges and the vector-clock size histogram reflect the state at each
  /// sync.
  void sync();

  void setDetector(const race::Detector *NewDet) { Det = NewDet; }

  /// Re-targets a pooled observer at a fresh detector/chain and resets
  /// the delta-sync state (a new detector's stats restart at zero, so
  /// stale LastStats would produce huge unsigned deltas). Used by
  /// RuntimeInstruments' observer pool; the resolved instrument handles
  /// are the whole point of reuse and are left untouched.
  void rebind(const race::Detector *NewDet, race::EventObserver *NewNext) {
    Det = NewDet;
    Next = NewNext;
    LastStats = race::DetectorStats();
    LastLockStats = race::LockSetStats();
  }

private:
  Registry &Reg;
  const race::Detector *Det;
  race::EventObserver *Next;

  /// Per-kind event counters, resolved once at construction.
  Counter *EventsByKind[race::NumEventKinds] = {nullptr};

  // sync() targets.
  Counter *Reads = nullptr;
  Counter *Writes = nullptr;
  Counter *SyncOps = nullptr;
  Counter *FastPathHits = nullptr;
  Counter *ReadPromotions = nullptr;
  Counter *EraserTransitions = nullptr;
  Counter *ReportsEmitted = nullptr;
  Counter *ReportsSuppressed = nullptr;
  Gauge *ShadowCells = nullptr;
  /// Shadow-memory footprint peaks (Detector::footprint()); max-merged
  /// with the existing gauge value at each sync so the high-water mark
  /// survives observer rebinds across a pooled fleet.
  Gauge *ShadowCellsPeak = nullptr;
  Gauge *ShadowVcWordsPeak = nullptr;
  Gauge *ShadowChainBytesPeak = nullptr;
  /// Shadow-state GC: reclaimed-to-date counters plus the compact
  /// retired-cell residue gauge.
  Counter *GcRuns = nullptr;
  Counter *GcReclaimedCells = nullptr;
  Counter *GcReclaimedVcWords = nullptr;
  Counter *GcReclaimedChainBytes = nullptr;
  Counter *GcReclaimedSyncClocks = nullptr;
  Counter *GcTrimmedThreads = nullptr;
  Gauge *RetiredCells = nullptr;
  Gauge *Goroutines = nullptr;
  Gauge *VcMax = nullptr;
  Gauge *VcMean = nullptr;
  Gauge *LockSetsInterned = nullptr;
  Counter *LockSetInternHits = nullptr;
  Counter *LockSetInternMisses = nullptr;
  Counter *LockSetMemoHits = nullptr;
  Histogram *VcSizes = nullptr;

  /// State at the previous sync(), for delta accumulation.
  race::DetectorStats LastStats;
  race::LockSetStats LastLockStats;
};

} // namespace obs
} // namespace grs

#endif // GRS_OBS_DETECTORMETRICS_H
