//===- obs/RuntimeMetrics.h - Cached rt::Runtime handle bundle --*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Amortized instrument registration for rt::Runtime. A sweep constructs
/// one Runtime per seed, and with metrics enabled each construction used
/// to re-run ~46 find-or-create map lookups plus a DetectorObserver
/// setup (~5.5 µs, measured in EXPERIMENTS.md) — pure overhead, since a
/// Registry hands out stable pointers and every Runtime resolves the
/// same names.
///
/// RuntimeInstruments is the once-per-registry resolution of that work:
/// the `grs_rt_*` handles are resolved at first use and cached on the
/// Registry, a per-seed memo serves the seed-labelled preemption
/// counter, and DetectorObservers (whose construction resolves the ~20
/// `grs_race_*` handles) are pooled — a fresh Runtime acquires one,
/// rebind()s it to its own detector, and releases it at destruction.
/// Pooling rather than a single shared observer keeps concurrent
/// Runtimes on one registry correct (each needs its own delta-sync
/// state); steady-state sweeps hit pool size 1.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_OBS_RUNTIMEMETRICS_H
#define GRS_OBS_RUNTIMEMETRICS_H

#include "obs/DetectorMetrics.h"
#include "obs/Metrics.h"

#include <map>
#include <memory>
#include <vector>

namespace grs {
namespace obs {

/// See file comment. Obtained via Registry::runtimeInstruments(); owned
/// by the Registry, so handle lifetime matches instrument lifetime.
class RuntimeInstruments {
public:
  explicit RuntimeInstruments(Registry &Reg);

  /// Unlabelled `grs_rt_*` handles, resolved once per registry.
  Counter *CtxSwitches = nullptr;
  Counter *Spawns = nullptr;
  Counter *Blocks = nullptr;
  Counter *Yields = nullptr;
  Counter *Steps = nullptr;
  Counter *Selects = nullptr;
  Counter *ChanSends = nullptr;
  Counter *ChanRecvs = nullptr;
  Counter *ChanCloses = nullptr;
  Histogram *SelectReady = nullptr;

  /// The seed-labelled `grs_rt_preemptions_total{seed=...}` counter,
  /// memoized so sweeps that revisit a seed skip the label rendering and
  /// registry lookup.
  Counter *preemptionsForSeed(uint64_t Seed);

  /// Takes an observer from the pool (or builds the pool's first on
  /// demand) and points it at \p Det / \p Next with fresh delta state.
  DetectorObserver *acquireObserver(const race::Detector *Det,
                                    race::EventObserver *Next);

  /// Returns \p Obs to the pool for the next Runtime.
  void releaseObserver(DetectorObserver *Obs);

  /// Observers ever constructed (not pool occupancy); the ObsTest
  /// amortization regression pins this at 1 for serial Runtime churn.
  size_t observersCreated() const { return Pool.size(); }

private:
  Registry &Reg;
  std::map<uint64_t, Counter *> PreemptBySeed;
  std::vector<std::unique_ptr<DetectorObserver>> Pool;
  std::vector<DetectorObserver *> Free;
};

} // namespace obs
} // namespace grs

#endif // GRS_OBS_RUNTIMEMETRICS_H
