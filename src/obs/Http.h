//===- obs/Http.h - Minimal Prometheus /metrics endpoint --------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free HTTP server for the Prometheus text exposition
/// (obs/Export.h): one blocking-socket thread, loopback only, so a real
/// Prometheus can scrape a long-running sweep — e.g. sweep::isolated
/// grinding a multi-hour fleet — instead of waiting for the end-of-run
/// snapshot dump.
///
/// Threading model: obs::Registry is single-threaded by design, so the
/// serving thread NEVER touches a registry. The owner of the registry
/// calls publish()/publishRegistry() at its own serial points (round
/// barriers, day boundaries); the server hands out the most recently
/// published snapshot under a mutex. A scrape therefore observes a
/// consistent snapshot that may be one publish interval stale — exactly
/// Prometheus's own sampling model.
///
/// Protocol support is deliberately minimal: any request whose target is
/// `/metrics` (or `/`) gets `200 text/plain; version=0.0.4` with the
/// snapshot, `/metrics.jsonl` gets the JSON-lines snapshot (the same
/// diffable rendering CI uploads as a build artifact, for tooling that
/// would rather not parse the exposition format), `/trace.json` gets the
/// most recently published flight-recorder export (obs/Timeline.h's
/// Chrome trace JSON — point chrome://tracing or Perfetto at the URL),
/// and `/healthz` answers 200 "ok" while the serving thread is alive (a
/// liveness probe that works even before the first publish). Anything
/// else gets a 404 whose body lists the valid endpoints. Connections are
/// `Connection: close` one-shots — scrape traffic, not serving traffic.
///
/// Shutdown drains: stop() signals the serving thread and then lets it
/// finish the in-flight response and accept whatever already sits in the
/// listen backlog before joining — a scrape racing shutdown gets its
/// bytes, not a connection reset.
///
/// Control-plane hosting: a handler installed with setHandler() (before
/// start()) sees every parsed request FIRST and may claim it — the sweep
/// service (svc/Service.h) mounts its /jobs API this way without owning
/// sockets. Requests are parsed properly for that purpose: method,
/// target, headers, and a Content-Length-delimited body. The parser is
/// hardened against rude clients, because one serving thread means one
/// slowloris holds the whole plane hostage: a connection that has not
/// delivered its complete request within ServerLimits::ReadTimeoutMillis
/// is answered 408 and dropped, one that will not accept response bytes
/// within WriteTimeoutMillis is dropped mid-write, and one whose request
/// (headers + declared body) exceeds MaxRequestBytes is answered 413
/// without ever buffering the excess.
///
/// IntervalPublisher wraps the owner-driven publish cadence: the owner
/// calls tick(Reg) at its natural serial points (per seed, per round)
/// and the helper re-renders only when the configured interval elapsed,
/// so publish cost stays amortized no matter how hot the loop is.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_OBS_HTTP_H
#define GRS_OBS_HTTP_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace grs {
namespace obs {

class Registry;

/// One parsed request, as a handler sees it.
struct HttpRequest {
  std::string Method; ///< uppercase as sent: "GET", "POST", ...
  std::string Target; ///< raw request target, query string included
  std::string Body;   ///< exactly Content-Length bytes ("" when absent)
};

/// What a handler fills in. Reason phrases for the usual statuses are
/// supplied by the server; ExtraHeaders is for the occasional
/// Retry-After, not for overriding the framing headers (Content-Length
/// and Connection: close are always the server's).
struct HttpResponse {
  int Status = 200;
  std::string ContentType = "text/plain; charset=utf-8";
  std::string Body;
  std::vector<std::pair<std::string, std::string>> ExtraHeaders;
};

/// First-look request hook. Runs ON the serving thread — block here and
/// nothing else is served. Return true to claim the request (the filled
/// response is sent); false falls through to the built-in endpoints.
using HttpHandler = std::function<bool(const HttpRequest &, HttpResponse &)>;

/// Per-connection hardening knobs (see file comment).
struct ServerLimits {
  /// Full request (headers + body) must arrive within this; else 408.
  uint64_t ReadTimeoutMillis = 5'000;
  /// Response bytes must drain within this; else the socket is dropped.
  uint64_t WriteTimeoutMillis = 5'000;
  /// Hard cap on headers + declared body; else 413.
  uint64_t MaxRequestBytes = 1 << 20;
};

class MetricsServer {
public:
  MetricsServer() = default;
  ~MetricsServer();

  MetricsServer(const MetricsServer &) = delete;
  MetricsServer &operator=(const MetricsServer &) = delete;

  /// Binds 127.0.0.1:\p Port (0 picks an ephemeral port, see port()) and
  /// starts the serving thread. \returns false when the bind fails or
  /// the platform has no sockets; the process runs on unobserved either
  /// way — metrics serving must never be load-bearing.
  bool start(uint16_t Port = 0);

  /// Stops the serving thread and closes the socket. Idempotent; also
  /// run by the destructor.
  void stop();

  bool running() const { return Running.load(); }

  /// The bound port (useful with start(0)); 0 when not running.
  uint16_t port() const { return BoundPort; }

  /// Publishes \p Text as the snapshot subsequent /metrics scrapes
  /// receive. Thread-safe against the serving thread and other
  /// publishers.
  void publish(std::string Text);

  /// Publishes \p Text as the snapshot /metrics.jsonl serves.
  void publishJson(std::string Text);

  /// Publishes \p Text as the document /trace.json serves — by contract
  /// a Chrome trace-event JSON export (Timeline::chromeTraceJson()).
  /// Until the first publish the endpoint serves an empty-but-valid
  /// `{"traceEvents":[]}` document.
  void publishTrace(std::string Text);

  /// Renders BOTH formats of \p Reg — prometheusText for /metrics and
  /// jsonLines for /metrics.jsonl — and publishes them atomically
  /// enough that each endpoint is individually consistent. Call from
  /// the thread that owns \p Reg (Registry is not thread-safe); the
  /// renders happen on the caller's thread, only the hand-off is
  /// locked.
  void publishRegistry(const Registry &Reg);

  /// Scrapes served so far across both endpoints (tests / diagnostics).
  uint64_t scrapeCount() const { return Scrapes.load(); }

  /// Installs the control-plane hook. Call BEFORE start(): the serving
  /// thread reads it unlocked.
  void setHandler(HttpHandler H) { Handler = std::move(H); }

  /// Replaces the hardening knobs. Call BEFORE start().
  void setLimits(ServerLimits L) { Limits = L; }

  /// Connections dropped for blowing ReadTimeoutMillis (slowloris) or
  /// WriteTimeoutMillis (unread response).
  uint64_t timeoutCount() const { return Timeouts.load(); }

  /// Requests refused with 413 for exceeding MaxRequestBytes.
  uint64_t overlargeCount() const { return Overlarge.load(); }

private:
  void serveLoop();
  void serveClient(int Client);

  std::thread Server;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopRequested{false};
  std::atomic<uint64_t> Scrapes{0};
  std::atomic<uint64_t> Timeouts{0};
  std::atomic<uint64_t> Overlarge{0};
  HttpHandler Handler;
  ServerLimits Limits;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::mutex SnapshotMutex;
  std::string Snapshot;
  std::string JsonSnapshot;
  std::string TraceSnapshot = "{\"traceEvents\":[]}";
};

/// Owner-driven publish-on-interval helper. The registry owner calls
/// tick(Reg) wherever convenient — every seed, every round — and the
/// helper republishes to the server only when IntervalMillis elapsed
/// since the last publish, so rendering cost is bounded by the interval
/// rather than the call rate. Time is injectable for determinism: tests
/// (and deterministic hosts) supply a fake clock via setClock and the
/// helper never consults the wall clock.
class IntervalPublisher {
public:
  IntervalPublisher(MetricsServer &Server, uint64_t IntervalMillis)
      : Server(Server), IntervalMillis(IntervalMillis) {}

  /// Replaces the time source (milliseconds, monotone). The default is
  /// std::chrono::steady_clock.
  void setClock(std::function<uint64_t()> Clock) {
    this->Clock = std::move(Clock);
  }

  /// Publishes \p Reg if at least the interval passed since the last
  /// publish (the first tick always publishes). \returns true when a
  /// publish happened.
  bool tick(const Registry &Reg);

  /// Unconditionally publishes \p Reg and resets the interval.
  void force(const Registry &Reg);

  /// Publishes performed so far.
  uint64_t publishCount() const { return Publishes; }

private:
  uint64_t now() const;

  MetricsServer &Server;
  uint64_t IntervalMillis;
  std::function<uint64_t()> Clock;
  bool Started = false;
  uint64_t LastPublishMs = 0;
  uint64_t Publishes = 0;
};

} // namespace obs
} // namespace grs

#endif // GRS_OBS_HTTP_H
