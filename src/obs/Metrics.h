//===- obs/Metrics.h - Fleet telemetry instruments --------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer: a registry of named instruments threaded
/// through every subsystem (runtime scheduler, detector, deployment
/// pipeline, trace replay), so the operational numbers the paper's §3.4-
/// §3.5 deployment reported — daily counters, overhead distributions,
/// dedup ratios — come from first-class instruments instead of bench-local
/// arithmetic.
///
/// Design contract (see DESIGN.md §7):
///
///  * Instrument names follow `grs_<layer>_<name>` with Prometheus-style
///    suffixes (`_total` for counters); optional key/value labels
///    distinguish streams sharing a name (e.g. `{seed="7"}`).
///  * The single-threaded fast path is a plain field increment: call sites
///    cache `Counter*`/`Gauge*`/`Histogram*` handles once and bump them
///    directly.
///  * A disabled registry hands out null handles, and the `obs::inc`/
///    `obs::set`/`obs::observe` helpers reduce to one predictable branch —
///    the zero-overhead-when-disabled contract, verified by
///    `bench_obs --overhead` and the bench_detector baseline check.
///  * Everything is deterministic except wall-clock phase timings; tests
///    inject a fake clock via Registry::setClock() so even span trees are
///    bit-reproducible (same seed ⇒ identical exported snapshot).
///
//===----------------------------------------------------------------------===//

#ifndef GRS_OBS_METRICS_H
#define GRS_OBS_METRICS_H

#include "support/Stats.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace grs {
namespace obs {

/// Key/value labels attached to an instrument, e.g. {{"seed", "7"}}.
using LabelList = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
public:
  void inc(uint64_t N = 1) { V += N; }
  /// Overwrites the value; for mirroring an externally maintained
  /// monotone count (e.g. race::DetectorStats) into the registry.
  void mirror(uint64_t Value) { V = Value; }
  uint64_t value() const { return V; }

private:
  uint64_t V = 0;
};

/// A value that goes up and down (sizes, ratios, last-seen values).
class Gauge {
public:
  void set(double Value) { V = Value; }
  void add(double Delta) { V += Delta; }
  double value() const { return V; }

private:
  double V = 0.0;
};

/// Exponential-bucket histogram: bucket 0 covers (-inf, FirstBucketUpper],
/// bucket K covers (Upper(K-1), Upper(K)] with Upper(K) growing by a
/// constant factor; the final bucket absorbs overflow. Tracks count, sum,
/// min, and max exactly; quantiles interpolate within a bucket (agreement
/// with support::quantile is bounded by bucket resolution and tested in
/// ObsTest).
class Histogram {
public:
  struct Options {
    /// Upper edge of the first bucket.
    double FirstBucketUpper = 1.0;
    /// Ratio between consecutive bucket edges; must be > 1.
    double Growth = 2.0;
    /// Cap on allocated buckets (the last one is the overflow bucket).
    size_t MaxBuckets = 48;
  };

  Histogram();
  explicit Histogram(Options Opts);

  /// Records one sample. NaN samples are rejected (ignored), matching the
  /// support::RunningStat contract.
  void observe(double Value);

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0.0; }
  double min() const { return Count ? MinV : 0.0; }
  double max() const { return Count ? MaxV : 0.0; }

  /// Allocated buckets (grows lazily with observed range).
  size_t numBuckets() const { return Buckets.size(); }
  uint64_t bucketCount(size_t K) const { return Buckets[K]; }
  /// Upper edge of bucket \p K; +infinity for the overflow bucket.
  double bucketUpperEdge(size_t K) const;

  /// The \p Q quantile (0 <= Q <= 1) by linear interpolation inside the
  /// containing bucket, clamped to the exact [min, max] envelope. NaN when
  /// empty.
  double quantile(double Q) const;

private:
  size_t bucketIndex(double Value) const;

  Options Opts;
  std::vector<uint64_t> Buckets;
  uint64_t Count = 0;
  double Sum = 0.0;
  double MinV = 0.0;
  double MaxV = 0.0;
};

/// An append-only per-tick series (one point per deployment day, per
/// sweep round, ...). The registry analogue of support::Series, which the
/// Figure 3/4 benches render directly from the instruments.
class Timeseries {
public:
  void append(double Value) { V.push_back(Value); }
  const std::vector<double> &values() const { return V; }
  size_t size() const { return V.size(); }
  double back() const { return V.empty() ? 0.0 : V.back(); }

  /// Copies into a renderable support::Series named \p DisplayName.
  support::Series toSeries(std::string DisplayName) const;

private:
  std::vector<double> V;
};

/// One node of the hierarchical phase profile: cumulative time includes
/// children; self time is cumulative minus children. Children keep
/// first-entry order (deterministic under a deterministic clock).
struct PhaseNode {
  std::string Name;
  uint64_t Count = 0;
  uint64_t CumulativeNs = 0;
  std::vector<std::unique_ptr<PhaseNode>> Children;

  uint64_t childrenNs() const;
  uint64_t selfNs() const {
    uint64_t C = childrenNs();
    return CumulativeNs > C ? CumulativeNs - C : 0;
  }
  /// Finds or creates the child named \p ChildName.
  PhaseNode *child(const std::string &ChildName);
  /// Finds the child named \p ChildName, or nullptr (const lookup).
  const PhaseNode *find(const std::string &ChildName) const;
};

class Registry;
class RuntimeInstruments;

/// RAII handle for one timed phase. Obtained from Registry::span(); the
/// phase ends at destruction (or an explicit end()). Nested spans build
/// the phase tree. A default-constructed or disabled-registry Span is a
/// no-op that never reads the clock.
class Span {
public:
  Span() = default;
  Span(Span &&Other) noexcept { *this = std::move(Other); }
  Span &operator=(Span &&Other) noexcept;
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  ~Span() { end(); }

  /// Ends the phase now; idempotent.
  void end();

private:
  friend class Registry;
  Span(Registry *Owner, PhaseNode *Node, uint64_t StartNs)
      : Owner(Owner), Node(Node), StartNs(StartNs) {}

  Registry *Owner = nullptr;
  PhaseNode *Node = nullptr;
  uint64_t StartNs = 0;
};

/// Identity of one instrument: name plus sorted label list.
struct InstrumentKey {
  std::string Name;
  LabelList Labels;

  bool operator<(const InstrumentKey &Other) const {
    if (Name != Other.Name)
      return Name < Other.Name;
    return Labels < Other.Labels;
  }

  /// Prometheus-style rendering: `name{k="v",...}` (bare name when no
  /// labels).
  std::string str() const;
};

/// The instrument registry. Owns every instrument it hands out; returned
/// pointers are stable for the registry's lifetime, so call sites cache
/// them once and the per-event cost is a plain increment. A registry
/// constructed disabled returns nullptr from every factory, making all
/// instrumentation collapse to null-checks (see the obs::inc helpers).
///
/// Not thread-safe by design: the runtime serializes all goroutines onto
/// one OS thread, and parallel sweeps give each shard its own registry.
class Registry {
public:
  explicit Registry(bool Enabled = true);
  ~Registry();

  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  bool enabled() const { return Enabled; }

  //===------------------------------------------------------------------===//
  // Instrument factories (find-or-create; nullptr when disabled)
  //===------------------------------------------------------------------===//

  Counter *counter(const std::string &Name, const LabelList &Labels = {});
  Gauge *gauge(const std::string &Name, const LabelList &Labels = {});
  Histogram *histogram(const std::string &Name, const LabelList &Labels = {},
                       Histogram::Options Opts = Histogram::Options());
  Timeseries *timeseries(const std::string &Name,
                         const LabelList &Labels = {});

  //===------------------------------------------------------------------===//
  // Lookup (nullptr when absent; for benches/tests reading instruments)
  //===------------------------------------------------------------------===//

  const Counter *findCounter(const std::string &Name,
                             const LabelList &Labels = {}) const;
  const Gauge *findGauge(const std::string &Name,
                         const LabelList &Labels = {}) const;
  const Histogram *findHistogram(const std::string &Name,
                                 const LabelList &Labels = {}) const;
  const Timeseries *findTimeseries(const std::string &Name,
                                   const LabelList &Labels = {}) const;

  /// Sum of \p Name counters across all label sets (e.g. total preemptions
  /// over every seed).
  uint64_t counterTotal(const std::string &Name) const;

  /// The cached `grs_rt_*` handle bundle (see obs/RuntimeMetrics.h),
  /// built lazily on first use so rt::Runtime construction amortizes
  /// instrument registration to one resolution per registry. nullptr
  /// when the registry is disabled.
  RuntimeInstruments *runtimeInstruments();

  //===------------------------------------------------------------------===//
  // Phase profiler
  //===------------------------------------------------------------------===//

  /// Opens a timed phase nested under the currently open phase. The
  /// returned Span closes it.
  Span span(const std::string &Phase);

  const PhaseNode &phaseRoot() const { return Root; }

  /// Clock used for span timings, in nanoseconds. Defaults to
  /// std::chrono::steady_clock; tests inject a deterministic counter so
  /// exported snapshots are bit-reproducible.
  void setClock(std::function<uint64_t()> Clock);

  //===------------------------------------------------------------------===//
  // Enumeration (sorted by InstrumentKey; used by obs/Export)
  //===------------------------------------------------------------------===//

  const std::map<InstrumentKey, std::unique_ptr<Counter>> &counters() const {
    return Counters;
  }
  const std::map<InstrumentKey, std::unique_ptr<Gauge>> &gauges() const {
    return Gauges;
  }
  const std::map<InstrumentKey, std::unique_ptr<Histogram>> &
  histograms() const {
    return Histograms;
  }
  const std::map<InstrumentKey, std::unique_ptr<Timeseries>> &series() const {
    return Series;
  }

private:
  friend class Span;
  void endSpan(PhaseNode *Node, uint64_t StartNs);
  uint64_t now() const { return Clock(); }

  bool Enabled;
  std::function<uint64_t()> Clock;
  std::unique_ptr<RuntimeInstruments> RtInstruments;
  std::map<InstrumentKey, std::unique_ptr<Counter>> Counters;
  std::map<InstrumentKey, std::unique_ptr<Gauge>> Gauges;
  std::map<InstrumentKey, std::unique_ptr<Histogram>> Histograms;
  std::map<InstrumentKey, std::unique_ptr<Timeseries>> Series;
  PhaseNode Root{"<root>", 0, 0, {}};
  std::vector<PhaseNode *> Stack{&Root};
};

//===----------------------------------------------------------------------===//
// Null-safe helpers: the instrumentation idiom. `obs::inc(C)` on a null
// handle (disabled or absent registry) is a single predictable branch.
//===----------------------------------------------------------------------===//

inline void inc(Counter *C, uint64_t N = 1) {
  if (C)
    C->inc(N);
}

inline void set(Gauge *G, double Value) {
  if (G)
    G->set(Value);
}

inline void observe(Histogram *H, double Value) {
  if (H)
    H->observe(Value);
}

inline void append(Timeseries *S, double Value) {
  if (S)
    S->append(Value);
}

} // namespace obs
} // namespace grs

#endif // GRS_OBS_METRICS_H
