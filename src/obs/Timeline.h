//===- obs/Timeline.h - Flight-recorder execution timelines -----*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet's flight recorder: per-track ring buffers of structured
/// events (span begin/end, instants, counter samples) answering the
/// question aggregate instruments cannot — "which slot/worker/phase was
/// running WHEN". The paper's deployment (§3) was operated by watching
/// it run; obs/Metrics.h gives the totals, this gives the timeline.
///
/// Design contract (see DESIGN.md §12):
///
///  * A Timeline constructed disabled hands out nullptr tracks, and the
///    `obs::tlBegin`/`tlEnd`/`tlInstant`/`tlCounter` helpers (plus the
///    RAII TimelineScope) reduce to one predictable branch — the same
///    zero-overhead-when-disabled contract as obs::Registry, verified by
///    `bench_timeline --smoke`.
///  * Recording NEVER consumes scheduler or fault-injection RNG and never
///    perturbs a schedule: a run with tracing enabled is bit-identical
///    (fingerprints, checkpoint journals) to the same run without it.
///  * Each track is single-producer: one worker/supervisor/child owns its
///    track and records without synchronization. Track creation and
///    cross-process adoption are mutex-guarded, so handing tracks out to
///    a worker pool is safe.
///  * Tracks are bounded rings (flight-recorder semantics): when full,
///    the oldest events are overwritten and counted as dropped rather
///    than growing without bound on a six-month sweep.
///  * The clock is injectable (shared by all tracks; must be monotone and
///    thread-safe) so exported traces are bit-reproducible in tests.
///
/// Export targets: Chrome trace-event JSON (load the file in
/// chrome://tracing or https://ui.perfetto.dev) and a compact terminal
/// summary. For `sweep::isolated`, child-side events cross the pipe as
/// kind-tagged frames (sweep/Checkpoint.h FrameKind) encoded by
/// encodeTrackChunk() and are stitched into the parent timeline with
/// pid/slot attribution by adoptTrackChunk().
///
//===----------------------------------------------------------------------===//

#ifndef GRS_OBS_TIMELINE_H
#define GRS_OBS_TIMELINE_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace grs {
namespace obs {

/// Event kinds, mapping 1:1 onto Chrome trace-event phases
/// (B / E / i / C).
enum class TimelineEventKind : uint8_t {
  SpanBegin = 0,
  SpanEnd = 1,
  Instant = 2,
  Counter = 3,
};

/// One recorded event. Strings are interned per track (NameId/ArgsId
/// index the track's string table); Args is a pre-rendered JSON object
/// fragment (`"slot":3,"seed":7`) pasted verbatim into the export's
/// `"args":{...}`.
struct TimelineEvent {
  TimelineEventKind Kind = TimelineEventKind::Instant;
  uint64_t TsNs = 0;
  uint32_t NameId = 0;
  uint32_t ArgsId = 0; ///< 0 = no args (id 0 is always "").
  double Value = 0.0;  ///< Counter samples only.
};

class Timeline;

/// One lane of the timeline: a bounded ring of events owned by exactly
/// one producer (a sweep worker, a supervisor thread, a forked child).
/// Obtained from Timeline::track(); never null-checked by callers — the
/// null-safe helpers below do that.
class TimelineTrack {
public:
  /// Opens a span. Spans nest; end() closes the innermost open one.
  void begin(const std::string &Name, const std::string &Args = "");
  /// Closes the innermost open span (no-op when none is open).
  void end();
  /// A point event.
  void instant(const std::string &Name, const std::string &Args = "");
  /// A counter sample (exported as a Chrome "C" event).
  void counter(const std::string &Name, double Value);

  const std::string &name() const { return TrackName; }
  uint32_t pid() const { return Pid; }
  uint32_t tid() const { return Tid; }

  /// Events recorded over the track's lifetime, including dropped ones.
  uint64_t totalEvents() const { return Total; }
  /// Events overwritten by the ring (flight-recorder loss).
  uint64_t droppedEvents() const { return Total > Retained ? Total - Retained
                                                           : 0; }
  /// Retained events, oldest first.
  size_t size() const { return static_cast<size_t>(Retained); }
  const TimelineEvent &event(size_t I) const;
  const std::string &str(uint32_t Id) const { return Strings[Id]; }

private:
  friend class Timeline;
  TimelineTrack(Timeline *Owner, std::string Name, uint32_t Pid, uint32_t Tid,
                size_t Capacity);

  void record(TimelineEventKind Kind, uint32_t NameId, uint32_t ArgsId,
              double Value, uint64_t TsNs);
  uint32_t intern(const std::string &S);
  /// Appends an already-timestamped event (cross-process adoption; never
  /// reads the clock).
  void import(TimelineEventKind Kind, uint64_t TsNs, const std::string &Name,
              const std::string &Args, double Value);

  Timeline *Owner;
  std::string TrackName;
  uint32_t Pid;
  uint32_t Tid;
  size_t Capacity;
  std::vector<TimelineEvent> Ring;
  uint64_t Total = 0;    ///< Events ever recorded.
  uint64_t Retained = 0; ///< Events currently in the ring.
  uint64_t Flushed = 0;  ///< Chunk cursor: events already encoded.
  uint64_t ImportedDropped = 0; ///< Dropped-before-arrival (adopted tracks).
  std::vector<std::string> Strings{""};
  std::map<std::string, uint32_t> StringIds;
  std::vector<uint32_t> OpenSpans; ///< NameIds of open begins.
};

/// The flight recorder. Owns its tracks; returned pointers are stable
/// for the timeline's lifetime. Constructed disabled, every track() call
/// returns nullptr and all recording collapses to null checks.
class Timeline {
public:
  struct Options {
    bool Enabled = true;
    /// Ring capacity per track, in events.
    size_t TrackCapacity = 1 << 16;
  };

  explicit Timeline(bool Enabled = true);
  explicit Timeline(Options Opts);

  Timeline(const Timeline &) = delete;
  Timeline &operator=(const Timeline &) = delete;

  bool enabled() const { return Opts.Enabled; }

  /// Replaces the event clock (nanoseconds; must be monotone and safe to
  /// call from any recording thread). Default: std::chrono::steady_clock.
  /// Tests inject a counter so exports are bit-reproducible.
  void setClock(std::function<uint64_t()> Clock);

  /// Finds or creates the track named \p Name under process \p Pid
  /// (0 = this process in the export). nullptr when disabled. Safe to
  /// call from any thread; the returned track must then be used by one
  /// producer only.
  TimelineTrack *track(const std::string &Name, uint32_t Pid = 0);

  /// Track enumeration, creation order (export / tests).
  size_t numTracks() const;
  const TimelineTrack &trackAt(size_t I) const;
  /// Sum of droppedEvents() over all tracks.
  uint64_t droppedTotal() const;

  //===------------------------------------------------------------------===//
  // Export
  //===------------------------------------------------------------------===//

  /// The whole recording as Chrome trace-event JSON — one
  /// `{"traceEvents":[...]}` document loadable in chrome://tracing and
  /// Perfetto. Deterministic under a deterministic clock.
  std::string chromeTraceJson() const;

  /// Compact terminal summary: per track, event counts and a per-span
  /// duration profile.
  void renderSummary(std::ostream &OS) const;

  //===------------------------------------------------------------------===//
  // Cross-process stitching (sweep::isolated)
  //===------------------------------------------------------------------===//

  /// Appends \p Track's events since the last flush to \p Out as a
  /// self-contained chunk (strings inline, timestamps preserved) and
  /// advances the track's flush cursor. Used by the forked child to
  /// forward its recording over the result pipe.
  static void encodeTrackChunk(std::vector<uint8_t> &Out,
                               TimelineTrack &Track);

  /// Decodes one chunk at \p Pos and stitches it into this timeline as
  /// (or appended to) the track named `\p TrackPrefix + <chunk name>`
  /// with process id \p Pid — the parent-side half of child forwarding.
  /// Never reads the clock. \returns false (position unchanged) on a
  /// malformed chunk.
  bool adoptTrackChunk(const uint8_t *Data, size_t Size, size_t &Pos,
                       uint32_t Pid, const std::string &TrackPrefix);

private:
  friend class TimelineTrack;
  uint64_t now() const { return Clock(); }

  Options Opts;
  std::function<uint64_t()> Clock;
  mutable std::mutex TracksMutex;
  std::vector<std::unique_ptr<TimelineTrack>> Tracks;
};

//===----------------------------------------------------------------------===//
// Null-safe helpers: the recording idiom. Every call on a nullptr track
// (disabled or absent timeline) is a single predictable branch and never
// reads the clock.
//===----------------------------------------------------------------------===//

inline void tlBegin(TimelineTrack *T, const std::string &Name,
                    const std::string &Args = "") {
  if (T)
    T->begin(Name, Args);
}

inline void tlEnd(TimelineTrack *T) {
  if (T)
    T->end();
}

inline void tlInstant(TimelineTrack *T, const std::string &Name,
                      const std::string &Args = "") {
  if (T)
    T->instant(Name, Args);
}

inline void tlCounter(TimelineTrack *T, const std::string &Name,
                      double Value) {
  if (T)
    T->counter(Name, Value);
}

/// RAII span: begin at construction, end at destruction (or an explicit
/// end()). A TimelineScope over a nullptr track is a complete no-op.
class TimelineScope {
public:
  TimelineScope() = default;
  TimelineScope(TimelineTrack *T, const std::string &Name,
                const std::string &Args = "")
      : T(T) {
    if (T)
      T->begin(Name, Args);
  }
  TimelineScope(TimelineScope &&Other) noexcept : T(Other.T) {
    Other.T = nullptr;
  }
  TimelineScope &operator=(TimelineScope &&Other) noexcept {
    if (this != &Other) {
      end();
      T = Other.T;
      Other.T = nullptr;
    }
    return *this;
  }
  TimelineScope(const TimelineScope &) = delete;
  TimelineScope &operator=(const TimelineScope &) = delete;
  ~TimelineScope() { end(); }

  void end() {
    if (T) {
      T->end();
      T = nullptr;
    }
  }

private:
  TimelineTrack *T = nullptr;
};

} // namespace obs
} // namespace grs

#endif // GRS_OBS_TIMELINE_H
