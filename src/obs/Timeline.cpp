//===- obs/Timeline.cpp - Flight-recorder execution timelines -------------===//

#include "obs/Timeline.h"

#include "support/Varint.h"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>

using namespace grs;
using namespace grs::obs;

//===----------------------------------------------------------------------===//
// TimelineTrack
//===----------------------------------------------------------------------===//

TimelineTrack::TimelineTrack(Timeline *Owner, std::string Name, uint32_t Pid,
                             uint32_t Tid, size_t Capacity)
    : Owner(Owner), TrackName(std::move(Name)), Pid(Pid), Tid(Tid),
      Capacity(Capacity ? Capacity : 1) {
  StringIds.emplace("", 0);
}

uint32_t TimelineTrack::intern(const std::string &S) {
  auto [It, Inserted] =
      StringIds.try_emplace(S, static_cast<uint32_t>(Strings.size()));
  if (Inserted)
    Strings.push_back(S);
  return It->second;
}

const TimelineEvent &TimelineTrack::event(size_t I) const {
  uint64_t Absolute = (Total - Retained) + I;
  return Ring[static_cast<size_t>(Absolute % Capacity)];
}

void TimelineTrack::record(TimelineEventKind Kind, uint32_t NameId,
                           uint32_t ArgsId, double Value, uint64_t TsNs) {
  TimelineEvent E;
  E.Kind = Kind;
  E.TsNs = TsNs;
  E.NameId = NameId;
  E.ArgsId = ArgsId;
  E.Value = Value;
  if (Retained < Capacity) {
    Ring.push_back(E);
    ++Retained;
  } else {
    // Flight-recorder overwrite: the oldest event gives way.
    Ring[static_cast<size_t>(Total % Capacity)] = E;
  }
  ++Total;
}

void TimelineTrack::begin(const std::string &Name, const std::string &Args) {
  uint32_t NameId = intern(Name);
  uint32_t ArgsId = Args.empty() ? 0 : intern(Args);
  OpenSpans.push_back(NameId);
  record(TimelineEventKind::SpanBegin, NameId, ArgsId, 0.0, Owner->now());
}

void TimelineTrack::end() {
  if (OpenSpans.empty())
    return;
  uint32_t NameId = OpenSpans.back();
  OpenSpans.pop_back();
  record(TimelineEventKind::SpanEnd, NameId, 0, 0.0, Owner->now());
}

void TimelineTrack::instant(const std::string &Name, const std::string &Args) {
  record(TimelineEventKind::Instant, intern(Name),
         Args.empty() ? 0 : intern(Args), 0.0, Owner->now());
}

void TimelineTrack::counter(const std::string &Name, double Value) {
  record(TimelineEventKind::Counter, intern(Name), 0, Value, Owner->now());
}

void TimelineTrack::import(TimelineEventKind Kind, uint64_t TsNs,
                           const std::string &Name, const std::string &Args,
                           double Value) {
  record(Kind, intern(Name), Args.empty() ? 0 : intern(Args), Value, TsNs);
}

//===----------------------------------------------------------------------===//
// Timeline
//===----------------------------------------------------------------------===//

static uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Timeline::Timeline(bool Enabled) : Timeline(Options{Enabled, 1 << 16}) {}

Timeline::Timeline(Options Opts) : Opts(Opts), Clock(steadyNowNs) {}

void Timeline::setClock(std::function<uint64_t()> Clock) {
  this->Clock = Clock ? std::move(Clock) : steadyNowNs;
}

TimelineTrack *Timeline::track(const std::string &Name, uint32_t Pid) {
  if (!Opts.Enabled)
    return nullptr;
  std::lock_guard<std::mutex> Lock(TracksMutex);
  for (auto &T : Tracks)
    if (T->name() == Name && T->pid() == Pid)
      return T.get();
  uint32_t Tid = static_cast<uint32_t>(Tracks.size()) + 1;
  Tracks.push_back(std::unique_ptr<TimelineTrack>(
      new TimelineTrack(this, Name, Pid, Tid, Opts.TrackCapacity)));
  return Tracks.back().get();
}

size_t Timeline::numTracks() const {
  std::lock_guard<std::mutex> Lock(TracksMutex);
  return Tracks.size();
}

const TimelineTrack &Timeline::trackAt(size_t I) const {
  std::lock_guard<std::mutex> Lock(TracksMutex);
  return *Tracks[I];
}

uint64_t Timeline::droppedTotal() const {
  std::lock_guard<std::mutex> Lock(TracksMutex);
  uint64_t Dropped = 0;
  for (const auto &T : Tracks)
    Dropped += T->droppedEvents() + T->ImportedDropped;
  return Dropped;
}

//===----------------------------------------------------------------------===//
// Chrome trace-event export
//===----------------------------------------------------------------------===//

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Hex[8];
        std::snprintf(Hex, sizeof(Hex), "\\u%04x", C);
        Out += Hex;
      } else {
        Out += C;
      }
    }
  }
}

/// Nanoseconds -> the trace format's microsecond timestamps, printed
/// with fixed sub-microsecond precision so exports are deterministic
/// under a deterministic clock.
void appendTs(std::string &Out, uint64_t TsNs) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64 ".%03u", TsNs / 1000,
                static_cast<unsigned>(TsNs % 1000));
  Out += Buf;
}

void appendValue(std::string &Out, double V) {
  if (std::isfinite(V) && V == std::floor(V) && std::fabs(V) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    Out += Buf;
  } else {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.9g", V);
    Out += Buf;
  }
}

} // namespace

std::string Timeline::chromeTraceJson() const {
  std::lock_guard<std::mutex> Lock(TracksMutex);
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  auto Comma = [&] {
    if (!First)
      Out += ",\n";
    else
      Out += "\n";
    First = false;
  };
  for (const auto &T : Tracks) {
    Comma();
    Out += "{\"ph\":\"M\",\"pid\":" + std::to_string(T->pid()) +
           ",\"tid\":" + std::to_string(T->tid()) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    appendEscaped(Out, T->name());
    Out += "\"}}";
  }
  for (const auto &T : Tracks) {
    for (size_t I = 0; I < T->size(); ++I) {
      const TimelineEvent &E = T->event(I);
      Comma();
      Out += "{\"ph\":\"";
      switch (E.Kind) {
      case TimelineEventKind::SpanBegin:
        Out += 'B';
        break;
      case TimelineEventKind::SpanEnd:
        Out += 'E';
        break;
      case TimelineEventKind::Instant:
        Out += 'i';
        break;
      case TimelineEventKind::Counter:
        Out += 'C';
        break;
      }
      Out += "\",\"pid\":" + std::to_string(T->pid()) +
             ",\"tid\":" + std::to_string(T->tid()) + ",\"ts\":";
      appendTs(Out, E.TsNs);
      Out += ",\"name\":\"";
      appendEscaped(Out, T->str(E.NameId));
      Out += '"';
      if (E.Kind == TimelineEventKind::Instant)
        Out += ",\"s\":\"t\"";
      if (E.Kind == TimelineEventKind::Counter) {
        Out += ",\"args\":{\"value\":";
        appendValue(Out, E.Value);
        Out += '}';
      } else if (E.ArgsId) {
        Out += ",\"args\":{" + T->str(E.ArgsId) + '}';
      }
      Out += '}';
    }
  }
  Out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

void Timeline::renderSummary(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(TracksMutex);
  uint64_t Events = 0, Dropped = 0;
  for (const auto &T : Tracks) {
    Events += T->totalEvents();
    Dropped += T->droppedEvents() + T->ImportedDropped;
  }
  OS << "flight recorder: " << Tracks.size() << " tracks, " << Events
     << " events";
  if (Dropped)
    OS << " (" << Dropped << " dropped)";
  OS << "\n";
  for (const auto &T : Tracks) {
    OS << "  [pid " << T->pid() << "] " << T->name() << ": "
       << T->totalEvents() << " events";
    if (T->droppedEvents() + T->ImportedDropped)
      OS << ", " << (T->droppedEvents() + T->ImportedDropped) << " dropped";
    OS << "\n";
    // Per-name span profile over the retained window, first-seen order.
    struct Prof {
      uint32_t NameId;
      uint64_t Count = 0;
      uint64_t Ns = 0;
    };
    std::vector<Prof> Spans;
    std::map<uint32_t, size_t> SpanIndex;
    std::vector<std::pair<uint32_t, uint64_t>> Open; // (NameId, BeginTs)
    std::vector<Prof> Instants;
    std::map<uint32_t, size_t> InstantIndex;
    for (size_t I = 0; I < T->size(); ++I) {
      const TimelineEvent &E = T->event(I);
      switch (E.Kind) {
      case TimelineEventKind::SpanBegin:
        Open.emplace_back(E.NameId, E.TsNs);
        break;
      case TimelineEventKind::SpanEnd: {
        if (Open.empty())
          break; // the begin fell off the ring
        auto [NameId, BeginTs] = Open.back();
        Open.pop_back();
        auto [It, Inserted] = SpanIndex.try_emplace(NameId, Spans.size());
        if (Inserted)
          Spans.push_back({NameId, 0, 0});
        Prof &P = Spans[It->second];
        ++P.Count;
        P.Ns += E.TsNs > BeginTs ? E.TsNs - BeginTs : 0;
        break;
      }
      case TimelineEventKind::Instant: {
        auto [It, Inserted] =
            InstantIndex.try_emplace(E.NameId, Instants.size());
        if (Inserted)
          Instants.push_back({E.NameId, 0, 0});
        ++Instants[It->second].Count;
        break;
      }
      case TimelineEventKind::Counter:
        break;
      }
    }
    for (const Prof &P : Spans)
      OS << "      " << T->str(P.NameId) << ": " << P.Count << " spans, "
         << (P.Ns / 1000) << " us\n";
    for (const Prof &P : Instants)
      OS << "      " << T->str(P.NameId) << ": " << P.Count << " instants\n";
  }
}

//===----------------------------------------------------------------------===//
// Cross-process chunks
//
// chunk := name-len varint, name bytes, pid varint, dropped varint,
//          num-events varint, event*
// event := kind varint, ts varint, name-len varint, name bytes,
//          args-len varint, args bytes, [value-bits varint when Counter]
//
// Strings travel inline (no shared table), so a chunk is self-contained
// and the parent can decode it with no per-child state.
//===----------------------------------------------------------------------===//

namespace {

void putString(std::vector<uint8_t> &Out, const std::string &S) {
  support::putVarint(Out, S.size());
  Out.insert(Out.end(), S.begin(), S.end());
}

bool readString(const uint8_t *Data, size_t Size, size_t &Pos,
                std::string &S) {
  uint64_t Len = 0;
  if (support::readVarint(Data, Size, Pos, Len) != support::VarintError::Ok ||
      Len > Size - Pos)
    return false;
  S.assign(reinterpret_cast<const char *>(Data) + Pos,
           static_cast<size_t>(Len));
  Pos += static_cast<size_t>(Len);
  return true;
}

} // namespace

void Timeline::encodeTrackChunk(std::vector<uint8_t> &Out,
                                TimelineTrack &Track) {
  uint64_t Oldest = Track.Total - Track.Retained;
  uint64_t Start = Track.Flushed > Oldest ? Track.Flushed : Oldest;
  putString(Out, Track.TrackName);
  support::putVarint(Out, Track.Pid);
  support::putVarint(Out, Start - Track.Flushed); // lost to the ring
  support::putVarint(Out, Track.Total - Start);
  for (uint64_t I = Start; I < Track.Total; ++I) {
    const TimelineEvent &E =
        Track.Ring[static_cast<size_t>(I % Track.Capacity)];
    support::putVarint(Out, static_cast<uint64_t>(E.Kind));
    support::putVarint(Out, E.TsNs);
    putString(Out, Track.Strings[E.NameId]);
    putString(Out, Track.Strings[E.ArgsId]);
    if (E.Kind == TimelineEventKind::Counter) {
      uint64_t Bits = 0;
      static_assert(sizeof(Bits) == sizeof(E.Value));
      std::memcpy(&Bits, &E.Value, sizeof(Bits));
      support::putVarint(Out, Bits);
    }
  }
  Track.Flushed = Track.Total;
}

bool Timeline::adoptTrackChunk(const uint8_t *Data, size_t Size, size_t &Pos,
                               uint32_t Pid, const std::string &TrackPrefix) {
  size_t P = Pos;
  std::string Name;
  uint64_t ChunkPid = 0, Dropped = 0, NumEvents = 0;
  if (!readString(Data, Size, P, Name) ||
      support::readVarint(Data, Size, P, ChunkPid) !=
          support::VarintError::Ok ||
      support::readVarint(Data, Size, P, Dropped) !=
          support::VarintError::Ok ||
      support::readVarint(Data, Size, P, NumEvents) !=
          support::VarintError::Ok)
    return false;
  struct Decoded {
    TimelineEventKind Kind;
    uint64_t TsNs;
    std::string Name;
    std::string Args;
    double Value;
  };
  std::vector<Decoded> Events;
  Events.reserve(static_cast<size_t>(NumEvents));
  for (uint64_t I = 0; I < NumEvents; ++I) {
    uint64_t Kind = 0, Ts = 0;
    Decoded D;
    if (support::readVarint(Data, Size, P, Kind) !=
            support::VarintError::Ok ||
        Kind > static_cast<uint64_t>(TimelineEventKind::Counter) ||
        support::readVarint(Data, Size, P, Ts) != support::VarintError::Ok ||
        !readString(Data, Size, P, D.Name) ||
        !readString(Data, Size, P, D.Args))
      return false;
    D.Kind = static_cast<TimelineEventKind>(Kind);
    D.TsNs = Ts;
    D.Value = 0.0;
    if (D.Kind == TimelineEventKind::Counter) {
      uint64_t Bits = 0;
      if (support::readVarint(Data, Size, P, Bits) !=
          support::VarintError::Ok)
        return false;
      std::memcpy(&D.Value, &Bits, sizeof(D.Value));
    }
    Events.push_back(std::move(D));
  }
  // Decoded cleanly: commit. (track() also takes TracksMutex, so the
  // find-or-create is safe against sibling supervisor threads; the
  // appends are safe because each child pid is owned by one supervisor.)
  Pos = P;
  TimelineTrack *T = track(TrackPrefix + Name, Pid);
  if (!T)
    return true; // disabled timeline: drop the chunk, it decoded fine
  T->ImportedDropped += Dropped;
  for (const Decoded &D : Events)
    T->import(D.Kind, D.TsNs, D.Name, D.Args, D.Value);
  return true;
}
