//===- census/FleetCensus.cpp - Runtime concurrency census -----------------===//

#include "census/FleetCensus.h"

#include <algorithm>
#include <cmath>

using namespace grs;
using namespace grs::census;

const char *grs::census::fleetLangName(FleetLang Language) {
  switch (Language) {
  case FleetLang::Go:
    return "Go";
  case FleetLang::Java:
    return "Java";
  case FleetLang::Python:
    return "Python";
  case FleetLang::NodeJS:
    return "NodeJS";
  }
  return "unknown";
}

LanguageProfile LanguageProfile::forLanguage(FleetLang Language) {
  LanguageProfile P;
  switch (Language) {
  case FleetLang::NodeJS:
    // "NodeJS typically has 16 threads" — a tight band: the event loop
    // plus the default libuv pool.
    P.Components = {{1.0, 16, 0.15}};
    P.MaxLevel = 64;
    P.FleetProcesses = 7'000;
    break;
  case FleetLang::Python:
    // "less than 16-32 threads"; GIL keeps pools small.
    P.Components = {{0.6, 14, 0.3}, {0.4, 26, 0.3}};
    P.MaxLevel = 128;
    P.FleetProcesses = 19'000;
    break;
  case FleetLang::Java:
    // "often has between 128-1024 threads; about 10% of cases have 4096
    // threads, and 7% have 8192" — median 256.
    P.Components = {{0.65, 170, 0.60},
                    {0.18, 900, 0.45},
                    {0.10, 4096, 0.12},
                    {0.07, 8192, 0.10}};
    P.MaxLevel = 16384;
    P.FleetProcesses = 39'500;
    break;
  case FleetLang::Go:
    // "typically, Go processes have 1024-4096 goroutines; about 6% of
    // processes contain 8102 goroutines. The max reaches at about 130K"
    // — median 2048.
    P.Components = {{0.48, 1900, 0.50},
                    {0.25, 3200, 0.40},
                    {0.15, 700, 0.55},
                    {0.06, 8102, 0.12},
                    {0.06, 24000, 0.90}};
    P.MaxLevel = 131072;
    P.FleetProcesses = 130'000;
    break;
  }
  return P;
}

double LanguageProfile::sample(support::Rng &Rng) const {
  std::vector<double> Weights;
  Weights.reserve(Components.size());
  for (const Component &C : Components)
    Weights.push_back(C.Weight);
  const Component &C = Components[Rng.weightedIndex(Weights)];
  double Level = C.MedianLevel * std::exp(C.Sigma * Rng.gaussian());
  return std::clamp(Level, MinLevel, MaxLevel);
}

std::vector<CensusSeries> grs::census::runCensus(uint64_t Seed,
                                                 double Scale) {
  support::Rng Root(Seed);
  std::vector<CensusSeries> Result;
  for (FleetLang Language : {FleetLang::Go, FleetLang::Java,
                             FleetLang::Python, FleetLang::NodeJS}) {
    LanguageProfile Profile = LanguageProfile::forLanguage(Language);
    size_t Count = std::max<size_t>(
        100, static_cast<size_t>(
                 static_cast<double>(Profile.FleetProcesses) * Scale));
    support::Rng Rng =
        Root.fork(static_cast<uint64_t>(Language) + 1);

    CensusSeries Series;
    Series.Language = Language;
    Series.Levels.reserve(Count);
    for (size_t I = 0; I < Count; ++I)
      Series.Levels.push_back(Profile.sample(Rng));

    Series.Cdf = support::empiricalCdf(Series.Levels);
    Series.Median = support::quantile(Series.Levels, 0.5);
    Series.P90 = support::quantile(Series.Levels, 0.9);
    Series.Max = support::quantile(Series.Levels, 1.0);
    Result.push_back(std::move(Series));
  }
  return Result;
}
