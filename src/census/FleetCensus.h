//===- census/FleetCensus.h - Runtime concurrency census --------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §2 fleet scan behind Figure 1: "we scanned our data centers and
/// counted the number of threads in the service instances (processes)
/// running on each machine" — 130K Go, 39.5K Java, 19K Python, and 7K
/// NodeJS processes, yielding a cumulative frequency distribution of
/// per-process concurrency.
///
/// The fleet is proprietary, so each language gets a concurrency-level
/// distribution model calibrated to the paper's reported quantiles:
/// medians 2048 (Go) / 256 (Java) / 16 (Python) / 16 (NodeJS); Java tails
/// at 4096 (10%) and 8192 (7%); Go typically 1024-4096, ~6% at 8192, and
/// a maximum near 130K goroutines. Sampling the models regenerates the
/// CDF curves; the headline "Go exposes ~8x more runtime concurrency
/// than Java" is then read off the medians.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_CENSUS_FLEETCENSUS_H
#define GRS_CENSUS_FLEETCENSUS_H

#include "support/Rng.h"
#include "support/Stats.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grs {
namespace census {

/// The four fleet languages of Figure 1.
enum class FleetLang : uint8_t { Go, Java, Python, NodeJS };

const char *fleetLangName(FleetLang Language);

/// Mixture-of-lognormals concurrency model for one language: each
/// component is (weight, median, sigma) in log2 space, clamped to
/// [MinLevel, MaxLevel].
struct LanguageProfile {
  struct Component {
    double Weight;
    double MedianLevel; ///< Concurrency level at the component median.
    double Sigma;       ///< Spread in natural-log space.
  };
  std::vector<Component> Components;
  double MinLevel = 1;
  double MaxLevel = 1 << 20;
  size_t FleetProcesses = 0; ///< Paper's scanned process count.

  /// Paper-calibrated profile for \p Language.
  static LanguageProfile forLanguage(FleetLang Language);

  /// Samples one process's concurrency level.
  double sample(support::Rng &Rng) const;
};

/// One language's census result.
struct CensusSeries {
  FleetLang Language = FleetLang::Go;
  std::vector<double> Levels;                ///< Raw samples.
  std::vector<support::CdfPoint> Cdf;        ///< Figure 1 curve.
  double Median = 0;
  double P90 = 0;
  double Max = 0;
};

/// Runs the fleet scan simulation. \p Scale shrinks the per-language
/// process counts (1.0 = the paper's full 195.5K processes).
std::vector<CensusSeries> runCensus(uint64_t Seed, double Scale = 1.0);

} // namespace census
} // namespace grs

#endif // GRS_CENSUS_FLEETCENSUS_H
