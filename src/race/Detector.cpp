//===- race/Detector.cpp - Dynamic data race detector ---------------------===//

#include "race/Detector.h"

#include <algorithm>
#include <cassert>

using namespace grs::race;

//===----------------------------------------------------------------------===//
// Internal state
//===----------------------------------------------------------------------===//

struct Detector::ThreadState {
  VectorClock C;
  CallChain Chain;
  LockSetId HeldWrite = LockSetRegistry::EmptyId;
  LockSetId HeldAll = LockSetRegistry::EmptyId;
  bool Finished = false;
  /// Finished AND clock dominated by the min clock: clock and chain
  /// storage released (every live thread already covers the clock, so a
  /// join from it is a guaranteed no-op).
  bool Trimmed = false;
};

struct Detector::ShadowCell {
  // FastTrack happens-before state.
  Epoch WriteEpoch;
  CallChain WriteChain;
  bool ReadShared = false;
  Epoch ReadEpoch;
  CallChain ReadChain;
  VectorClock ReadVC;
  std::unordered_map<Tid, CallChain> SharedChains;

  // Eraser lock-set state.
  EraserState State = EraserState::Virgin;
  Tid Owner = InvalidTid;
  LockSetId Candidate = LockSetRegistry::EmptyId;
  AccessSnapshot LastAccess;
  bool HaveLastAccess = false;

  // Report throttling and labelling.
  bool ReportedHb = false;
  bool ReportedLs = false;
  std::string Name;
};

Detector::Detector(DetectorOptions Opts) : Opts(Opts) {}

Detector::~Detector() = default;

Detector::ThreadState &Detector::thread(Tid T) {
  assert(T < Threads.size() && "unknown goroutine id");
  return Threads[T];
}

const Detector::ThreadState &Detector::thread(Tid T) const {
  assert(T < Threads.size() && "unknown goroutine id");
  return Threads[T];
}

Detector::ShadowCell &Detector::shadowCell(Addr A) {
  auto [It, Inserted] = Shadow.try_emplace(A);
  if (Inserted) {
    Stats.ShadowCells = Shadow.size();
    // Rebuild from the compact residue if this address was retired by
    // the GC: the ReportOnce flags, representation flag, and variable
    // name are exactly the state a never-collected cell would still
    // carry that a future access could observe.
    if (!Retired.empty()) {
      auto R = Retired.find(A);
      if (R != Retired.end()) {
        It->second.ReadShared = R->second.ReadShared;
        It->second.ReportedHb = R->second.ReportedHb;
        It->second.ReportedLs = R->second.ReportedLs;
        It->second.Name = Interner.text(R->second.NameId);
        Retired.erase(R);
      }
    }
  }
  return It->second;
}

ShadowFootprint Detector::footprint() const {
  ShadowFootprint F;
  F.ShadowCells = Shadow.size();
  // Trimmed goroutines hold no clock or chain, so walking the live and
  // finished-untrimmed lists covers every nonzero contribution without
  // touching each ThreadState ever created (notePeaks() calls this
  // before every collection; an all-threads walk would make long
  // fork/join workloads pay O(total goroutines) per collection).
  for (const std::vector<Tid> *List : {&LiveThreads, &UntrimmedFinished}) {
    for (Tid T : *List) {
      const ThreadState &TS = Threads[T];
      F.VcWords += TS.C.size();
      F.ChainBytes += TS.Chain.size() * sizeof(Frame);
    }
  }
  for (const VectorClock &VC : SyncClocks)
    F.VcWords += VC.size();
  for (const auto &[A, Cell] : Shadow) {
    (void)A;
    F.VcWords += Cell.ReadVC.size();
    F.ChainBytes +=
        (Cell.WriteChain.size() + Cell.ReadChain.size()) * sizeof(Frame);
    for (const auto &[T, Chain] : Cell.SharedChains) {
      (void)T;
      F.ChainBytes += Chain.size() * sizeof(Frame);
    }
  }
  F.RetiredCells = Retired.size();
  // Lazy max-merge: a scrape between collections may observe a live
  // footprint above the last pre-GC sample.
  PeakCells = std::max(PeakCells, F.ShadowCells);
  PeakVcWords = std::max(PeakVcWords, F.VcWords);
  PeakChainBytes = std::max(PeakChainBytes, F.ChainBytes);
  F.PeakShadowCells = PeakCells;
  F.PeakVcWords = PeakVcWords;
  F.PeakChainBytes = PeakChainBytes;
  F.ReclaimedCells = Stats.GcCellsRetired;
  F.ReclaimedVcWords = Stats.GcVcWordsReclaimed;
  F.ReclaimedChainBytes = Stats.GcChainBytesReclaimed;
  return F;
}

//===----------------------------------------------------------------------===//
// Event stream
//===----------------------------------------------------------------------===//

void Detector::observe(EventKind Kind, Tid T, uint64_t A, uint64_t B,
                       bool Flag, const std::string *Str1,
                       const std::string *Str2) {
  if (!Observer_)
    return;
  TraceEvent Event;
  Event.Kind = Kind;
  Event.T = T;
  Event.A = A;
  Event.B = B;
  Event.Flag = Flag;
  Event.Str1 = Str1;
  Event.Str2 = Str2;
  Observer_->onTraceEvent(Event);
}

void Detector::annotate(EventKind Kind, Tid T, uint64_t A, bool Flag,
                        const std::string *Name) {
  observe(Kind, T, A, /*B=*/0, Flag, Name);
}

//===----------------------------------------------------------------------===//
// Goroutine lifecycle
//===----------------------------------------------------------------------===//

Tid Detector::allocThread() {
  Tid T = static_cast<Tid>(Threads.size());
  Threads.emplace_back();
  // Every goroutine starts at epoch (T, 1) so a fresh epoch is never
  // mistaken for the all-zero bottom.
  Threads[T].C.set(T, 1);
  LiveThreads.push_back(T);
  return T;
}

Tid Detector::newRootGoroutine() {
  observe(EventKind::RootGoroutine, static_cast<Tid>(Threads.size()));
  // A root has no happens-before predecessor, so it covers nothing: any
  // maintained minimum is invalid from here on. (State already reclaimed
  // under the old minimum assumed fork-descent from the existing roots —
  // the single-root-then-accesses discipline every producer follows; see
  // DESIGN.md §13.)
  MinClock.clear();
  return allocThread();
}

Tid Detector::fork(Tid Parent) {
  countEvent();
  observe(EventKind::Fork, Parent);
  Tid Child = allocThread();
  // The `go` statement happens-before the child's first action.
  Threads[Child].C.joinWith(thread(Parent).C);
  Threads[Child].C.set(Child, thread(Child).C.get(Child));
  thread(Parent).C.tick(Parent);
  ++Stats.SyncOps;
  return Child;
}

size_t Detector::numGoroutines() const { return Threads.size(); }

void Detector::finish(Tid T) {
  countEvent();
  observe(EventKind::Finish, T);
  thread(T).Finished = true;
  for (size_t I = 0; I < LiveThreads.size(); ++I) {
    if (LiveThreads[I] == T) {
      LiveThreads[I] = LiveThreads.back();
      LiveThreads.pop_back();
      break;
    }
  }
  UntrimmedFinished.push_back(T);
  ++Stats.SyncOps;
  // One fewer live clock constrains the minimum: refresh so state the
  // finished goroutine alone kept alive becomes collectable. Throttled —
  // an eager refresh at EVERY finish/join is O(live clocks) and turns
  // fork/join-heavy workloads quadratic; a trim landing a few hundred
  // events late is invisible to the memory bound.
  maybeRefreshMinClock();
}

void Detector::join(Tid Waiter, Tid Target) {
  countEvent();
  observe(EventKind::Join, Waiter, Target);
  thread(Waiter).C.joinWith(thread(Target).C);
  ++Stats.SyncOps;
  // The waiter's clock grew, which can only raise the minimum; a
  // finished Target whose final clock is now covered by every live
  // goroutine gets its per-thread state trimmed here (throttled, see
  // finish()).
  maybeRefreshMinClock();
}

//===----------------------------------------------------------------------===//
// Synchronization events
//===----------------------------------------------------------------------===//

SyncId Detector::newSyncVar(const std::string &Name) {
  observe(EventKind::NewSync, 0, 0, 0, false, &Name);
  // Reuse a destroyed never-locked slot when one is free: its clock is
  // already empty, so the recycled id is indistinguishable from a fresh
  // one to the happens-before analysis. Allocation is deliberately
  // independent of DetectorOptions — a trace's recorded sync ids must
  // resolve to the same objects no matter which options replay it.
  if (!SyncFree.empty()) {
    SyncId S = SyncFree.back();
    SyncFree.pop_back();
    SyncAlive[S] = 1;
    SyncNames[S] = Name;
    ++Stats.SyncIdsReused;
    return S;
  }
  SyncId S = static_cast<SyncId>(SyncClocks.size());
  SyncClocks.emplace_back();
  SyncNames.push_back(Name);
  SyncAlive.push_back(1);
  SyncEverLocked.push_back(0);
  SyncGen.push_back(0);
  return S;
}

void Detector::acquire(Tid T, SyncId S) {
  assert(S < SyncClocks.size() && "unknown sync object");
  countEvent();
  observe(EventKind::Acquire, T, S);
  if (!SyncAlive[S]) {
    ++Stats.DeadSyncOps;
    return;
  }
  thread(T).C.joinWith(SyncClocks[S]);
  ++Stats.SyncOps;
}

void Detector::release(Tid T, SyncId S) {
  assert(S < SyncClocks.size() && "unknown sync object");
  countEvent();
  observe(EventKind::Release, T, S);
  if (!SyncAlive[S]) {
    ++Stats.DeadSyncOps;
    return;
  }
  SyncClocks[S] = thread(T).C;
  thread(T).C.tick(T);
  ++Stats.SyncOps;
}

void Detector::releaseMerge(Tid T, SyncId S) {
  assert(S < SyncClocks.size() && "unknown sync object");
  countEvent();
  observe(EventKind::ReleaseMerge, T, S);
  if (!SyncAlive[S]) {
    ++Stats.DeadSyncOps;
    return;
  }
  SyncClocks[S].joinWith(thread(T).C);
  thread(T).C.tick(T);
  ++Stats.SyncOps;
}

void Detector::transferSync(SyncId From, SyncId To) {
  assert(From < SyncClocks.size() && To < SyncClocks.size() &&
         "unknown sync object");
  countEvent();
  observe(EventKind::TransferSync, 0, From, To);
  if (!SyncAlive[From] || !SyncAlive[To]) {
    ++Stats.DeadSyncOps;
    return;
  }
  SyncClocks[To].joinWith(SyncClocks[From]);
  ++Stats.SyncOps;
}

void Detector::destroySyncVar(Tid T, SyncId S) {
  observe(EventKind::DestroySync, T, S);
  // Benign on unknown/already-dead ids: runtime object teardown may
  // legitimately race with abandoned-goroutine unwinding at end of run.
  if (S >= SyncClocks.size() || !SyncAlive[S])
    return;
  SyncAlive[S] = 0;
  ++SyncGen[S];
  ++Stats.SyncVarsDestroyed;
  Stats.GcVcWordsReclaimed += SyncClocks[S].size();
  if (SyncClocks[S].size())
    ++Stats.GcSyncClocksFreed;
  SyncClocks[S].reset();
  SyncNames[S].clear();
  SyncNames[S].shrink_to_fit();
  // Only ids never used as locks are recycled: a destroyed lock's id can
  // linger inside interned Eraser candidate sets, where a recycled
  // occupant would alias it and corrupt lock-set verdicts.
  if (!SyncEverLocked[S])
    SyncFree.push_back(S);
}

bool Detector::syncVarLive(SyncId S) const {
  return S < SyncClocks.size() && SyncAlive[S];
}

SyncGeneration Detector::syncVarGeneration(SyncId S) const {
  assert(S < SyncGen.size() && "unknown sync object");
  return SyncGen[S];
}

void Detector::lockAcquired(Tid T, SyncId S, bool WriteMode) {
  observe(EventKind::LockAcquire, T, S, 0, WriteMode);
  if (S < SyncEverLocked.size())
    SyncEverLocked[S] = 1;
  ThreadState &TS = thread(T);
  TS.HeldAll = LockSets.withLock(TS.HeldAll, S);
  if (WriteMode)
    TS.HeldWrite = LockSets.withLock(TS.HeldWrite, S);
}

void Detector::lockReleased(Tid T, SyncId S, bool WriteMode) {
  observe(EventKind::LockRelease, T, S, 0, WriteMode);
  ThreadState &TS = thread(T);
  TS.HeldAll = LockSets.withoutLock(TS.HeldAll, S);
  if (WriteMode)
    TS.HeldWrite = LockSets.withoutLock(TS.HeldWrite, S);
}

LockSetId Detector::heldWriteLocks(Tid T) const {
  return thread(T).HeldWrite;
}

LockSetId Detector::heldAllLocks(Tid T) const { return thread(T).HeldAll; }

//===----------------------------------------------------------------------===//
// Call-chain maintenance
//===----------------------------------------------------------------------===//

Frame Detector::makeFrame(const std::string &Function, const std::string &File,
                          uint32_t Line) {
  return Frame{Interner.intern(Function), Interner.intern(File), Line};
}

void Detector::pushFrame(Tid T, const Frame &F) {
  if (Observer_)
    observe(EventKind::PushFrame, T, 0, F.Line, false,
            &Interner.text(F.Function), &Interner.text(F.File));
  thread(T).Chain.push_back(F);
}

void Detector::popFrame(Tid T) {
  observe(EventKind::PopFrame, T);
  CallChain &Chain = thread(T).Chain;
  assert(!Chain.empty() && "popFrame() on empty chain");
  Chain.pop_back();
}

void Detector::setLine(Tid T, uint32_t Line) {
  observe(EventKind::SetLine, T, Line);
  CallChain &Chain = thread(T).Chain;
  if (!Chain.empty())
    Chain.back().Line = Line;
}

const CallChain &Detector::currentChain(Tid T) const {
  return thread(T).Chain;
}

//===----------------------------------------------------------------------===//
// Reporting helpers
//===----------------------------------------------------------------------===//

AccessSnapshot Detector::snapshotCurrent(Tid T, AccessKind Kind) const {
  AccessSnapshot Snapshot;
  Snapshot.Kind = Kind;
  Snapshot.Goroutine = T;
  Snapshot.Time = thread(T).C.get(T);
  if (Opts.KeepChains)
    Snapshot.Chain = thread(T).Chain;
  return Snapshot;
}

void Detector::emitReport(RaceReport Report, ShadowCell &Cell) {
  if (Report.Evidence == RaceEvidence::HappensBefore) {
    if (Opts.ReportOncePerAddress && Cell.ReportedHb) {
      ++Stats.ReportsSuppressed;
      return;
    }
    Cell.ReportedHb = true;
  } else {
    if (Opts.ReportOncePerAddress && Cell.ReportedLs) {
      ++Stats.ReportsSuppressed;
      return;
    }
    Cell.ReportedLs = true;
  }
  if (Opts.MaxReports && Reports.size() >= Opts.MaxReports) {
    ++Stats.ReportsSuppressed;
    return;
  }
  ++Stats.RacesReported;
  if (Sink_)
    Sink_(Report);
  Reports.push_back(std::move(Report));
}

//===----------------------------------------------------------------------===//
// FastTrack happens-before checks
//===----------------------------------------------------------------------===//

bool Detector::checkHbRead(Tid T, Addr A, ShadowCell &Cell) {
  ThreadState &TS = thread(T);
  Clock Now = TS.C.get(T);

  // Same-epoch fast path: this goroutine already read at this clock.
  if (Opts.EpochOptimization) {
    if (!Cell.ReadShared && Cell.ReadEpoch == Epoch{T, Now}) {
      ++Stats.SameEpochFastPath;
      return false;
    }
    if (Cell.ReadShared && Cell.ReadVC.get(T) == Now && Now != 0) {
      ++Stats.SameEpochFastPath;
      return false;
    }
  } else {
    // Full-VC ablation: go straight to the vector-clock representation
    // (reads never collapse to an epoch, no fast paths).
    Cell.ReadShared = true;
  }

  bool Raced = false;
  if (Cell.WriteEpoch.valid() && !TS.C.covers(Cell.WriteEpoch)) {
    RaceReport Report;
    Report.Address = A;
    Report.VariableName = Cell.Name;
    Report.Evidence = RaceEvidence::HappensBefore;
    Report.Previous = {AccessKind::Write, Cell.WriteEpoch.Id,
                       Cell.WriteEpoch.Time, Cell.WriteChain};
    Report.Current = snapshotCurrent(T, AccessKind::Read);
    emitReport(std::move(Report), Cell);
    Raced = true;
  }

  // Update read state (FastTrack rules: exclusive epoch when ordered,
  // promotion to a read vector clock under concurrent reads).
  if (Cell.ReadShared) {
    Cell.ReadVC.set(T, Now);
    if (Opts.KeepChains)
      Cell.SharedChains[T] = TS.Chain;
    return Raced;
  }
  if (Cell.ReadEpoch.valid() && !TS.C.covers(Cell.ReadEpoch)) {
    Cell.ReadShared = true;
    Cell.ReadVC.clear();
    Cell.ReadVC.set(Cell.ReadEpoch.Id, Cell.ReadEpoch.Time);
    Cell.ReadVC.set(T, Now);
    if (Opts.KeepChains) {
      Cell.SharedChains[Cell.ReadEpoch.Id] = Cell.ReadChain;
      Cell.SharedChains[T] = TS.Chain;
    }
    ++Stats.ReadSharePromotions;
    return Raced;
  }
  Cell.ReadEpoch = Epoch{T, Now};
  if (Opts.KeepChains)
    Cell.ReadChain = TS.Chain;
  return Raced;
}

bool Detector::checkHbWrite(Tid T, Addr A, ShadowCell &Cell) {
  ThreadState &TS = thread(T);
  Clock Now = TS.C.get(T);

  // Same-epoch fast path: this goroutine already wrote at this clock.
  if (Opts.EpochOptimization && Cell.WriteEpoch == Epoch{T, Now}) {
    ++Stats.SameEpochFastPath;
    return false;
  }

  bool Raced = false;
  if (Cell.WriteEpoch.valid() && !TS.C.covers(Cell.WriteEpoch)) {
    RaceReport Report;
    Report.Address = A;
    Report.VariableName = Cell.Name;
    Report.Evidence = RaceEvidence::HappensBefore;
    Report.Previous = {AccessKind::Write, Cell.WriteEpoch.Id,
                       Cell.WriteEpoch.Time, Cell.WriteChain};
    Report.Current = snapshotCurrent(T, AccessKind::Write);
    emitReport(std::move(Report), Cell);
    Raced = true;
  }

  if (Cell.ReadShared) {
    Tid Offender = TS.C.firstUncovered(Cell.ReadVC);
    if (Offender != InvalidTid) {
      RaceReport Report;
      Report.Address = A;
      Report.VariableName = Cell.Name;
      Report.Evidence = RaceEvidence::HappensBefore;
      CallChain OffenderChain;
      auto ChainIt = Cell.SharedChains.find(Offender);
      if (ChainIt != Cell.SharedChains.end())
        OffenderChain = ChainIt->second;
      Report.Previous = {AccessKind::Read, Offender,
                         Cell.ReadVC.get(Offender), std::move(OffenderChain)};
      Report.Current = snapshotCurrent(T, AccessKind::Write);
      emitReport(std::move(Report), Cell);
      Raced = true;
    }
  } else if (Cell.ReadEpoch.valid() && !TS.C.covers(Cell.ReadEpoch)) {
    RaceReport Report;
    Report.Address = A;
    Report.VariableName = Cell.Name;
    Report.Evidence = RaceEvidence::HappensBefore;
    Report.Previous = {AccessKind::Read, Cell.ReadEpoch.Id,
                       Cell.ReadEpoch.Time, Cell.ReadChain};
    Report.Current = snapshotCurrent(T, AccessKind::Write);
    emitReport(std::move(Report), Cell);
    Raced = true;
  }

  // Update write state; reset shared-read bookkeeping like FastTrack.
  Cell.WriteEpoch = Epoch{T, Now};
  if (Opts.KeepChains)
    Cell.WriteChain = TS.Chain;
  if (Cell.ReadShared) {
    Cell.ReadShared = false;
    Cell.ReadVC.clear();
    Cell.SharedChains.clear();
    Cell.ReadEpoch = BottomEpoch;
    Cell.ReadChain.clear();
  }
  return Raced;
}

//===----------------------------------------------------------------------===//
// Eraser lock-set checks
//===----------------------------------------------------------------------===//

bool Detector::applyEraser(Tid T, Addr A, AccessKind Kind, ShadowCell &Cell) {
  ThreadState &TS = thread(T);
  // A read is protected by any lock held (read or write mode); a write
  // needs a write-mode lock (RLock does not protect writes, Listing 11).
  LockSetId Held = Kind == AccessKind::Read ? TS.HeldAll : TS.HeldWrite;

  bool BecameReportable = false;
  switch (Cell.State) {
  case EraserState::Virgin:
    Cell.State = EraserState::Exclusive;
    ++Stats.EraserTransitions;
    Cell.Owner = T;
    // C(v) := all-locks ∩ held — Eraser refines from the first access;
    // the Exclusive state only suppresses REPORTING, not refinement.
    Cell.Candidate = Held;
    break;
  case EraserState::Exclusive:
    if (T == Cell.Owner) {
      Cell.Candidate = LockSets.intersect(Cell.Candidate, Held);
      break;
    }
    Cell.Candidate = LockSets.intersect(Cell.Candidate, Held);
    Cell.State = Kind == AccessKind::Read ? EraserState::Shared
                                          : EraserState::SharedModified;
    ++Stats.EraserTransitions;
    BecameReportable = Cell.State == EraserState::SharedModified;
    break;
  case EraserState::Shared:
    Cell.Candidate = LockSets.intersect(Cell.Candidate, Held);
    if (Kind == AccessKind::Write) {
      Cell.State = EraserState::SharedModified;
      ++Stats.EraserTransitions;
      BecameReportable = true;
    }
    break;
  case EraserState::SharedModified:
    Cell.Candidate = LockSets.intersect(Cell.Candidate, Held);
    BecameReportable = true;
    break;
  }

  bool Raced = false;
  if (BecameReportable && LockSets.isEmpty(Cell.Candidate)) {
    // In hybrid mode the HB report (precise evidence) subsumes the
    // lock-set finding for the same address.
    bool Suppress = Opts.Mode == DetectMode::Hybrid && Cell.ReportedHb;
    if (!Suppress && Cell.HaveLastAccess) {
      RaceReport Report;
      Report.Address = A;
      Report.VariableName = Cell.Name;
      Report.Evidence = RaceEvidence::LockSetEmpty;
      Report.Previous = Cell.LastAccess;
      Report.Current = snapshotCurrent(T, Kind);
      emitReport(std::move(Report), Cell);
      Raced = true;
    }
  }

  Cell.LastAccess = snapshotCurrent(T, Kind);
  Cell.HaveLastAccess = true;
  return Raced;
}

//===----------------------------------------------------------------------===//
// Memory accesses
//===----------------------------------------------------------------------===//

bool Detector::onRead(Tid T, Addr A, const std::string &Name) {
  countEvent();
  observe(EventKind::Read, T, A, 0, false, &Name);
  ++Stats.Reads;
  ShadowCell &Cell = shadowCell(A);
  if (Cell.Name.empty() && !Name.empty())
    Cell.Name = Name;
  bool Raced = false;
  if (Opts.Mode != DetectMode::LockSetOnly)
    Raced |= checkHbRead(T, A, Cell);
  if (Opts.Mode != DetectMode::HappensBefore)
    Raced |= applyEraser(T, A, AccessKind::Read, Cell);
  return Raced;
}

bool Detector::onWrite(Tid T, Addr A, const std::string &Name) {
  countEvent();
  observe(EventKind::Write, T, A, 0, false, &Name);
  ++Stats.Writes;
  ShadowCell &Cell = shadowCell(A);
  if (Cell.Name.empty() && !Name.empty())
    Cell.Name = Name;
  bool Raced = false;
  if (Opts.Mode != DetectMode::LockSetOnly)
    Raced |= checkHbWrite(T, A, Cell);
  if (Opts.Mode != DetectMode::HappensBefore)
    Raced |= applyEraser(T, A, AccessKind::Write, Cell);
  return Raced;
}

const VectorClock &Detector::clockOf(Tid T) const { return thread(T).C; }

bool Detector::hasShadow(Addr A) const { return Shadow.count(A) != 0; }

//===----------------------------------------------------------------------===//
// Min-clock shadow-state garbage collection
//
// Invariant everything below leans on: MinClock is a component-wise lower
// bound on the clock of EVERY goroutine that can ever perform another
// event. Live goroutines' clocks only grow; goroutines created later
// inherit a parent's clock at fork, and the parent covers MinClock. So
// any epoch covered by MinClock is covered by all future accessors
// forever: it can never again be the uncovered side of a race check, and
// a chain only reachable through it can never be quoted in a report.
// Collection is therefore verdict-neutral — the differential battery in
// tests/DetectorGcTest.cpp checks exactly that, and DESIGN.md §13 spells
// out the cases (including the two representation hazards the sweeps
// below explicitly guard against).
//===----------------------------------------------------------------------===//

void Detector::countEvent() {
  if (Opts.Gc != GcMode::MinClock)
    return;
  ++EventsSinceRefresh;
  if (Opts.GcIntervalEvents == 0)
    return;
  if (++EventsSinceGc >= Opts.GcIntervalEvents) {
    EventsSinceGc = 0;
    gcNow();
  }
}

void Detector::maybeRefreshMinClock() {
  // Amortization guard for the eager finish/join refresh: each refresh
  // costs O(live clocks), so running one per event would make a
  // fork/join loop quadratic in rounds. 256 events of slack keeps the
  // refresh cost well under the per-event detector work while still
  // trimming long-dead state orders of magnitude before the footprint
  // could drift.
  constexpr uint64_t EagerRefreshSlackEvents = 256;
  if (Opts.Gc != GcMode::MinClock ||
      EventsSinceRefresh < EagerRefreshSlackEvents)
    return;
  refreshMinClock();
}

void Detector::gcNow() {
  if (Opts.Gc != GcMode::MinClock)
    return;
  ++Stats.GcRuns;
  notePeaks();
  refreshMinClock();
  sweepSyncClocks();
  sweepShadow();
}

void Detector::notePeaks() {
  ShadowFootprint F = footprint(); // max-merges into Peak* itself
  (void)F;
}

void Detector::refreshMinClock() {
  if (Opts.Gc != GcMode::MinClock)
    return;
  EventsSinceRefresh = 0;
  VectorClock NewMin;
  bool Any = false;
  for (Tid T : LiveThreads) {
    const ThreadState &TS = Threads[T];
    if (!Any) {
      NewMin = TS.C;
      Any = true;
    } else {
      NewMin.minWith(TS.C);
    }
  }
  // With no live goroutine left the previous bound stays valid: only a
  // later root could act, and newRootGoroutine() clears MinClock.
  if (Any)
    MinClock = std::move(NewMin);
  trimDominatedThreads();
}

void Detector::trimDominatedThreads() {
  // Only finished-but-untrimmed goroutines are candidates; walking the
  // pending list (instead of every ThreadState ever created) keeps this
  // O(recent finishes) on long fork/join workloads.
  size_t Keep = 0;
  for (size_t I = 0; I < UntrimmedFinished.size(); ++I) {
    ThreadState &TS = Threads[UntrimmedFinished[I]];
    if (!MinClock.coversAll(TS.C)) {
      UntrimmedFinished[Keep++] = UntrimmedFinished[I];
      continue;
    }
    // Every live goroutine already covers this final clock, so any
    // remaining join(waiter, T) is a no-op with or without the state.
    Stats.GcVcWordsReclaimed += TS.C.size();
    Stats.GcChainBytesReclaimed += TS.Chain.size() * sizeof(Frame);
    ++Stats.GcThreadsTrimmed;
    TS.C.reset();
    CallChain().swap(TS.Chain);
    TS.Trimmed = true;
  }
  UntrimmedFinished.resize(Keep);
}

void Detector::sweepSyncClocks() {
  for (SyncId S = 0; S < SyncClocks.size(); ++S) {
    VectorClock &VC = SyncClocks[S];
    if (!SyncAlive[S] || VC.size() == 0 || !MinClock.coversAll(VC))
      continue;
    // Every future acquirer covers this clock already; the join it
    // would contribute is a no-op, so an empty clock behaves the same.
    Stats.GcVcWordsReclaimed += VC.size();
    ++Stats.GcSyncClocksFreed;
    VC.reset();
  }
}

void Detector::sweepShadow() {
  bool CanRetire = Opts.Mode == DetectMode::HappensBefore;
  for (auto It = Shadow.begin(); It != Shadow.end();) {
    ShadowCell &Cell = It->second;
    // "Dominated" on a side means: absent, or covered by MinClock (and
    // hence by every future accessor's clock, forever).
    bool WDom = !Cell.WriteEpoch.valid() || epochDominated(Cell.WriteEpoch);
    bool RDom = Cell.ReadShared
                    ? MinClock.coversAll(Cell.ReadVC)
                    : (!Cell.ReadEpoch.valid() ||
                       epochDominated(Cell.ReadEpoch));

    // Representation hazard guard: while the last writer is live and
    // still at the write epoch's clock, its next same-epoch write takes
    // the fast path on the old cell (skipping the shared-read reset) but
    // would take the slow path on a rebuilt cell — the two copies then
    // disagree on ReadShared. Never retire such a cell; clocks only
    // grow, so the guard clears as soon as the writer ticks or finishes.
    bool WriterMayFastPath = false;
    if (Cell.WriteEpoch.valid() && Cell.WriteEpoch.Id < Threads.size()) {
      const ThreadState &WS = Threads[Cell.WriteEpoch.Id];
      WriterMayFastPath =
          !WS.Finished && WS.C.get(Cell.WriteEpoch.Id) == Cell.WriteEpoch.Time;
    }

    if (CanRetire && WDom && RDom &&
        !(Cell.ReadShared && WriterMayFastPath)) {
      // Fully dominated: no future access can race with any of this
      // state, and the ReportOnce flags + name survive in the residue.
      Stats.GcVcWordsReclaimed += Cell.ReadVC.size();
      uint64_t Chains = Cell.WriteChain.size() + Cell.ReadChain.size();
      for (const auto &[T, Chain] : Cell.SharedChains) {
        (void)T;
        Chains += Chain.size();
      }
      Stats.GcChainBytesReclaimed += Chains * sizeof(Frame);
      ++Stats.GcCellsRetired;
      bool NeedResidue = Cell.ReportedHb || Cell.ReportedLs ||
                         !Cell.Name.empty() ||
                         (Cell.ReadShared && Opts.EpochOptimization);
      if (NeedResidue)
        Retired[It->first] = RetiredCell{Interner.intern(Cell.Name),
                                         Cell.ReadShared, Cell.ReportedHb,
                                         Cell.ReportedLs};
      It = Shadow.erase(It);
      continue;
    }

    // Partial trims on a kept cell. Chains quoted in reports are only
    // reachable via their epoch/VC entry; once that entry is dominated
    // the chain is dead weight.
    if (WDom && !Cell.WriteChain.empty()) {
      Stats.GcChainBytesReclaimed += Cell.WriteChain.size() * sizeof(Frame);
      CallChain().swap(Cell.WriteChain);
    }
    if (!Cell.ReadShared && RDom && !Cell.ReadChain.empty()) {
      Stats.GcChainBytesReclaimed += Cell.ReadChain.size() * sizeof(Frame);
      CallChain().swap(Cell.ReadChain);
    }
    if (Cell.ReadShared) {
      if (RDom && WDom && Cell.ReadVC.size() != 0) {
        // Tentpole (a): a fully dominated shared read set can never name
        // an offender again. The epochs and the ReadShared flag are
        // deliberately KEPT — collapsing the representation back to a
        // read epoch could change which offender firstUncovered() names,
        // and dropping epochs changes fast-path behavior (the second
        // hazard in DESIGN.md §13). Only the storage is released.
        Stats.GcVcWordsReclaimed += Cell.ReadVC.size();
        for (const auto &[T, Chain] : Cell.SharedChains) {
          (void)T;
          Stats.GcChainBytesReclaimed += Chain.size() * sizeof(Frame);
        }
        Cell.ReadVC.reset();
        std::unordered_map<Tid, CallChain>().swap(Cell.SharedChains);
      } else if (!Cell.SharedChains.empty()) {
        // Per-reader chain trim: drop chains whose VC entry is dominated
        // (the entry itself stays, so fast paths and offender naming are
        // untouched; a dominated entry is never named).
        for (auto CIt = Cell.SharedChains.begin();
             CIt != Cell.SharedChains.end();) {
          Clock Entry = Cell.ReadVC.get(CIt->first);
          if (Entry != 0 && MinClock.covers(Epoch{CIt->first, Entry})) {
            Stats.GcChainBytesReclaimed += CIt->second.size() * sizeof(Frame);
            CIt = Cell.SharedChains.erase(CIt);
          } else {
            ++CIt;
          }
        }
      }
    }
    ++It;
  }
  Stats.ShadowCells = Shadow.size();
}
