//===- race/Detector.cpp - Dynamic data race detector ---------------------===//

#include "race/Detector.h"

#include <cassert>

using namespace grs::race;

//===----------------------------------------------------------------------===//
// Internal state
//===----------------------------------------------------------------------===//

struct Detector::ThreadState {
  VectorClock C;
  CallChain Chain;
  LockSetId HeldWrite = LockSetRegistry::EmptyId;
  LockSetId HeldAll = LockSetRegistry::EmptyId;
  bool Finished = false;
};

struct Detector::ShadowCell {
  // FastTrack happens-before state.
  Epoch WriteEpoch;
  CallChain WriteChain;
  bool ReadShared = false;
  Epoch ReadEpoch;
  CallChain ReadChain;
  VectorClock ReadVC;
  std::unordered_map<Tid, CallChain> SharedChains;

  // Eraser lock-set state.
  EraserState State = EraserState::Virgin;
  Tid Owner = InvalidTid;
  LockSetId Candidate = LockSetRegistry::EmptyId;
  AccessSnapshot LastAccess;
  bool HaveLastAccess = false;

  // Report throttling and labelling.
  bool ReportedHb = false;
  bool ReportedLs = false;
  std::string Name;
};

Detector::Detector(DetectorOptions Opts) : Opts(Opts) {}

Detector::~Detector() = default;

Detector::ThreadState &Detector::thread(Tid T) {
  assert(T < Threads.size() && "unknown goroutine id");
  return Threads[T];
}

const Detector::ThreadState &Detector::thread(Tid T) const {
  assert(T < Threads.size() && "unknown goroutine id");
  return Threads[T];
}

Detector::ShadowCell &Detector::shadowCell(Addr A) {
  auto [It, Inserted] = Shadow.try_emplace(A);
  if (Inserted)
    Stats.ShadowCells = Shadow.size();
  return It->second;
}

ShadowFootprint Detector::footprint() const {
  ShadowFootprint F;
  F.ShadowCells = Shadow.size();
  for (const ThreadState &TS : Threads) {
    F.VcWords += TS.C.size();
    F.ChainBytes += TS.Chain.size() * sizeof(Frame);
  }
  for (const VectorClock &VC : SyncClocks)
    F.VcWords += VC.size();
  for (const auto &[A, Cell] : Shadow) {
    (void)A;
    F.VcWords += Cell.ReadVC.size();
    F.ChainBytes +=
        (Cell.WriteChain.size() + Cell.ReadChain.size()) * sizeof(Frame);
    for (const auto &[T, Chain] : Cell.SharedChains) {
      (void)T;
      F.ChainBytes += Chain.size() * sizeof(Frame);
    }
  }
  return F;
}

//===----------------------------------------------------------------------===//
// Event stream
//===----------------------------------------------------------------------===//

void Detector::observe(EventKind Kind, Tid T, uint64_t A, uint64_t B,
                       bool Flag, const std::string *Str1,
                       const std::string *Str2) {
  if (!Observer_)
    return;
  TraceEvent Event;
  Event.Kind = Kind;
  Event.T = T;
  Event.A = A;
  Event.B = B;
  Event.Flag = Flag;
  Event.Str1 = Str1;
  Event.Str2 = Str2;
  Observer_->onTraceEvent(Event);
}

void Detector::annotate(EventKind Kind, Tid T, uint64_t A, bool Flag,
                        const std::string *Name) {
  observe(Kind, T, A, /*B=*/0, Flag, Name);
}

//===----------------------------------------------------------------------===//
// Goroutine lifecycle
//===----------------------------------------------------------------------===//

Tid Detector::allocThread() {
  Tid T = static_cast<Tid>(Threads.size());
  Threads.emplace_back();
  // Every goroutine starts at epoch (T, 1) so a fresh epoch is never
  // mistaken for the all-zero bottom.
  Threads[T].C.set(T, 1);
  return T;
}

Tid Detector::newRootGoroutine() {
  observe(EventKind::RootGoroutine, static_cast<Tid>(Threads.size()));
  return allocThread();
}

Tid Detector::fork(Tid Parent) {
  observe(EventKind::Fork, Parent);
  Tid Child = allocThread();
  // The `go` statement happens-before the child's first action.
  Threads[Child].C.joinWith(thread(Parent).C);
  Threads[Child].C.set(Child, thread(Child).C.get(Child));
  thread(Parent).C.tick(Parent);
  ++Stats.SyncOps;
  return Child;
}

size_t Detector::numGoroutines() const { return Threads.size(); }

void Detector::finish(Tid T) {
  observe(EventKind::Finish, T);
  thread(T).Finished = true;
  ++Stats.SyncOps;
}

void Detector::join(Tid Waiter, Tid Target) {
  observe(EventKind::Join, Waiter, Target);
  thread(Waiter).C.joinWith(thread(Target).C);
  ++Stats.SyncOps;
}

//===----------------------------------------------------------------------===//
// Synchronization events
//===----------------------------------------------------------------------===//

SyncId Detector::newSyncVar(const std::string &Name) {
  observe(EventKind::NewSync, 0, 0, 0, false, &Name);
  SyncId S = static_cast<SyncId>(SyncClocks.size());
  SyncClocks.emplace_back();
  SyncNames.push_back(Name);
  return S;
}

void Detector::acquire(Tid T, SyncId S) {
  assert(S < SyncClocks.size() && "unknown sync object");
  observe(EventKind::Acquire, T, S);
  thread(T).C.joinWith(SyncClocks[S]);
  ++Stats.SyncOps;
}

void Detector::release(Tid T, SyncId S) {
  assert(S < SyncClocks.size() && "unknown sync object");
  observe(EventKind::Release, T, S);
  SyncClocks[S] = thread(T).C;
  thread(T).C.tick(T);
  ++Stats.SyncOps;
}

void Detector::releaseMerge(Tid T, SyncId S) {
  assert(S < SyncClocks.size() && "unknown sync object");
  observe(EventKind::ReleaseMerge, T, S);
  SyncClocks[S].joinWith(thread(T).C);
  thread(T).C.tick(T);
  ++Stats.SyncOps;
}

void Detector::transferSync(SyncId From, SyncId To) {
  assert(From < SyncClocks.size() && To < SyncClocks.size() &&
         "unknown sync object");
  observe(EventKind::TransferSync, 0, From, To);
  SyncClocks[To].joinWith(SyncClocks[From]);
  ++Stats.SyncOps;
}

void Detector::lockAcquired(Tid T, SyncId S, bool WriteMode) {
  observe(EventKind::LockAcquire, T, S, 0, WriteMode);
  ThreadState &TS = thread(T);
  TS.HeldAll = LockSets.withLock(TS.HeldAll, S);
  if (WriteMode)
    TS.HeldWrite = LockSets.withLock(TS.HeldWrite, S);
}

void Detector::lockReleased(Tid T, SyncId S, bool WriteMode) {
  observe(EventKind::LockRelease, T, S, 0, WriteMode);
  ThreadState &TS = thread(T);
  TS.HeldAll = LockSets.withoutLock(TS.HeldAll, S);
  if (WriteMode)
    TS.HeldWrite = LockSets.withoutLock(TS.HeldWrite, S);
}

LockSetId Detector::heldWriteLocks(Tid T) const {
  return thread(T).HeldWrite;
}

LockSetId Detector::heldAllLocks(Tid T) const { return thread(T).HeldAll; }

//===----------------------------------------------------------------------===//
// Call-chain maintenance
//===----------------------------------------------------------------------===//

Frame Detector::makeFrame(const std::string &Function, const std::string &File,
                          uint32_t Line) {
  return Frame{Interner.intern(Function), Interner.intern(File), Line};
}

void Detector::pushFrame(Tid T, const Frame &F) {
  if (Observer_)
    observe(EventKind::PushFrame, T, 0, F.Line, false,
            &Interner.text(F.Function), &Interner.text(F.File));
  thread(T).Chain.push_back(F);
}

void Detector::popFrame(Tid T) {
  observe(EventKind::PopFrame, T);
  CallChain &Chain = thread(T).Chain;
  assert(!Chain.empty() && "popFrame() on empty chain");
  Chain.pop_back();
}

void Detector::setLine(Tid T, uint32_t Line) {
  observe(EventKind::SetLine, T, Line);
  CallChain &Chain = thread(T).Chain;
  if (!Chain.empty())
    Chain.back().Line = Line;
}

const CallChain &Detector::currentChain(Tid T) const {
  return thread(T).Chain;
}

//===----------------------------------------------------------------------===//
// Reporting helpers
//===----------------------------------------------------------------------===//

AccessSnapshot Detector::snapshotCurrent(Tid T, AccessKind Kind) const {
  AccessSnapshot Snapshot;
  Snapshot.Kind = Kind;
  Snapshot.Goroutine = T;
  Snapshot.Time = thread(T).C.get(T);
  if (Opts.KeepChains)
    Snapshot.Chain = thread(T).Chain;
  return Snapshot;
}

void Detector::emitReport(RaceReport Report, ShadowCell &Cell) {
  if (Report.Evidence == RaceEvidence::HappensBefore) {
    if (Opts.ReportOncePerAddress && Cell.ReportedHb) {
      ++Stats.ReportsSuppressed;
      return;
    }
    Cell.ReportedHb = true;
  } else {
    if (Opts.ReportOncePerAddress && Cell.ReportedLs) {
      ++Stats.ReportsSuppressed;
      return;
    }
    Cell.ReportedLs = true;
  }
  if (Opts.MaxReports && Reports.size() >= Opts.MaxReports) {
    ++Stats.ReportsSuppressed;
    return;
  }
  ++Stats.RacesReported;
  if (Sink_)
    Sink_(Report);
  Reports.push_back(std::move(Report));
}

//===----------------------------------------------------------------------===//
// FastTrack happens-before checks
//===----------------------------------------------------------------------===//

bool Detector::checkHbRead(Tid T, Addr A, ShadowCell &Cell) {
  ThreadState &TS = thread(T);
  Clock Now = TS.C.get(T);

  // Same-epoch fast path: this goroutine already read at this clock.
  if (Opts.EpochOptimization) {
    if (!Cell.ReadShared && Cell.ReadEpoch == Epoch{T, Now}) {
      ++Stats.SameEpochFastPath;
      return false;
    }
    if (Cell.ReadShared && Cell.ReadVC.get(T) == Now && Now != 0) {
      ++Stats.SameEpochFastPath;
      return false;
    }
  } else {
    // Full-VC ablation: go straight to the vector-clock representation
    // (reads never collapse to an epoch, no fast paths).
    Cell.ReadShared = true;
  }

  bool Raced = false;
  if (Cell.WriteEpoch.valid() && !TS.C.covers(Cell.WriteEpoch)) {
    RaceReport Report;
    Report.Address = A;
    Report.VariableName = Cell.Name;
    Report.Evidence = RaceEvidence::HappensBefore;
    Report.Previous = {AccessKind::Write, Cell.WriteEpoch.Id,
                       Cell.WriteEpoch.Time, Cell.WriteChain};
    Report.Current = snapshotCurrent(T, AccessKind::Read);
    emitReport(std::move(Report), Cell);
    Raced = true;
  }

  // Update read state (FastTrack rules: exclusive epoch when ordered,
  // promotion to a read vector clock under concurrent reads).
  if (Cell.ReadShared) {
    Cell.ReadVC.set(T, Now);
    if (Opts.KeepChains)
      Cell.SharedChains[T] = TS.Chain;
    return Raced;
  }
  if (Cell.ReadEpoch.valid() && !TS.C.covers(Cell.ReadEpoch)) {
    Cell.ReadShared = true;
    Cell.ReadVC.clear();
    Cell.ReadVC.set(Cell.ReadEpoch.Id, Cell.ReadEpoch.Time);
    Cell.ReadVC.set(T, Now);
    if (Opts.KeepChains) {
      Cell.SharedChains[Cell.ReadEpoch.Id] = Cell.ReadChain;
      Cell.SharedChains[T] = TS.Chain;
    }
    ++Stats.ReadSharePromotions;
    return Raced;
  }
  Cell.ReadEpoch = Epoch{T, Now};
  if (Opts.KeepChains)
    Cell.ReadChain = TS.Chain;
  return Raced;
}

bool Detector::checkHbWrite(Tid T, Addr A, ShadowCell &Cell) {
  ThreadState &TS = thread(T);
  Clock Now = TS.C.get(T);

  // Same-epoch fast path: this goroutine already wrote at this clock.
  if (Opts.EpochOptimization && Cell.WriteEpoch == Epoch{T, Now}) {
    ++Stats.SameEpochFastPath;
    return false;
  }

  bool Raced = false;
  if (Cell.WriteEpoch.valid() && !TS.C.covers(Cell.WriteEpoch)) {
    RaceReport Report;
    Report.Address = A;
    Report.VariableName = Cell.Name;
    Report.Evidence = RaceEvidence::HappensBefore;
    Report.Previous = {AccessKind::Write, Cell.WriteEpoch.Id,
                       Cell.WriteEpoch.Time, Cell.WriteChain};
    Report.Current = snapshotCurrent(T, AccessKind::Write);
    emitReport(std::move(Report), Cell);
    Raced = true;
  }

  if (Cell.ReadShared) {
    Tid Offender = TS.C.firstUncovered(Cell.ReadVC);
    if (Offender != InvalidTid) {
      RaceReport Report;
      Report.Address = A;
      Report.VariableName = Cell.Name;
      Report.Evidence = RaceEvidence::HappensBefore;
      CallChain OffenderChain;
      auto ChainIt = Cell.SharedChains.find(Offender);
      if (ChainIt != Cell.SharedChains.end())
        OffenderChain = ChainIt->second;
      Report.Previous = {AccessKind::Read, Offender,
                         Cell.ReadVC.get(Offender), std::move(OffenderChain)};
      Report.Current = snapshotCurrent(T, AccessKind::Write);
      emitReport(std::move(Report), Cell);
      Raced = true;
    }
  } else if (Cell.ReadEpoch.valid() && !TS.C.covers(Cell.ReadEpoch)) {
    RaceReport Report;
    Report.Address = A;
    Report.VariableName = Cell.Name;
    Report.Evidence = RaceEvidence::HappensBefore;
    Report.Previous = {AccessKind::Read, Cell.ReadEpoch.Id,
                       Cell.ReadEpoch.Time, Cell.ReadChain};
    Report.Current = snapshotCurrent(T, AccessKind::Write);
    emitReport(std::move(Report), Cell);
    Raced = true;
  }

  // Update write state; reset shared-read bookkeeping like FastTrack.
  Cell.WriteEpoch = Epoch{T, Now};
  if (Opts.KeepChains)
    Cell.WriteChain = TS.Chain;
  if (Cell.ReadShared) {
    Cell.ReadShared = false;
    Cell.ReadVC.clear();
    Cell.SharedChains.clear();
    Cell.ReadEpoch = BottomEpoch;
    Cell.ReadChain.clear();
  }
  return Raced;
}

//===----------------------------------------------------------------------===//
// Eraser lock-set checks
//===----------------------------------------------------------------------===//

bool Detector::applyEraser(Tid T, Addr A, AccessKind Kind, ShadowCell &Cell) {
  ThreadState &TS = thread(T);
  // A read is protected by any lock held (read or write mode); a write
  // needs a write-mode lock (RLock does not protect writes, Listing 11).
  LockSetId Held = Kind == AccessKind::Read ? TS.HeldAll : TS.HeldWrite;

  bool BecameReportable = false;
  switch (Cell.State) {
  case EraserState::Virgin:
    Cell.State = EraserState::Exclusive;
    ++Stats.EraserTransitions;
    Cell.Owner = T;
    // C(v) := all-locks ∩ held — Eraser refines from the first access;
    // the Exclusive state only suppresses REPORTING, not refinement.
    Cell.Candidate = Held;
    break;
  case EraserState::Exclusive:
    if (T == Cell.Owner) {
      Cell.Candidate = LockSets.intersect(Cell.Candidate, Held);
      break;
    }
    Cell.Candidate = LockSets.intersect(Cell.Candidate, Held);
    Cell.State = Kind == AccessKind::Read ? EraserState::Shared
                                          : EraserState::SharedModified;
    ++Stats.EraserTransitions;
    BecameReportable = Cell.State == EraserState::SharedModified;
    break;
  case EraserState::Shared:
    Cell.Candidate = LockSets.intersect(Cell.Candidate, Held);
    if (Kind == AccessKind::Write) {
      Cell.State = EraserState::SharedModified;
      ++Stats.EraserTransitions;
      BecameReportable = true;
    }
    break;
  case EraserState::SharedModified:
    Cell.Candidate = LockSets.intersect(Cell.Candidate, Held);
    BecameReportable = true;
    break;
  }

  bool Raced = false;
  if (BecameReportable && LockSets.isEmpty(Cell.Candidate)) {
    // In hybrid mode the HB report (precise evidence) subsumes the
    // lock-set finding for the same address.
    bool Suppress = Opts.Mode == DetectMode::Hybrid && Cell.ReportedHb;
    if (!Suppress && Cell.HaveLastAccess) {
      RaceReport Report;
      Report.Address = A;
      Report.VariableName = Cell.Name;
      Report.Evidence = RaceEvidence::LockSetEmpty;
      Report.Previous = Cell.LastAccess;
      Report.Current = snapshotCurrent(T, Kind);
      emitReport(std::move(Report), Cell);
      Raced = true;
    }
  }

  Cell.LastAccess = snapshotCurrent(T, Kind);
  Cell.HaveLastAccess = true;
  return Raced;
}

//===----------------------------------------------------------------------===//
// Memory accesses
//===----------------------------------------------------------------------===//

bool Detector::onRead(Tid T, Addr A, const std::string &Name) {
  observe(EventKind::Read, T, A, 0, false, &Name);
  ++Stats.Reads;
  ShadowCell &Cell = shadowCell(A);
  if (Cell.Name.empty() && !Name.empty())
    Cell.Name = Name;
  bool Raced = false;
  if (Opts.Mode != DetectMode::LockSetOnly)
    Raced |= checkHbRead(T, A, Cell);
  if (Opts.Mode != DetectMode::HappensBefore)
    Raced |= applyEraser(T, A, AccessKind::Read, Cell);
  return Raced;
}

bool Detector::onWrite(Tid T, Addr A, const std::string &Name) {
  observe(EventKind::Write, T, A, 0, false, &Name);
  ++Stats.Writes;
  ShadowCell &Cell = shadowCell(A);
  if (Cell.Name.empty() && !Name.empty())
    Cell.Name = Name;
  bool Raced = false;
  if (Opts.Mode != DetectMode::LockSetOnly)
    Raced |= checkHbWrite(T, A, Cell);
  if (Opts.Mode != DetectMode::HappensBefore)
    Raced |= applyEraser(T, A, AccessKind::Write, Cell);
  return Raced;
}

const VectorClock &Detector::clockOf(Tid T) const { return thread(T).C; }

bool Detector::hasShadow(Addr A) const { return Shadow.count(A) != 0; }
