//===- race/LockSet.cpp - Eraser-style lock-set tracking ------------------===//

#include "race/LockSet.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace grs::race;

LockSetRegistry::LockSetRegistry() {
  // Reserve id 0 for the empty set.
  Sets.emplace_back();
  Index.emplace(std::vector<SyncId>(), EmptyId);
}

LockSetId LockSetRegistry::intern(std::vector<SyncId> Locks) {
  std::sort(Locks.begin(), Locks.end());
  Locks.erase(std::unique(Locks.begin(), Locks.end()), Locks.end());
  auto Found = Index.find(Locks);
  if (Found != Index.end()) {
    ++Stats.InternHits;
    return Found->second;
  }
  ++Stats.InternMisses;
  LockSetId Id = static_cast<LockSetId>(Sets.size());
  Index.emplace(Locks, Id);
  Sets.push_back(std::move(Locks));
  return Id;
}

LockSetId LockSetRegistry::withLock(LockSetId A, SyncId Lock) {
  std::vector<SyncId> Locks = locks(A);
  if (std::binary_search(Locks.begin(), Locks.end(), Lock))
    return A;
  Locks.push_back(Lock);
  return intern(std::move(Locks));
}

LockSetId LockSetRegistry::withoutLock(LockSetId A, SyncId Lock) {
  std::vector<SyncId> Locks = locks(A);
  auto Found = std::find(Locks.begin(), Locks.end(), Lock);
  if (Found == Locks.end())
    return A;
  Locks.erase(Found);
  return intern(std::move(Locks));
}

LockSetId LockSetRegistry::intersect(LockSetId A, LockSetId B) {
  if (A == B)
    return A;
  if (A == EmptyId || B == EmptyId)
    return EmptyId;
  auto Key = std::minmax(A, B);
  auto Memo = IntersectMemo.find({Key.first, Key.second});
  if (Memo != IntersectMemo.end()) {
    ++Stats.MemoHits;
    return Memo->second;
  }
  ++Stats.MemoMisses;
  const std::vector<SyncId> &SetA = locks(A);
  const std::vector<SyncId> &SetB = locks(B);
  std::vector<SyncId> Result;
  std::set_intersection(SetA.begin(), SetA.end(), SetB.begin(), SetB.end(),
                        std::back_inserter(Result));
  LockSetId Id = intern(std::move(Result));
  IntersectMemo.emplace(std::make_pair(Key.first, Key.second), Id);
  return Id;
}

const std::vector<SyncId> &LockSetRegistry::locks(LockSetId Id) const {
  assert(Id < Sets.size() && "unknown lock-set id");
  return Sets[Id];
}

bool LockSetRegistry::contains(LockSetId Id, SyncId Lock) const {
  const std::vector<SyncId> &Locks = locks(Id);
  return std::binary_search(Locks.begin(), Locks.end(), Lock);
}

std::string LockSetRegistry::str(LockSetId Id) const {
  std::ostringstream OS;
  OS << '{';
  const std::vector<SyncId> &Locks = locks(Id);
  for (size_t I = 0; I < Locks.size(); ++I) {
    if (I)
      OS << ", ";
    OS << 'm' << Locks[I];
  }
  OS << '}';
  return OS.str();
}

const char *grs::race::eraserStateName(EraserState State) {
  switch (State) {
  case EraserState::Virgin:
    return "virgin";
  case EraserState::Exclusive:
    return "exclusive";
  case EraserState::Shared:
    return "shared";
  case EraserState::SharedModified:
    return "shared-modified";
  }
  return "unknown";
}
