//===- race/Event.h - Detector event stream vocabulary ----------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The detector's event vocabulary, exposed as an observable stream.
///
/// Every happens-before-relevant action the runtime reports to the
/// detector (fork/join, sync acquire/release, lock-set bookkeeping, call
/// chain maintenance, memory accesses) is describable as one TraceEvent.
/// An EventObserver installed on a Detector sees the exact event sequence
/// the detector consumes, in consumption order — which makes detection a
/// pure function of the stream: replaying a recorded stream into a fresh
/// Detector reproduces its verdicts (see trace/Offline.h), mirroring the
/// record-once/analyze-at-scale shape of the paper's §3 deployment.
///
/// Annotation kinds (channel send/recv/close, atomic ops) carry no
/// detector state transition of their own — the HB edges they imply are
/// separately visible as Acquire/Release* events — but are recorded so a
/// trace preserves the program-level operation structure GoAT-style
/// offline analyses key on.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RACE_EVENT_H
#define GRS_RACE_EVENT_H

#include "race/Ids.h"

#include <string>

namespace grs {
namespace race {

/// One detector event kind. Values are stable across versions of the
/// binary trace format (append new kinds at the end; never renumber).
enum class EventKind : uint8_t {
  // Goroutine lifecycle.
  RootGoroutine = 0, ///< newRootGoroutine(); allocates the next Tid.
  Fork,              ///< fork(T): T spawns the next Tid.
  Finish,            ///< finish(T).
  Join,              ///< join(T, A): waiter T joins finished goroutine A.
  // Synchronization.
  NewSync,      ///< newSyncVar(Str1): allocates the next SyncId.
  Acquire,      ///< acquire(T, A).
  Release,      ///< release(T, A) — store semantics.
  ReleaseMerge, ///< releaseMerge(T, A) — merge semantics.
  TransferSync, ///< transferSync(A, B).
  LockAcquire,  ///< lockAcquired(T, A, Flag=write-mode).
  LockRelease,  ///< lockReleased(T, A, Flag=write-mode).
  // Call-chain maintenance.
  PushFrame, ///< pushFrame(T, {Str1=function, Str2=file, B=line}).
  PopFrame,  ///< popFrame(T).
  SetLine,   ///< setLine(T, A=line).
  // Memory accesses.
  Read,  ///< onRead(T, A, Str1=variable name).
  Write, ///< onWrite(T, A, Str1=variable name).
  // Pure annotations (no detector state transition; skipped on replay).
  ChannelSend,  ///< T sent on the channel identified by sync id A.
  ChannelRecv,  ///< T received (or began a receive) on channel A.
  ChannelClose, ///< T closed channel A.
  AtomicOp,     ///< T performed an atomic op on address A (Flag=write).
  // Synchronization, continued (appended for trace-format stability;
  // NOT an annotation — replay applies it like the events above).
  DestroySync, ///< destroySyncVar(T, A): sync object A died.
};

/// Number of EventKind values (bounds-checks decoded kinds).
inline constexpr uint8_t NumEventKinds =
    static_cast<uint8_t>(EventKind::DestroySync) + 1;

/// \returns a short printable name for \p Kind.
const char *eventKindName(EventKind Kind);

/// One detector event. A tagged record: which of the generic operand
/// fields are meaningful depends on Kind (see EventKind's comments).
/// String operands are borrowed pointers valid only for the duration of
/// the observer callback — observers that retain events must copy or
/// intern them (trace::TraceSink interns into the trace string table).
struct TraceEvent {
  EventKind Kind = EventKind::RootGoroutine;
  /// Acting goroutine (forking parent for Fork, waiter for Join).
  Tid T = 0;
  /// First operand: address, sync id, target tid, or line, per Kind.
  uint64_t A = 0;
  /// Second operand: transfer destination or frame line, per Kind.
  uint64_t B = 0;
  /// Write-mode bit for lock events; write bit for AtomicOp.
  bool Flag = false;
  /// Borrowed name operands (nullptr means "empty"): variable or sync or
  /// function name in Str1, file name in Str2.
  const std::string *Str1 = nullptr;
  const std::string *Str2 = nullptr;
};

/// Observer interface for the detector's event stream. Installed via
/// Detector::setEventObserver(); called synchronously BEFORE the detector
/// applies each event, so the observed order equals the application order.
class EventObserver {
public:
  virtual ~EventObserver() = default;
  virtual void onTraceEvent(const TraceEvent &Event) = 0;
};

} // namespace race
} // namespace grs

#endif // GRS_RACE_EVENT_H
