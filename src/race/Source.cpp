//===- race/Source.cpp - Interned call chains for race reports ------------===//

#include "race/Source.h"

#include <cassert>
#include <sstream>

using namespace grs::race;

StrId StringInterner::intern(const std::string &Text) {
  auto Found = Index.find(Text);
  if (Found != Index.end())
    return Found->second;
  StrId Id = static_cast<StrId>(Texts.size());
  Texts.push_back(Text);
  Index.emplace(Text, Id);
  return Id;
}

const std::string &StringInterner::text(StrId Id) const {
  assert(Id < Texts.size() && "unknown interned string id");
  return Texts[Id];
}

std::string grs::race::formatChain(const StringInterner &Interner,
                                   const CallChain &Chain, bool WithLines) {
  std::ostringstream OS;
  for (size_t I = 0; I < Chain.size(); ++I) {
    if (I)
      OS << " -> ";
    OS << Interner.text(Chain[I].Function) << "()";
    if (WithLines)
      OS << " [" << Interner.text(Chain[I].File) << ':' << Chain[I].Line
         << ']';
  }
  return OS.str();
}
