//===- race/LockSet.h - Eraser-style lock-set tracking ----------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned lock sets and the Eraser state machine [76]. The Go race
/// detector's ThreadSanitizer runtime "uses a combination of lock-sets and
/// HB based algorithms" (paper §3.1); this module supplies the lock-set
/// half, which the Detector runs alongside (or instead of) vector clocks.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RACE_LOCKSET_H
#define GRS_RACE_LOCKSET_H

#include "race/Ids.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace grs {
namespace race {

/// Id of an interned lock set. Id 0 is always the empty set.
using LockSetId = uint32_t;

/// Interning/memoization efficiency counters, mirrored into the
/// observability registry by obs::DetectorObserver::sync().
struct LockSetStats {
  /// intern() found the set already hash-consed / allocated a new one.
  uint64_t InternHits = 0;
  uint64_t InternMisses = 0;
  /// intersect() answered from the memo table / computed and memoized.
  uint64_t MemoHits = 0;
  uint64_t MemoMisses = 0;
};

/// Hash-consing registry of lock sets, so shadow cells store a 32-bit id
/// instead of a vector, and intersections of common sets are memoized.
class LockSetRegistry {
public:
  LockSetRegistry();

  /// The id of the empty set.
  static constexpr LockSetId EmptyId = 0;

  /// \returns the id of \p Set (sorted, deduplicated internally).
  LockSetId intern(std::vector<SyncId> Locks);

  /// \returns the id of Set(A) with \p Lock added.
  LockSetId withLock(LockSetId A, SyncId Lock);

  /// \returns the id of Set(A) with \p Lock removed.
  LockSetId withoutLock(LockSetId A, SyncId Lock);

  /// \returns the id of Set(A) intersected with Set(B) (memoized).
  LockSetId intersect(LockSetId A, LockSetId B);

  /// \returns the locks in Set(\p Id), sorted ascending.
  const std::vector<SyncId> &locks(LockSetId Id) const;

  bool isEmpty(LockSetId Id) const { return Id == EmptyId; }

  bool contains(LockSetId Id, SyncId Lock) const;

  size_t numInternedSets() const { return Sets.size(); }

  const LockSetStats &stats() const { return Stats; }

  /// Debug rendering like "{m1, m7}".
  std::string str(LockSetId Id) const;

private:
  std::vector<std::vector<SyncId>> Sets;
  std::map<std::vector<SyncId>, LockSetId> Index;
  std::map<std::pair<LockSetId, LockSetId>, LockSetId> IntersectMemo;
  LockSetStats Stats;
};

/// Eraser per-variable ownership state [76]: a variable starts Virgin,
/// becomes Exclusive to its first thread, Shared once a second thread
/// reads it, and SharedModified once a second thread writes; candidate
/// lock sets are only refined (and emptiness only reported) in the shared
/// states, which suppresses initialization false positives.
enum class EraserState : uint8_t {
  Virgin,
  Exclusive,
  Shared,
  SharedModified,
};

/// \returns a printable name for \p State.
const char *eraserStateName(EraserState State);

} // namespace race
} // namespace grs

#endif // GRS_RACE_LOCKSET_H
