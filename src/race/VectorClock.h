//===- race/VectorClock.h - Vector clocks for happens-before ----*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector clocks tracking the happens-before partial order among
/// goroutines, as used by the Go race detector's ThreadSanitizer runtime
/// (paper §3.1; FastTrack [44], Lamport [51]).
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RACE_VECTORCLOCK_H
#define GRS_RACE_VECTORCLOCK_H

#include "race/Ids.h"

#include <string>
#include <vector>

namespace grs {
namespace race {

/// A dense vector clock: component \c get(T) is the latest clock value of
/// goroutine T known to the owner. Components default to zero, and the
/// representation only grows to the highest touched goroutine id.
class VectorClock {
public:
  VectorClock() = default;

  /// \returns the component for goroutine \p T (zero if never set).
  Clock get(Tid T) const {
    return T < Components.size() ? Components[T] : 0;
  }

  /// Sets the component for goroutine \p T to \p Value.
  void set(Tid T, Clock Value);

  /// Increments the component for goroutine \p T by one.
  void tick(Tid T) { set(T, get(T) + 1); }

  /// Element-wise maximum with \p Other (the join of the two clocks).
  void joinWith(const VectorClock &Other);

  /// Element-wise minimum with \p Other (the meet of the two clocks).
  /// Missing components are zero, so the result never outgrows the
  /// shorter operand. Used by the detector's min-clock GC to maintain
  /// the lower bound over all live goroutines' clocks.
  void minWith(const VectorClock &Other);

  /// \returns true if epoch \p E happens-before (or equals) this clock,
  /// i.e. E.Time <= get(E.Id). The FastTrack "E <= C" test.
  bool covers(const Epoch &E) const {
    return E.valid() && E.Time <= get(E.Id);
  }

  /// \returns true if every component of \p Other is <= this clock.
  bool coversAll(const VectorClock &Other) const;

  /// \returns the goroutine id of some component of \p Other that is NOT
  /// covered by this clock, or InvalidTid if all are covered. Used to name
  /// the offending previous reader in read-write race reports.
  Tid firstUncovered(const VectorClock &Other) const;

  /// Clears all components to zero.
  void clear() { Components.clear(); }

  /// Clears all components AND releases the backing storage. clear()
  /// keeps capacity (right for hot-path reuse); reset() is for the GC,
  /// whose whole point is returning the memory.
  void reset() { std::vector<Clock>().swap(Components); }

  /// Number of allocated components (highest touched tid + 1).
  size_t size() const { return Components.size(); }

  /// Debug rendering like "[3, 0, 7]".
  std::string str() const;

  friend bool operator==(const VectorClock &A, const VectorClock &B);

private:
  std::vector<Clock> Components;
};

/// Component-wise equality (missing components compare as zero).
bool operator==(const VectorClock &A, const VectorClock &B);

} // namespace race
} // namespace grs

#endif // GRS_RACE_VECTORCLOCK_H
