//===- race/Ids.h - Core identifier types for race detection ----*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifier vocabulary shared across the detector: goroutine ids, logical
/// clocks, FastTrack epochs, synchronization-object ids, and shadowed
/// memory addresses.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RACE_IDS_H
#define GRS_RACE_IDS_H

#include <cstdint>

namespace grs {
namespace race {

/// Goroutine (logical thread) identifier. Goroutine 0 is the main
/// goroutine of a program under test.
using Tid = uint32_t;

/// Scalar logical clock value within one goroutine's component.
using Clock = uint32_t;

/// Identifier of a synchronization object (mutex, channel, WaitGroup
/// generation, ...). Allocated by the detector via newSyncVar().
using SyncId = uint32_t;

/// Shadowed memory address. Runtime objects use their real address; purely
/// synthetic workloads may use arbitrary distinct integers.
using Addr = uint64_t;

/// Generation counter of a sync-object slot. destroySyncVar() bumps the
/// slot's generation, so a stale SyncId paired with an old generation is
/// distinguishable from the slot's current occupant after free-list reuse.
using SyncGeneration = uint32_t;

/// Invalid/sentinel values.
inline constexpr Tid InvalidTid = ~static_cast<Tid>(0);
inline constexpr SyncId InvalidSyncId = ~static_cast<SyncId>(0);

/// Kind of a shadowed memory access.
enum class AccessKind : uint8_t { Read, Write };

/// \returns a short human-readable name for \p Kind.
inline const char *accessKindName(AccessKind Kind) {
  return Kind == AccessKind::Read ? "read" : "write";
}

/// A FastTrack epoch: one (goroutine, clock) component, the compressed
/// representation of "the last access was by Tid at time Clock".
struct Epoch {
  Tid Id = InvalidTid;
  Clock Time = 0;

  bool valid() const { return Id != InvalidTid; }

  friend bool operator==(const Epoch &A, const Epoch &B) {
    return A.Id == B.Id && A.Time == B.Time;
  }
};

/// Sentinel epoch denoting "no such access yet".
inline constexpr Epoch BottomEpoch{};

} // namespace race
} // namespace grs

#endif // GRS_RACE_IDS_H
