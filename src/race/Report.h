//===- race/Report.h - Data race reports ------------------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Race reports in the shape the paper's pipeline consumes (§3.3): "(1) the
/// conflicting memory address, (2) two call chains of the two conflicting
/// accesses, and (3) the memory access types (read or a write) associated
/// with each access."
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RACE_REPORT_H
#define GRS_RACE_REPORT_H

#include "race/Ids.h"
#include "race/Source.h"

#include <iosfwd>
#include <string>

namespace grs {
namespace race {

/// How the detector concluded the two accesses conflict.
enum class RaceEvidence : uint8_t {
  /// The two accesses are unordered by happens-before (vector clocks).
  HappensBefore,
  /// The candidate lock set of the variable became empty (Eraser). May be
  /// a false positive if ordering was established by non-lock synchronization.
  LockSetEmpty,
};

/// One side of a race: a snapshot of a memory access.
struct AccessSnapshot {
  AccessKind Kind = AccessKind::Read;
  Tid Goroutine = 0;
  Clock Time = 0;
  CallChain Chain;
};

/// A detected data race on one memory location.
struct RaceReport {
  Addr Address = 0;
  /// Optional developer-facing name of the raced object ("myResults",
  /// "errMap.structure", ...). Empty if unnamed.
  std::string VariableName;
  /// The earlier (previous) access in detector observation order.
  AccessSnapshot Previous;
  /// The access that completed the race.
  AccessSnapshot Current;
  RaceEvidence Evidence = RaceEvidence::HappensBefore;

  bool isWriteWrite() const {
    return Previous.Kind == AccessKind::Write &&
           Current.Kind == AccessKind::Write;
  }
};

/// Renders \p Report in the style of the Go race detector's "WARNING: DATA
/// RACE" block.
void printReport(std::ostream &OS, const StringInterner &Interner,
                 const RaceReport &Report);

/// \returns printReport() output as a string.
std::string reportToString(const StringInterner &Interner,
                           const RaceReport &Report);

} // namespace race
} // namespace grs

#endif // GRS_RACE_REPORT_H
