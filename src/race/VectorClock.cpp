//===- race/VectorClock.cpp - Vector clocks for happens-before ------------===//

#include "race/VectorClock.h"

#include <algorithm>
#include <sstream>

using namespace grs::race;

void VectorClock::set(Tid T, Clock Value) {
  if (T >= Components.size())
    Components.resize(T + 1, 0);
  Components[T] = Value;
}

void VectorClock::joinWith(const VectorClock &Other) {
  if (Other.Components.size() > Components.size())
    Components.resize(Other.Components.size(), 0);
  for (size_t I = 0; I < Other.Components.size(); ++I)
    Components[I] = std::max(Components[I], Other.Components[I]);
}

void VectorClock::minWith(const VectorClock &Other) {
  if (Components.size() > Other.Components.size())
    Components.resize(Other.Components.size());
  for (size_t I = 0; I < Components.size(); ++I)
    Components[I] = std::min(Components[I], Other.Components[I]);
}

bool VectorClock::coversAll(const VectorClock &Other) const {
  for (size_t I = 0; I < Other.Components.size(); ++I)
    if (Other.Components[I] > get(static_cast<Tid>(I)))
      return false;
  return true;
}

Tid VectorClock::firstUncovered(const VectorClock &Other) const {
  for (size_t I = 0; I < Other.Components.size(); ++I)
    if (Other.Components[I] > get(static_cast<Tid>(I)))
      return static_cast<Tid>(I);
  return InvalidTid;
}

std::string VectorClock::str() const {
  std::ostringstream OS;
  OS << '[';
  for (size_t I = 0; I < Components.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Components[I];
  }
  OS << ']';
  return OS.str();
}

bool grs::race::operator==(const VectorClock &A, const VectorClock &B) {
  size_t Max = std::max(A.Components.size(), B.Components.size());
  for (size_t I = 0; I < Max; ++I)
    if (A.get(static_cast<Tid>(I)) != B.get(static_cast<Tid>(I)))
      return false;
  return true;
}
