//===- race/Source.h - Interned call chains for race reports ----*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned source locations and call chains. A detected race report
/// carries "two call chains (aka calling contexts or stack traces) of the
/// two conflicting accesses" (paper §3.3); the post-facto pipeline then
/// fingerprints those chains ignoring line numbers (§3.3.1) and assigns
/// ownership from their root frames (§3.3.2).
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RACE_SOURCE_H
#define GRS_RACE_SOURCE_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace grs {
namespace race {

/// Interned string id. Ids are dense and stable for the interner lifetime.
using StrId = uint32_t;

/// Bidirectional string interner for function and file names.
class StringInterner {
public:
  /// Interns \p Text, returning its stable id.
  StrId intern(const std::string &Text);

  /// \returns the text for \p Id; \p Id must have been produced by this
  /// interner.
  const std::string &text(StrId Id) const;

  size_t size() const { return Texts.size(); }

private:
  std::unordered_map<std::string, StrId> Index;
  std::vector<std::string> Texts;
};

/// One stack frame: function, file, line. Function and file are interner
/// ids resolved against the detector's interner.
struct Frame {
  StrId Function = 0;
  StrId File = 0;
  uint32_t Line = 0;

  friend bool operator==(const Frame &A, const Frame &B) {
    return A.Function == B.Function && A.File == B.File && A.Line == B.Line;
  }
};

/// A calling context, root first (index 0 is the outermost caller, the
/// frame whose author the pipeline prefers as assignee).
using CallChain = std::vector<Frame>;

/// Renders \p Chain as "Root() -> Mid() -> Leaf()" with optional
/// file:line suffixes.
std::string formatChain(const StringInterner &Interner,
                        const CallChain &Chain, bool WithLines);

} // namespace race
} // namespace grs

#endif // GRS_RACE_SOURCE_H
