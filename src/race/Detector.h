//===- race/Detector.h - Dynamic data race detector -------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic data race detector. Mirrors the Go race detector's
/// ThreadSanitizer runtime (paper §3.1), which "uses a combination of
/// lock-sets [76] and HB [44, 66] based algorithms to report races":
///
///  * Happens-before analysis uses one vector clock per goroutine and
///    FastTrack-style adaptive shadow cells (last-write epoch; last-read
///    epoch promoted to a read vector clock only under concurrent reads).
///  * Lock-set analysis implements the Eraser state machine with interned
///    candidate lock sets, refined separately for read locks (RLock) and
///    write locks (Lock).
///
/// The detector is event-driven: the Go-like runtime (src/rt) feeds it
/// fork/join, acquire/release, channel, and memory-access events. It is
/// deliberately single-threaded — the runtime serializes all goroutines
/// onto one OS thread (see rt/Scheduler.h), so the detector models
/// concurrency without experiencing it.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RACE_DETECTOR_H
#define GRS_RACE_DETECTOR_H

#include "race/Event.h"
#include "race/Ids.h"
#include "race/LockSet.h"
#include "race/Report.h"
#include "race/Source.h"
#include "race/VectorClock.h"

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace grs {
namespace race {

/// Which algorithm(s) drive race reports.
enum class DetectMode : uint8_t {
  /// Pure happens-before via vector clocks (what the stock Go detector
  /// reports; precise for the observed execution).
  HappensBefore,
  /// Pure Eraser lock-sets ("may include races that may never manifest in
  /// practice", §3.1).
  LockSetOnly,
  /// HB races plus lockset-empty findings not already HB-racy, labelled
  /// with their weaker evidence.
  Hybrid,
};

/// Detector construction options.
struct DetectorOptions {
  DetectMode Mode = DetectMode::HappensBefore;
  /// Report at most one race per shadowed address per evidence kind
  /// (the Go detector similarly throttles repeated reports).
  bool ReportOncePerAddress = true;
  /// Hard cap on emitted reports; 0 means unlimited.
  size_t MaxReports = 0;
  /// When false, shadow cells do not retain call chains (cheaper; used by
  /// the overhead ablation benchmark).
  bool KeepChains = true;
  /// When false, disables FastTrack's adaptive representation: no
  /// same-epoch fast paths, and read state is kept as a full vector clock
  /// from the first read. Reports are identical; only cost differs. This
  /// is the "vector clocks are expensive in space and time" ablation.
  bool EpochOptimization = true;
};

/// Aggregate counters for the overhead study (§3.5) and ablation benches.
struct DetectorStats {
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t SyncOps = 0;
  uint64_t SameEpochFastPath = 0;
  uint64_t ReadSharePromotions = 0;
  uint64_t RacesReported = 0;
  uint64_t ShadowCells = 0;
  /// Eraser shadow-state transitions (Virgin->Exclusive, ->Shared,
  /// ->SharedModified); only the lock-set algorithm drives these.
  uint64_t EraserTransitions = 0;
  /// Reports dropped by the once-per-address / MaxReports throttles —
  /// the §3.3.1 per-run analogue of the pipeline's dedup suppression.
  uint64_t ReportsSuppressed = 0;
};

/// Shadow-memory footprint: how much state the detector is holding RIGHT
/// NOW, in the units the FastTrack cost model is priced in (§3.5's
/// "significant memory overheads to maintain vector clocks"). Computed by
/// Detector::footprint() as a walk over live state — a gauge, where
/// DetectorStats carries monotone counters.
struct ShadowFootprint {
  /// Live shadow cells (one per instrumented address ever touched).
  uint64_t ShadowCells = 0;
  /// Allocated vector-clock components, summed over goroutine clocks,
  /// sync-object clocks, and promoted read vector clocks. The number the
  /// EpochOptimization ablation exists to shrink.
  uint64_t VcWords = 0;
  /// Bytes of retained call-chain frames: per-cell write/read/shared
  /// chains plus the live per-goroutine stacks. 0 when KeepChains=false.
  uint64_t ChainBytes = 0;
};

/// The dynamic race detector. See file comment.
class Detector {
public:
  using ReportSink = std::function<void(const RaceReport &)>;

  explicit Detector(DetectorOptions Opts = DetectorOptions());
  ~Detector();

  Detector(const Detector &) = delete;
  Detector &operator=(const Detector &) = delete;

  //===------------------------------------------------------------------===//
  // Goroutine lifecycle
  //===------------------------------------------------------------------===//

  /// Registers a new root goroutine with no happens-before predecessor
  /// (used for goroutine 0 / main).
  Tid newRootGoroutine();

  /// Registers a goroutine forked by \p Parent: the `go` statement
  /// happens-before the child's first action.
  Tid fork(Tid Parent);

  /// Records that \p T finished; its final clock becomes joinable.
  void finish(Tid T);

  /// Establishes finished-\p Target happens-before the next action of
  /// \p Waiter (e.g. channel-signalled join or WaitGroup wait).
  void join(Tid Waiter, Tid Target);

  /// Number of goroutines ever registered.
  size_t numGoroutines() const;

  //===------------------------------------------------------------------===//
  // Synchronization events
  //===------------------------------------------------------------------===//

  /// Allocates a fresh synchronization object (its clock starts empty).
  /// \p Name is used in diagnostics only.
  SyncId newSyncVar(const std::string &Name = std::string());

  /// Acquire edge: joins the sync object's clock into \p T's clock.
  void acquire(Tid T, SyncId S);

  /// Release edge (store semantics): the sync object's clock becomes a
  /// copy of \p T's clock. Use for plain mutex unlock.
  void release(Tid T, SyncId S);

  /// Release edge (merge semantics): the sync object's clock joins with
  /// \p T's clock. Use when several goroutines release concurrently and
  /// all must happen-before the next acquirer (WaitGroup.Done, channel
  /// send, RUnlock).
  void releaseMerge(Tid T, SyncId S);

  /// Joins sync var \p From's clock into \p To without involving any
  /// goroutine — used when buffered channel machinery moves a parked
  /// sender's publication into a buffer slot on its behalf.
  void transferSync(SyncId From, SyncId To);

  /// Mutex bookkeeping for the lock-set algorithm. \p WriteMode is true
  /// for Lock/Unlock and false for RLock/RUnlock. These do NOT create HB
  /// edges by themselves; the runtime pairs them with acquire()/release*().
  void lockAcquired(Tid T, SyncId S, bool WriteMode);
  void lockReleased(Tid T, SyncId S, bool WriteMode);

  /// \returns the set of (write-mode) locks currently held by \p T.
  LockSetId heldWriteLocks(Tid T) const;
  /// \returns all locks (read- or write-mode) currently held by \p T.
  LockSetId heldAllLocks(Tid T) const;

  //===------------------------------------------------------------------===//
  // Call-chain maintenance
  //===------------------------------------------------------------------===//

  /// Builds an interned frame.
  Frame makeFrame(const std::string &Function, const std::string &File,
                  uint32_t Line);

  /// Pushes/pops \p T's current call chain (root first).
  void pushFrame(Tid T, const Frame &F);
  void popFrame(Tid T);

  /// Updates the line number of \p T's innermost frame (statement-level
  /// positions inside one function).
  void setLine(Tid T, uint32_t Line);

  const CallChain &currentChain(Tid T) const;

  //===------------------------------------------------------------------===//
  // Memory accesses
  //===------------------------------------------------------------------===//

  /// Instrumented read of \p A by \p T. \p Name optionally labels the
  /// object for reports. \returns true if a race was reported.
  bool onRead(Tid T, Addr A, const std::string &Name = std::string());

  /// Instrumented write; see onRead().
  bool onWrite(Tid T, Addr A, const std::string &Name = std::string());

  //===------------------------------------------------------------------===//
  // Results
  //===------------------------------------------------------------------===//

  /// Installs a callback invoked at each report, in addition to the
  /// internal report list.
  void setReportSink(ReportSink Sink) { Sink_ = std::move(Sink); }

  //===------------------------------------------------------------------===//
  // Event stream (trace capture)
  //===------------------------------------------------------------------===//

  /// Installs an observer that sees every detector event (see
  /// race/Event.h) immediately before it is applied; pass nullptr to
  /// detach. The observer is borrowed and must outlive its installation.
  /// Replaying the observed sequence into a fresh Detector with the same
  /// DetectorOptions reproduces this detector's verdicts exactly.
  void setEventObserver(EventObserver *Observer) { Observer_ = Observer; }
  EventObserver *eventObserver() const { return Observer_; }

  /// Forwards a pure annotation event (channel ops, atomic ops) to the
  /// observer. No detector state changes; no-op when no observer is
  /// installed. \p Name is borrowed for the duration of the call.
  void annotate(EventKind Kind, Tid T, uint64_t A, bool Flag = false,
                const std::string *Name = nullptr);

  const std::vector<RaceReport> &reports() const { return Reports; }
  const DetectorStats &stats() const { return Stats; }

  /// Current shadow-memory footprint (walks live state; O(cells +
  /// goroutines + sync vars), so sample at serial points, not per access).
  ShadowFootprint footprint() const;

  StringInterner &interner() { return Interner; }
  const StringInterner &interner() const { return Interner; }

  LockSetRegistry &lockSets() { return LockSets; }
  const LockSetRegistry &lockSets() const { return LockSets; }

  /// Direct read of \p T's vector clock (tests and diagnostics).
  const VectorClock &clockOf(Tid T) const;

  /// \returns true if the detector has a shadow cell for \p A; primarily
  /// for tests.
  bool hasShadow(Addr A) const;

private:
  struct ThreadState;
  struct ShadowCell;

  ThreadState &thread(Tid T);
  const ThreadState &thread(Tid T) const;
  ShadowCell &shadowCell(Addr A);

  /// Allocates the thread-state slot shared by newRootGoroutine() and
  /// fork() (so each emits exactly one event for the allocation).
  Tid allocThread();
  void observe(EventKind Kind, Tid T, uint64_t A = 0, uint64_t B = 0,
               bool Flag = false, const std::string *Str1 = nullptr,
               const std::string *Str2 = nullptr);

  void emitReport(RaceReport Report, ShadowCell &Cell);
  bool checkHbRead(Tid T, Addr A, ShadowCell &Cell);
  bool checkHbWrite(Tid T, Addr A, ShadowCell &Cell);
  bool applyEraser(Tid T, Addr A, AccessKind Kind, ShadowCell &Cell);
  AccessSnapshot snapshotCurrent(Tid T, AccessKind Kind) const;

  DetectorOptions Opts;
  std::vector<ThreadState> Threads;
  std::vector<VectorClock> SyncClocks;
  std::vector<std::string> SyncNames;
  std::unordered_map<Addr, ShadowCell> Shadow;
  LockSetRegistry LockSets;
  StringInterner Interner;
  std::vector<RaceReport> Reports;
  ReportSink Sink_;
  EventObserver *Observer_ = nullptr;
  DetectorStats Stats;
};

} // namespace race
} // namespace grs

#endif // GRS_RACE_DETECTOR_H
