//===- race/Detector.h - Dynamic data race detector -------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic data race detector. Mirrors the Go race detector's
/// ThreadSanitizer runtime (paper §3.1), which "uses a combination of
/// lock-sets [76] and HB [44, 66] based algorithms to report races":
///
///  * Happens-before analysis uses one vector clock per goroutine and
///    FastTrack-style adaptive shadow cells (last-write epoch; last-read
///    epoch promoted to a read vector clock only under concurrent reads).
///  * Lock-set analysis implements the Eraser state machine with interned
///    candidate lock sets, refined separately for read locks (RLock) and
///    write locks (Lock).
///
/// The detector is event-driven: the Go-like runtime (src/rt) feeds it
/// fork/join, acquire/release, channel, and memory-access events. It is
/// deliberately single-threaded — the runtime serializes all goroutines
/// onto one OS thread (see rt/Scheduler.h), so the detector models
/// concurrency without experiencing it.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_RACE_DETECTOR_H
#define GRS_RACE_DETECTOR_H

#include "race/Event.h"
#include "race/Ids.h"
#include "race/LockSet.h"
#include "race/Report.h"
#include "race/Source.h"
#include "race/VectorClock.h"

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace grs {
namespace race {

/// Which algorithm(s) drive race reports.
enum class DetectMode : uint8_t {
  /// Pure happens-before via vector clocks (what the stock Go detector
  /// reports; precise for the observed execution).
  HappensBefore,
  /// Pure Eraser lock-sets ("may include races that may never manifest in
  /// practice", §3.1).
  LockSetOnly,
  /// HB races plus lockset-empty findings not already HB-racy, labelled
  /// with their weaker evidence.
  Hybrid,
};

/// Shadow-state garbage collection policy. MinClock is what Valgrind's
/// DRD calls discarding "ordered segments": state ordered before the
/// component-wise minimum over all live goroutines' clocks can never
/// again participate in a race (every future accessor inherits at least
/// that minimum via fork), so it is reclaimed. GC is verdict-neutral by
/// construction — see DESIGN.md §13 for the safety argument.
enum class GcMode : uint8_t {
  /// Never reclaim (the detector exactly as it behaves with GC compiled
  /// out; the differential battery's baseline).
  Off,
  /// Min-clock reclamation of dominated shadow state (default).
  MinClock,
};

/// Detector construction options.
struct DetectorOptions {
  DetectMode Mode = DetectMode::HappensBefore;
  /// Report at most one race per shadowed address per evidence kind
  /// (the Go detector similarly throttles repeated reports).
  bool ReportOncePerAddress = true;
  /// Hard cap on emitted reports; 0 means unlimited.
  size_t MaxReports = 0;
  /// When false, shadow cells do not retain call chains (cheaper; used by
  /// the overhead ablation benchmark).
  bool KeepChains = true;
  /// When false, disables FastTrack's adaptive representation: no
  /// same-epoch fast paths, and read state is kept as a full vector clock
  /// from the first read. Reports are identical; only cost differs. This
  /// is the "vector clocks are expensive in space and time" ablation.
  bool EpochOptimization = true;
  /// Shadow-state garbage collection policy (see GcMode).
  GcMode Gc = GcMode::MinClock;
  /// Run a full collection every this many counted detector events
  /// (memory accesses + sync ops); 0 disables the periodic sweep, leaving
  /// only the cheap min-clock refresh at finish()/join(). GC never
  /// changes verdicts, so this knob trades peak memory against sweep
  /// overhead only.
  uint64_t GcIntervalEvents = 4096;
};

/// Aggregate counters for the overhead study (§3.5) and ablation benches.
struct DetectorStats {
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t SyncOps = 0;
  uint64_t SameEpochFastPath = 0;
  uint64_t ReadSharePromotions = 0;
  uint64_t RacesReported = 0;
  uint64_t ShadowCells = 0;
  /// Eraser shadow-state transitions (Virgin->Exclusive, ->Shared,
  /// ->SharedModified); only the lock-set algorithm drives these.
  uint64_t EraserTransitions = 0;
  /// Reports dropped by the once-per-address / MaxReports throttles —
  /// the §3.3.1 per-run analogue of the pipeline's dedup suppression.
  uint64_t ReportsSuppressed = 0;

  // Shadow-state GC (GcMode::MinClock) and sync-object lifecycle.
  /// Full min-clock collections performed.
  uint64_t GcRuns = 0;
  /// Shadow cells retired into the compact dominated set.
  uint64_t GcCellsRetired = 0;
  /// Vector-clock components freed (dominated read VCs, dead or dominated
  /// sync clocks, trimmed finished-thread clocks).
  uint64_t GcVcWordsReclaimed = 0;
  /// Bytes of call-chain frames freed from dominated shadow state.
  uint64_t GcChainBytesReclaimed = 0;
  /// Sync-object clocks emptied (destroyed objects plus live clocks fully
  /// dominated by the min clock).
  uint64_t GcSyncClocksFreed = 0;
  /// Finished goroutines whose clock + chain were trimmed after their
  /// join edge was consumed (clock dominated by the min clock).
  uint64_t GcThreadsTrimmed = 0;
  /// destroySyncVar() notifications accepted.
  uint64_t SyncVarsDestroyed = 0;
  /// newSyncVar() allocations satisfied from the destroy free list.
  uint64_t SyncIdsReused = 0;
  /// Sync operations referencing an already-destroyed sync object
  /// (benignly ignored; nonzero means the program under test used a
  /// sync object after its owner destroyed it).
  uint64_t DeadSyncOps = 0;
};

/// Shadow-memory footprint: how much state the detector is holding RIGHT
/// NOW, in the units the FastTrack cost model is priced in (§3.5's
/// "significant memory overheads to maintain vector clocks"). Computed by
/// Detector::footprint() as a walk over live state — a gauge, where
/// DetectorStats carries monotone counters.
struct ShadowFootprint {
  /// Live shadow cells (one per instrumented address ever touched).
  uint64_t ShadowCells = 0;
  /// Allocated vector-clock components, summed over goroutine clocks,
  /// sync-object clocks, and promoted read vector clocks. The number the
  /// EpochOptimization ablation exists to shrink.
  uint64_t VcWords = 0;
  /// Bytes of retained call-chain frames: per-cell write/read/shared
  /// chains plus the live per-goroutine stacks. 0 when KeepChains=false.
  uint64_t ChainBytes = 0;

  /// Compact records of retired (fully dominated) cells — a few bytes
  /// each, kept so re-access rebuilds deterministically with the original
  /// ReportOnce flags and variable name.
  uint64_t RetiredCells = 0;
  /// Monotone high-water marks of the live numbers above. The detector
  /// samples live state into these before every collection, so a gauge
  /// scrape that straddles a GC cycle still sees the pre-GC peak — this
  /// is what keeps the obs `grs_detector_shadow_*_peak` gauges monotone.
  uint64_t PeakShadowCells = 0;
  uint64_t PeakVcWords = 0;
  uint64_t PeakChainBytes = 0;
  /// Reclaimed-to-date counters (mirrors DetectorStats): live + reclaimed
  /// is the GC-off footprint the detector WOULD be holding.
  uint64_t ReclaimedCells = 0;
  uint64_t ReclaimedVcWords = 0;
  uint64_t ReclaimedChainBytes = 0;
};

/// The dynamic race detector. See file comment.
class Detector {
public:
  using ReportSink = std::function<void(const RaceReport &)>;

  explicit Detector(DetectorOptions Opts = DetectorOptions());
  ~Detector();

  Detector(const Detector &) = delete;
  Detector &operator=(const Detector &) = delete;

  //===------------------------------------------------------------------===//
  // Goroutine lifecycle
  //===------------------------------------------------------------------===//

  /// Registers a new root goroutine with no happens-before predecessor
  /// (used for goroutine 0 / main).
  Tid newRootGoroutine();

  /// Registers a goroutine forked by \p Parent: the `go` statement
  /// happens-before the child's first action.
  Tid fork(Tid Parent);

  /// Records that \p T finished; its final clock becomes joinable.
  void finish(Tid T);

  /// Establishes finished-\p Target happens-before the next action of
  /// \p Waiter (e.g. channel-signalled join or WaitGroup wait).
  void join(Tid Waiter, Tid Target);

  /// Number of goroutines ever registered.
  size_t numGoroutines() const;

  //===------------------------------------------------------------------===//
  // Synchronization events
  //===------------------------------------------------------------------===//

  /// Allocates a fresh synchronization object (its clock starts empty).
  /// \p Name is used in diagnostics only.
  SyncId newSyncVar(const std::string &Name = std::string());

  /// Acquire edge: joins the sync object's clock into \p T's clock.
  void acquire(Tid T, SyncId S);

  /// Release edge (store semantics): the sync object's clock becomes a
  /// copy of \p T's clock. Use for plain mutex unlock.
  void release(Tid T, SyncId S);

  /// Release edge (merge semantics): the sync object's clock joins with
  /// \p T's clock. Use when several goroutines release concurrently and
  /// all must happen-before the next acquirer (WaitGroup.Done, channel
  /// send, RUnlock).
  void releaseMerge(Tid T, SyncId S);

  /// Joins sync var \p From's clock into \p To without involving any
  /// goroutine — used when buffered channel machinery moves a parked
  /// sender's publication into a buffer slot on its behalf.
  void transferSync(SyncId From, SyncId To);

  /// Declares sync object \p S dead: the runtime calls this when the
  /// owning channel/mutex/WaitGroup is destroyed, with \p T the goroutine
  /// running the destructor. The slot's clock is freed immediately and
  /// its generation bumped; ids never passed to lockAcquired() become
  /// reusable by newSyncVar() (locked ids are NOT reused so a stale id in
  /// an Eraser candidate set can never alias a new lock). Destroying an
  /// already-dead or unknown id is a benign no-op. Independent of GcMode,
  /// so a captured trace replays identically under either GC setting.
  void destroySyncVar(Tid T, SyncId S);

  /// \returns true if \p S names a currently-live sync object.
  bool syncVarLive(SyncId S) const;

  /// \returns the generation of slot \p S (bumped by each destroy).
  SyncGeneration syncVarGeneration(SyncId S) const;

  /// Number of sync-object slots ever allocated (free-list reuse keeps
  /// this below the newSyncVar() call count).
  size_t numSyncVarSlots() const { return SyncClocks.size(); }

  /// Mutex bookkeeping for the lock-set algorithm. \p WriteMode is true
  /// for Lock/Unlock and false for RLock/RUnlock. These do NOT create HB
  /// edges by themselves; the runtime pairs them with acquire()/release*().
  void lockAcquired(Tid T, SyncId S, bool WriteMode);
  void lockReleased(Tid T, SyncId S, bool WriteMode);

  /// \returns the set of (write-mode) locks currently held by \p T.
  LockSetId heldWriteLocks(Tid T) const;
  /// \returns all locks (read- or write-mode) currently held by \p T.
  LockSetId heldAllLocks(Tid T) const;

  //===------------------------------------------------------------------===//
  // Call-chain maintenance
  //===------------------------------------------------------------------===//

  /// Builds an interned frame.
  Frame makeFrame(const std::string &Function, const std::string &File,
                  uint32_t Line);

  /// Pushes/pops \p T's current call chain (root first).
  void pushFrame(Tid T, const Frame &F);
  void popFrame(Tid T);

  /// Updates the line number of \p T's innermost frame (statement-level
  /// positions inside one function).
  void setLine(Tid T, uint32_t Line);

  const CallChain &currentChain(Tid T) const;

  //===------------------------------------------------------------------===//
  // Memory accesses
  //===------------------------------------------------------------------===//

  /// Instrumented read of \p A by \p T. \p Name optionally labels the
  /// object for reports. \returns true if a race was reported.
  bool onRead(Tid T, Addr A, const std::string &Name = std::string());

  /// Instrumented write; see onRead().
  bool onWrite(Tid T, Addr A, const std::string &Name = std::string());

  //===------------------------------------------------------------------===//
  // Results
  //===------------------------------------------------------------------===//

  /// Installs a callback invoked at each report, in addition to the
  /// internal report list.
  void setReportSink(ReportSink Sink) { Sink_ = std::move(Sink); }

  //===------------------------------------------------------------------===//
  // Event stream (trace capture)
  //===------------------------------------------------------------------===//

  /// Installs an observer that sees every detector event (see
  /// race/Event.h) immediately before it is applied; pass nullptr to
  /// detach. The observer is borrowed and must outlive its installation.
  /// Replaying the observed sequence into a fresh Detector with the same
  /// DetectorOptions reproduces this detector's verdicts exactly.
  void setEventObserver(EventObserver *Observer) { Observer_ = Observer; }
  EventObserver *eventObserver() const { return Observer_; }

  /// Forwards a pure annotation event (channel ops, atomic ops) to the
  /// observer. No detector state changes; no-op when no observer is
  /// installed. \p Name is borrowed for the duration of the call.
  void annotate(EventKind Kind, Tid T, uint64_t A, bool Flag = false,
                const std::string *Name = nullptr);

  const std::vector<RaceReport> &reports() const { return Reports; }
  const DetectorStats &stats() const { return Stats; }

  /// Current shadow-memory footprint (walks live state; O(cells +
  /// goroutines + sync vars), so sample at serial points, not per access).
  ShadowFootprint footprint() const;

  StringInterner &interner() { return Interner; }
  const StringInterner &interner() const { return Interner; }

  LockSetRegistry &lockSets() { return LockSets; }
  const LockSetRegistry &lockSets() const { return LockSets; }

  /// Direct read of \p T's vector clock (tests and diagnostics).
  const VectorClock &clockOf(Tid T) const;

  /// \returns true if the detector has a shadow cell for \p A; primarily
  /// for tests.
  bool hasShadow(Addr A) const;

  //===------------------------------------------------------------------===//
  // Shadow-state garbage collection
  //===------------------------------------------------------------------===//

  /// Forces a full collection right now (tests and benches; the detector
  /// otherwise collects every GcIntervalEvents events). No-op when
  /// Opts.Gc == GcMode::Off. GC is verdict-neutral, so forcing it at any
  /// point never changes subsequent reports.
  void gcNow();

  /// The maintained component-wise minimum over live goroutines' clocks
  /// (empty = nothing provably dominated yet); tests and diagnostics.
  const VectorClock &minClock() const { return MinClock; }

private:
  struct ThreadState;
  struct ShadowCell;

  ThreadState &thread(Tid T);
  const ThreadState &thread(Tid T) const;
  ShadowCell &shadowCell(Addr A);

  /// Allocates the thread-state slot shared by newRootGoroutine() and
  /// fork() (so each emits exactly one event for the allocation).
  Tid allocThread();
  void observe(EventKind Kind, Tid T, uint64_t A = 0, uint64_t B = 0,
               bool Flag = false, const std::string *Str1 = nullptr,
               const std::string *Str2 = nullptr);

  void emitReport(RaceReport Report, ShadowCell &Cell);
  bool checkHbRead(Tid T, Addr A, ShadowCell &Cell);
  bool checkHbWrite(Tid T, Addr A, ShadowCell &Cell);
  bool applyEraser(Tid T, Addr A, AccessKind Kind, ShadowCell &Cell);
  AccessSnapshot snapshotCurrent(Tid T, AccessKind Kind) const;

  // Min-clock GC internals (Detector.cpp has the per-step safety
  // argument; DESIGN.md §13 the full one).
  void countEvent();
  void maybeRefreshMinClock();
  void refreshMinClock();
  void trimDominatedThreads();
  void sweepSyncClocks();
  void sweepShadow();
  void notePeaks();
  bool epochDominated(const Epoch &E) const {
    return E.valid() && MinClock.covers(E);
  }

  /// Compact residue of a retired shadow cell: everything a rebuilt cell
  /// needs to behave identically to the never-collected one. Cells whose
  /// residue would be all-default are not recorded at all.
  struct RetiredCell {
    uint32_t NameId = 0; ///< Interned variable name ("" when unnamed).
    bool ReadShared = false;
    bool ReportedHb = false;
    bool ReportedLs = false;
  };

  DetectorOptions Opts;
  std::vector<ThreadState> Threads;
  std::vector<VectorClock> SyncClocks;
  std::vector<std::string> SyncNames;
  std::unordered_map<Addr, ShadowCell> Shadow;
  LockSetRegistry LockSets;
  StringInterner Interner;
  std::vector<RaceReport> Reports;
  ReportSink Sink_;
  EventObserver *Observer_ = nullptr;
  DetectorStats Stats;

  // Sync-object lifecycle (active in every GcMode so traces replay
  // identically across GC settings).
  std::vector<uint8_t> SyncAlive;
  std::vector<uint8_t> SyncEverLocked;
  std::vector<SyncGeneration> SyncGen;
  std::vector<SyncId> SyncFree;

  // Min-clock GC state (GcMode::MinClock only). The two id lists are
  // maintained in every mode (a push/pop per lifecycle event) so the
  // refresh and trim walks touch only live or recently-finished
  // goroutines instead of every ThreadState ever created.
  std::vector<Tid> LiveThreads;
  std::vector<Tid> UntrimmedFinished;
  VectorClock MinClock;
  uint64_t EventsSinceGc = 0;
  /// Counted events since the last min-clock refresh; gates the eager
  /// finish/join refresh so fork/join loops stay linear.
  uint64_t EventsSinceRefresh = 0;
  std::unordered_map<Addr, RetiredCell> Retired;
  /// High-water marks of the live footprint, sampled before each
  /// collection and lazily max-merged in footprint().
  mutable uint64_t PeakCells = 0, PeakVcWords = 0, PeakChainBytes = 0;
};

} // namespace race
} // namespace grs

#endif // GRS_RACE_DETECTOR_H
