//===- race/Report.cpp - Data race reports --------------------------------===//

#include "race/Report.h"

#include <ostream>
#include <sstream>

using namespace grs::race;

static void printAccess(std::ostream &OS, const StringInterner &Interner,
                        const AccessSnapshot &Access, const char *Label) {
  OS << "  " << Label << ' ' << accessKindName(Access.Kind)
     << " by goroutine " << Access.Goroutine << " (clock " << Access.Time
     << "):\n";
  // Leaf (innermost) frame first, like a stack trace.
  for (size_t I = Access.Chain.size(); I > 0; --I) {
    const Frame &F = Access.Chain[I - 1];
    OS << "      " << Interner.text(F.Function) << "()\n"
       << "          " << Interner.text(F.File) << ':' << F.Line << '\n';
  }
}

void grs::race::printReport(std::ostream &OS, const StringInterner &Interner,
                            const RaceReport &Report) {
  OS << "==================\n";
  OS << "WARNING: DATA RACE";
  if (Report.Evidence == RaceEvidence::LockSetEmpty)
    OS << " (lock-set evidence; may be benign)";
  OS << '\n';
  OS << "  address 0x" << std::hex << Report.Address << std::dec;
  if (!Report.VariableName.empty())
    OS << " (" << Report.VariableName << ')';
  OS << '\n';
  printAccess(OS, Interner, Report.Current, "Conflicting");
  printAccess(OS, Interner, Report.Previous, "Previous");
  OS << "==================\n";
}

std::string grs::race::reportToString(const StringInterner &Interner,
                                      const RaceReport &Report) {
  std::ostringstream OS;
  printReport(OS, Interner, Report);
  return OS.str();
}
