//===- race/Event.cpp - Detector event stream vocabulary ------------------===//

#include "race/Event.h"

using namespace grs::race;

const char *grs::race::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::RootGoroutine:
    return "root-goroutine";
  case EventKind::Fork:
    return "fork";
  case EventKind::Finish:
    return "finish";
  case EventKind::Join:
    return "join";
  case EventKind::NewSync:
    return "new-sync";
  case EventKind::Acquire:
    return "acquire";
  case EventKind::Release:
    return "release";
  case EventKind::ReleaseMerge:
    return "release-merge";
  case EventKind::TransferSync:
    return "transfer-sync";
  case EventKind::LockAcquire:
    return "lock-acquire";
  case EventKind::LockRelease:
    return "lock-release";
  case EventKind::PushFrame:
    return "push-frame";
  case EventKind::PopFrame:
    return "pop-frame";
  case EventKind::SetLine:
    return "set-line";
  case EventKind::Read:
    return "read";
  case EventKind::Write:
    return "write";
  case EventKind::ChannelSend:
    return "chan-send";
  case EventKind::ChannelRecv:
    return "chan-recv";
  case EventKind::ChannelClose:
    return "chan-close";
  case EventKind::AtomicOp:
    return "atomic-op";
  case EventKind::DestroySync:
    return "destroy-sync";
  }
  return "unknown";
}
