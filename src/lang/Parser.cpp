//===- lang/Parser.cpp - Recursive-descent parser for grs -----------------===//

#include "lang/Parser.h"

#include <utility>

using namespace grs;
using namespace grs::lang;

namespace {

/// Internal control-flow sentinel: thrown on a parse error, caught at the
/// nearest statement boundary where recovery resumes. Never escapes
/// parseProgram.
struct Bail {};

class Parser {
public:
  Parser(std::vector<Token> Tokens, std::vector<Diag> LexDiags,
         std::string FileName)
      : Toks(std::move(Tokens)), Diags(std::move(LexDiags)) {
    Prog = std::make_shared<Program>();
    Prog->FileName = std::move(FileName);
  }

  ParseResult run() {
    while (cur().K != Tok::Eof) {
      if (cur().K == Tok::Semi) {
        advance();
        continue;
      }
      if (cur().K != Tok::KwFunc) {
        // diag(), not error(): there is no enclosing statement boundary
        // to catch a Bail here, so record and sync in place.
        diag(cur(), std::string("expected 'func' at top level, found ") +
                        tokName(cur().K));
        while (cur().K != Tok::Eof && cur().K != Tok::KwFunc)
          advance();
        continue;
      }
      try {
        Prog->Funcs.push_back(parseFuncLit(/*TopLevel=*/true));
      } catch (const Bail &) {
        syncTopLevel();
      }
    }
    ParseResult R;
    R.Prog = std::move(Prog);
    R.Diags = std::move(Diags);
    return R;
  }

private:
  std::vector<Token> Toks;
  std::vector<Diag> Diags;
  std::shared_ptr<Program> Prog;
  size_t P = 0;
  /// Defensive backstop so no malformed input can loop forever; every
  /// recovery path consumes a token, so real programs never get close.
  int Fuel = 1 << 20;
  static constexpr size_t MaxDiags = 50;

  const Token &cur() const { return Toks[P]; }
  const Token &peek() const {
    return Toks[P + 1 < Toks.size() ? P + 1 : Toks.size() - 1];
  }

  void advance() {
    if (--Fuel <= 0)
      P = Toks.size() - 1; // Jump to Eof.
    else if (P + 1 < Toks.size())
      ++P;
  }

  void diag(const Token &At, std::string Msg) {
    if (Diags.size() >= MaxDiags) {
      P = Toks.size() - 1; // Diag flood: stop parsing, keep what we have.
      return;
    }
    Diags.push_back(Diag{At.Line, At.Col, std::move(Msg)});
  }

  [[noreturn]] void error(const Token &At, std::string Msg) {
    diag(At, std::move(Msg));
    throw Bail{};
  }

  Token expect(Tok K, const char *Context) {
    if (cur().K != K)
      error(cur(), std::string("expected ") + tokName(K) + " " + Context +
                       ", found " + tokName(cur().K));
    Token T = cur();
    advance();
    return T;
  }

  /// Statement-level recovery: skip to the next ';' or '}' boundary,
  /// always consuming at least one token.
  void syncStmt() {
    if (cur().K != Tok::Eof)
      advance();
    while (cur().K != Tok::Eof && cur().K != Tok::Semi &&
           cur().K != Tok::RBrace)
      advance();
    if (cur().K == Tok::Semi)
      advance();
  }

  void syncTopLevel() {
    while (cur().K != Tok::Eof && cur().K != Tok::KwFunc)
      advance();
  }

  static Pos posOf(const Token &T) { return Pos{T.Line, T.Col}; }

  // --- Functions ---------------------------------------------------------

  std::shared_ptr<FuncLit> parseFuncLit(bool TopLevel) {
    Token FuncTok = expect(Tok::KwFunc, "to begin function");
    auto F = std::make_shared<FuncLit>();
    F->P = posOf(FuncTok);
    if (cur().K == Tok::Ident) {
      F->Name = cur().Text;
      advance();
    } else if (TopLevel) {
      error(cur(), std::string("expected function name, found ") +
                       tokName(cur().K));
    }
    expect(Tok::LParen, "after function name");
    while (cur().K != Tok::RParen && cur().K != Tok::Eof) {
      Token PTok = expect(Tok::Ident, "in parameter list");
      F->Params.push_back(PTok.Text);
      if (cur().K == Tok::Comma)
        advance();
      else
        break;
    }
    expect(Tok::RParen, "to close parameter list");
    F->Body = parseBlock();
    return F;
  }

  Block parseBlock() {
    Block B;
    expect(Tok::LBrace, "to open block");
    while (cur().K != Tok::RBrace && cur().K != Tok::Eof) {
      if (cur().K == Tok::Semi) {
        advance();
        continue;
      }
      try {
        B.Stmts.push_back(parseStmt());
      } catch (const Bail &) {
        syncStmt();
      }
    }
    expect(Tok::RBrace, "to close block");
    return B;
  }

  // --- Statements --------------------------------------------------------

  std::unique_ptr<Stmt> parseStmt() {
    switch (cur().K) {
    case Tok::KwIf:
      return parseIf();
    case Tok::KwFor:
      return parseFor();
    case Tok::KwGo:
      return parseGo();
    case Tok::KwDefer:
      return parseDefer();
    case Tok::KwReturn:
      return parseReturn();
    case Tok::KwSelect:
      return parseSelect();
    case Tok::KwBreak: {
      auto S = std::make_unique<Stmt>();
      S->K = StmtKind::Break;
      S->P = posOf(cur());
      advance();
      return S;
    }
    case Tok::KwContinue: {
      auto S = std::make_unique<Stmt>();
      S->K = StmtKind::Continue;
      S->P = posOf(cur());
      advance();
      return S;
    }
    case Tok::LBrace: {
      auto S = std::make_unique<Stmt>();
      S->K = StmtKind::BlockStmt;
      S->P = posOf(cur());
      S->Body = parseBlock();
      return S;
    }
    default:
      return parseSimpleStmt();
    }
  }

  /// decl / assign / index-assign / send / bare expression — the statement
  /// forms legal as a `for` init or post clause.
  std::unique_ptr<Stmt> parseSimpleStmt() {
    Token Start = cur();
    auto E = parseExpr();
    auto S = std::make_unique<Stmt>();
    S->P = posOf(Start);
    switch (cur().K) {
    case Tok::Define: {
      advance();
      if (E->K != ExprKind::Ident)
        error(Start, "left side of ':=' must be an identifier");
      S->K = StmtKind::Decl;
      S->Name = E->Str;
      S->E = parseExpr();
      return S;
    }
    case Tok::Assign: {
      advance();
      if (E->K == ExprKind::Ident) {
        S->K = StmtKind::Assign;
        S->Name = E->Str;
        S->E = parseExpr();
        return S;
      }
      if (E->K == ExprKind::Index) {
        S->K = StmtKind::IndexAssign;
        S->E = std::move(E->Kids[0]);
        S->E2 = std::move(E->Kids[1]);
        S->E3 = parseExpr();
        return S;
      }
      error(Start, "left side of '=' must be an identifier or index");
    }
    case Tok::Arrow: {
      advance();
      S->K = StmtKind::Send;
      S->E = std::move(E);
      S->E2 = parseExpr();
      return S;
    }
    default:
      S->K = StmtKind::ExprStmt;
      S->E = std::move(E);
      return S;
    }
  }

  std::unique_ptr<Stmt> parseIf() {
    auto S = std::make_unique<Stmt>();
    S->K = StmtKind::If;
    S->P = posOf(cur());
    expect(Tok::KwIf, "");
    S->E = parseExpr();
    S->Body = parseBlock();
    if (cur().K == Tok::KwElse) {
      advance();
      if (cur().K == Tok::KwIf) {
        S->ElseBody.Stmts.push_back(parseIf());
      } else {
        S->ElseBody = parseBlock();
      }
    }
    return S;
  }

  std::unique_ptr<Stmt> parseFor() {
    auto S = std::make_unique<Stmt>();
    S->K = StmtKind::For;
    S->P = posOf(cur());
    expect(Tok::KwFor, "");
    if (cur().K == Tok::LBrace) { // for { }
      S->Body = parseBlock();
      return S;
    }
    auto First = parseSimpleStmt();
    if (cur().K == Tok::LBrace) { // for cond { }
      if (First->K != StmtKind::ExprStmt)
        error(cur(), "for condition must be an expression");
      S->E = std::move(First->E);
      S->Body = parseBlock();
      return S;
    }
    // for init; cond; post { }
    expect(Tok::Semi, "after for-loop init");
    S->Init = std::move(First);
    if (cur().K != Tok::Semi)
      S->E = parseExpr();
    expect(Tok::Semi, "after for-loop condition");
    if (cur().K != Tok::LBrace)
      S->Post = parseSimpleStmt();
    S->Body = parseBlock();
    return S;
  }

  std::unique_ptr<Stmt> parseGo() {
    auto S = std::make_unique<Stmt>();
    S->K = StmtKind::Go;
    S->P = posOf(cur());
    expect(Tok::KwGo, "");
    if (cur().K == Tok::Str) { // Optional goroutine label.
      S->Name = cur().Text;
      advance();
    }
    Token Start = cur();
    S->E = parseExpr();
    if (S->E->K != ExprKind::Call && S->E->K != ExprKind::Method)
      error(Start, "go requires a call expression");
    return S;
  }

  std::unique_ptr<Stmt> parseDefer() {
    auto S = std::make_unique<Stmt>();
    S->K = StmtKind::Defer;
    S->P = posOf(cur());
    expect(Tok::KwDefer, "");
    Token Start = cur();
    S->E = parseExpr();
    if (S->E->K != ExprKind::Call && S->E->K != ExprKind::Method)
      error(Start, "defer requires a call expression");
    return S;
  }

  std::unique_ptr<Stmt> parseReturn() {
    auto S = std::make_unique<Stmt>();
    S->K = StmtKind::Return;
    S->P = posOf(cur());
    expect(Tok::KwReturn, "");
    if (cur().K != Tok::Semi && cur().K != Tok::RBrace &&
        cur().K != Tok::Eof)
      S->E = parseExpr();
    return S;
  }

  std::unique_ptr<Stmt> parseSelect() {
    auto S = std::make_unique<Stmt>();
    S->K = StmtKind::Select;
    S->P = posOf(cur());
    expect(Tok::KwSelect, "");
    expect(Tok::LBrace, "after 'select'");
    while (cur().K != Tok::RBrace && cur().K != Tok::Eof) {
      if (cur().K == Tok::Semi) {
        advance();
        continue;
      }
      SelectCase C;
      C.P = posOf(cur());
      if (cur().K == Tok::KwDefault) {
        advance();
        C.K = SelectCase::Kind::Default;
      } else {
        expect(Tok::KwCase, "in select body");
        if (cur().K == Tok::Ident && peek().K == Tok::Define) {
          // case v := <-ch:
          C.K = SelectCase::Kind::Recv;
          C.BindName = cur().Text;
          advance(); // ident
          advance(); // :=
          expect(Tok::Arrow, "in receive case");
          C.Ch = parseExpr();
        } else {
          Token Start = cur();
          auto E = parseExpr();
          if (E->K == ExprKind::Recv) { // case <-ch:
            C.K = SelectCase::Kind::Recv;
            C.Ch = std::move(E->Kids[0]);
          } else if (cur().K == Tok::Arrow) { // case ch <- v:
            advance();
            C.K = SelectCase::Kind::Send;
            C.Ch = std::move(E);
            C.Val = parseExpr();
          } else {
            error(Start, "select case must be a channel send or receive");
          }
        }
      }
      expect(Tok::Colon, "after select case");
      while (cur().K != Tok::KwCase && cur().K != Tok::KwDefault &&
             cur().K != Tok::RBrace && cur().K != Tok::Eof) {
        if (cur().K == Tok::Semi) {
          advance();
          continue;
        }
        try {
          C.Body.Stmts.push_back(parseStmt());
        } catch (const Bail &) {
          syncStmt();
        }
      }
      S->Cases.push_back(std::move(C));
    }
    expect(Tok::RBrace, "to close select");
    return S;
  }

  // --- Expressions -------------------------------------------------------

  std::unique_ptr<Expr> parseExpr() { return parseOr(); }

  std::unique_ptr<Expr> binary(const char *Op, Pos At,
                               std::unique_ptr<Expr> L,
                               std::unique_ptr<Expr> R) {
    auto E = std::make_unique<Expr>();
    E->K = ExprKind::Binary;
    E->P = At;
    E->Str = Op;
    E->Kids.push_back(std::move(L));
    E->Kids.push_back(std::move(R));
    return E;
  }

  std::unique_ptr<Expr> parseOr() {
    auto L = parseAnd();
    while (cur().K == Tok::OrOr) {
      Pos At = posOf(cur());
      advance();
      L = binary("||", At, std::move(L), parseAnd());
    }
    return L;
  }

  std::unique_ptr<Expr> parseAnd() {
    auto L = parseCmp();
    while (cur().K == Tok::AndAnd) {
      Pos At = posOf(cur());
      advance();
      L = binary("&&", At, std::move(L), parseCmp());
    }
    return L;
  }

  const char *cmpOp() const {
    switch (cur().K) {
    case Tok::Eq:
      return "==";
    case Tok::Ne:
      return "!=";
    case Tok::Lt:
      return "<";
    case Tok::Le:
      return "<=";
    case Tok::Gt:
      return ">";
    case Tok::Ge:
      return ">=";
    default:
      return nullptr;
    }
  }

  std::unique_ptr<Expr> parseCmp() {
    auto L = parseAdd();
    while (const char *Op = cmpOp()) {
      Pos At = posOf(cur());
      advance();
      L = binary(Op, At, std::move(L), parseAdd());
    }
    return L;
  }

  std::unique_ptr<Expr> parseAdd() {
    auto L = parseMul();
    while (cur().K == Tok::Plus || cur().K == Tok::Minus) {
      const char *Op = cur().K == Tok::Plus ? "+" : "-";
      Pos At = posOf(cur());
      advance();
      L = binary(Op, At, std::move(L), parseMul());
    }
    return L;
  }

  std::unique_ptr<Expr> parseMul() {
    auto L = parseUnary();
    while (cur().K == Tok::Star || cur().K == Tok::Slash ||
           cur().K == Tok::Percent) {
      const char *Op = cur().K == Tok::Star    ? "*"
                       : cur().K == Tok::Slash ? "/"
                                               : "%";
      Pos At = posOf(cur());
      advance();
      L = binary(Op, At, std::move(L), parseUnary());
    }
    return L;
  }

  std::unique_ptr<Expr> parseUnary() {
    if (cur().K == Tok::Not || cur().K == Tok::Minus) {
      auto E = std::make_unique<Expr>();
      E->K = ExprKind::Unary;
      E->P = posOf(cur());
      E->Str = cur().K == Tok::Not ? "!" : "-";
      advance();
      E->Kids.push_back(parseUnary());
      return E;
    }
    if (cur().K == Tok::Arrow) { // <-ch receive expression.
      auto E = std::make_unique<Expr>();
      E->K = ExprKind::Recv;
      E->P = posOf(cur());
      advance();
      E->Kids.push_back(parseUnary());
      return E;
    }
    return parsePostfix();
  }

  std::unique_ptr<Expr> parsePostfix() {
    auto E = parsePrimary();
    for (;;) {
      if (cur().K == Tok::LParen) {
        auto Call = std::make_unique<Expr>();
        Call->K = ExprKind::Call;
        Call->P = posOf(cur());
        Call->Kids.push_back(std::move(E));
        parseArgs(*Call);
        E = std::move(Call);
        continue;
      }
      if (cur().K == Tok::Dot) {
        Pos At = posOf(cur());
        advance();
        Token Name = expect(Tok::Ident, "after '.'");
        auto M = std::make_unique<Expr>();
        M->K = ExprKind::Method;
        M->P = At;
        M->Str = Name.Text;
        M->Kids.push_back(std::move(E));
        if (cur().K != Tok::LParen)
          error(cur(), "method reference must be called: expected '('");
        parseArgs(*M);
        E = std::move(M);
        continue;
      }
      if (cur().K == Tok::LBracket) {
        auto Ix = std::make_unique<Expr>();
        Ix->K = ExprKind::Index;
        Ix->P = posOf(cur());
        advance();
        Ix->Kids.push_back(std::move(E));
        Ix->Kids.push_back(parseExpr());
        expect(Tok::RBracket, "to close index");
        E = std::move(Ix);
        continue;
      }
      return E;
    }
  }

  void parseArgs(Expr &Call) {
    expect(Tok::LParen, "to open argument list");
    while (cur().K != Tok::RParen && cur().K != Tok::Eof) {
      Call.Kids.push_back(parseExpr());
      if (cur().K == Tok::Comma)
        advance();
      else
        break;
    }
    expect(Tok::RParen, "to close argument list");
  }

  std::unique_ptr<Expr> parsePrimary() {
    auto E = std::make_unique<Expr>();
    E->P = posOf(cur());
    switch (cur().K) {
    case Tok::Int:
      E->K = ExprKind::IntLit;
      E->IntValue = cur().IntValue;
      advance();
      return E;
    case Tok::Str:
      E->K = ExprKind::StrLit;
      E->Str = cur().Text;
      advance();
      return E;
    case Tok::KwTrue:
    case Tok::KwFalse:
      E->K = ExprKind::BoolLit;
      E->BoolValue = cur().K == Tok::KwTrue;
      advance();
      return E;
    case Tok::KwNil:
      E->K = ExprKind::NilLit;
      advance();
      return E;
    case Tok::Ident:
      if (cur().Text == "make" && peek().K == Tok::LParen)
        return parseMake();
      E->K = ExprKind::Ident;
      E->Str = cur().Text;
      advance();
      return E;
    case Tok::LParen: {
      advance();
      auto Inner = parseExpr();
      expect(Tok::RParen, "to close parenthesized expression");
      return Inner;
    }
    case Tok::KwFunc: {
      E->K = ExprKind::Func;
      E->Fn = parseFuncLit(/*TopLevel=*/false);
      E->P = E->Fn->P;
      return E;
    }
    default:
      error(cur(), std::string("expected expression, found ") +
                       tokName(cur().K));
    }
  }

  std::unique_ptr<Expr> parseMake() {
    auto E = std::make_unique<Expr>();
    E->K = ExprKind::Make;
    E->P = posOf(cur());
    advance(); // make
    expect(Tok::LParen, "after 'make'");
    Token Kind = expect(Tok::Ident, "as make() type");
    if (Kind.Text != "chan" && Kind.Text != "map" && Kind.Text != "slice")
      error(Kind, "make() type must be 'chan', 'map' or 'slice', found '" +
                      Kind.Text + "'");
    E->Str = Kind.Text;
    while (cur().K == Tok::Comma) {
      advance();
      E->Kids.push_back(parseExpr());
    }
    expect(Tok::RParen, "to close make()");
    return E;
  }
};

// --- Dump ----------------------------------------------------------------

void dumpExpr(const Expr &E, std::string &Out);
void dumpStmt(const Stmt &S, std::string &Out);

void dumpBlockInline(const Block &B, std::string &Out) {
  for (const auto &S : B.Stmts) {
    Out += " ";
    dumpStmt(*S, Out);
  }
}

void dumpFuncLit(const FuncLit &F, std::string &Out) {
  Out += "(func ";
  Out += F.Name.empty() ? "_" : F.Name;
  Out += " (";
  for (size_t I = 0; I < F.Params.size(); ++I) {
    if (I)
      Out += " ";
    Out += F.Params[I];
  }
  Out += ")";
  dumpBlockInline(F.Body, Out);
  Out += ")";
}

void dumpExpr(const Expr &E, std::string &Out) {
  switch (E.K) {
  case ExprKind::IntLit:
    Out += "(int " + std::to_string(E.IntValue) + ")";
    return;
  case ExprKind::BoolLit:
    Out += E.BoolValue ? "(bool true)" : "(bool false)";
    return;
  case ExprKind::StrLit:
    Out += "(str \"" + E.Str + "\")";
    return;
  case ExprKind::NilLit:
    Out += "nil";
    return;
  case ExprKind::Ident:
    Out += "(id " + E.Str + ")";
    return;
  case ExprKind::Unary:
    Out += "(un " + E.Str + " ";
    dumpExpr(*E.Kids[0], Out);
    Out += ")";
    return;
  case ExprKind::Binary:
    Out += "(bin " + E.Str + " ";
    dumpExpr(*E.Kids[0], Out);
    Out += " ";
    dumpExpr(*E.Kids[1], Out);
    Out += ")";
    return;
  case ExprKind::Call:
    Out += "(call";
    for (const auto &K : E.Kids) {
      Out += " ";
      dumpExpr(*K, Out);
    }
    Out += ")";
    return;
  case ExprKind::Method:
    Out += "(method " + E.Str;
    for (const auto &K : E.Kids) {
      Out += " ";
      dumpExpr(*K, Out);
    }
    Out += ")";
    return;
  case ExprKind::Index:
    Out += "(index ";
    dumpExpr(*E.Kids[0], Out);
    Out += " ";
    dumpExpr(*E.Kids[1], Out);
    Out += ")";
    return;
  case ExprKind::Recv:
    Out += "(recv ";
    dumpExpr(*E.Kids[0], Out);
    Out += ")";
    return;
  case ExprKind::Func:
    dumpFuncLit(*E.Fn, Out);
    return;
  case ExprKind::Make:
    Out += "(make " + E.Str;
    for (const auto &K : E.Kids) {
      Out += " ";
      dumpExpr(*K, Out);
    }
    Out += ")";
    return;
  }
}

void dumpStmt(const Stmt &S, std::string &Out) {
  switch (S.K) {
  case StmtKind::Decl:
    Out += "(decl " + S.Name + " ";
    dumpExpr(*S.E, Out);
    Out += ")";
    return;
  case StmtKind::Assign:
    Out += "(assign " + S.Name + " ";
    dumpExpr(*S.E, Out);
    Out += ")";
    return;
  case StmtKind::IndexAssign:
    Out += "(setindex ";
    dumpExpr(*S.E, Out);
    Out += " ";
    dumpExpr(*S.E2, Out);
    Out += " ";
    dumpExpr(*S.E3, Out);
    Out += ")";
    return;
  case StmtKind::ExprStmt:
    Out += "(expr ";
    dumpExpr(*S.E, Out);
    Out += ")";
    return;
  case StmtKind::If:
    Out += "(if ";
    dumpExpr(*S.E, Out);
    Out += " (then";
    dumpBlockInline(S.Body, Out);
    Out += ")";
    if (!S.ElseBody.Stmts.empty()) {
      Out += " (else";
      dumpBlockInline(S.ElseBody, Out);
      Out += ")";
    }
    Out += ")";
    return;
  case StmtKind::For:
    Out += "(for ";
    if (S.Init)
      dumpStmt(*S.Init, Out);
    else
      Out += "_";
    Out += " ";
    if (S.E)
      dumpExpr(*S.E, Out);
    else
      Out += "_";
    Out += " ";
    if (S.Post)
      dumpStmt(*S.Post, Out);
    else
      Out += "_";
    Out += " (body";
    dumpBlockInline(S.Body, Out);
    Out += "))";
    return;
  case StmtKind::Go:
    Out += "(go ";
    if (!S.Name.empty())
      Out += "\"" + S.Name + "\" ";
    dumpExpr(*S.E, Out);
    Out += ")";
    return;
  case StmtKind::Defer:
    Out += "(defer ";
    dumpExpr(*S.E, Out);
    Out += ")";
    return;
  case StmtKind::Return:
    if (S.E) {
      Out += "(return ";
      dumpExpr(*S.E, Out);
      Out += ")";
    } else {
      Out += "(return)";
    }
    return;
  case StmtKind::Send:
    Out += "(send ";
    dumpExpr(*S.E, Out);
    Out += " ";
    dumpExpr(*S.E2, Out);
    Out += ")";
    return;
  case StmtKind::Select:
    Out += "(select";
    for (const auto &C : S.Cases) {
      switch (C.K) {
      case SelectCase::Kind::Recv:
        Out += " (case-recv ";
        Out += C.BindName.empty() ? "_" : C.BindName;
        Out += " ";
        dumpExpr(*C.Ch, Out);
        break;
      case SelectCase::Kind::Send:
        Out += " (case-send ";
        dumpExpr(*C.Ch, Out);
        Out += " ";
        dumpExpr(*C.Val, Out);
        break;
      case SelectCase::Kind::Default:
        Out += " (case-default";
        break;
      }
      dumpBlockInline(C.Body, Out);
      Out += ")";
    }
    Out += ")";
    return;
  case StmtKind::Break:
    Out += "(break)";
    return;
  case StmtKind::Continue:
    Out += "(continue)";
    return;
  case StmtKind::BlockStmt:
    Out += "(block";
    dumpBlockInline(S.Body, Out);
    Out += ")";
    return;
  }
}

} // namespace

ParseResult lang::parseProgram(const std::string &Source,
                               const std::string &FileName) {
  LexResult L = lex(Source);
  Parser Psr(std::move(L.Tokens), std::move(L.Diags), FileName);
  return Psr.run();
}

std::string lang::dumpProgram(const Program &P) {
  std::string Out;
  for (const auto &F : P.Funcs) {
    Out += "(func ";
    Out += F->Name.empty() ? "_" : F->Name;
    Out += " (";
    for (size_t I = 0; I < F->Params.size(); ++I) {
      if (I)
        Out += " ";
      Out += F->Params[I];
    }
    Out += ")";
    for (const auto &S : F->Body.Stmts) {
      Out += "\n  ";
      dumpStmt(*S, Out);
    }
    Out += ")\n";
  }
  return Out;
}
