//===- lang/Ast.h - AST for the grs race-program DSL ------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax tree the recursive-descent parser (lang/Parser.h)
/// produces and the tree-walking interpreter (lang/Interp.h) executes.
///
/// A Program is IMMUTABLE after parsing and designed to be shared across
/// threads: trace::parallelSweep runs the same Program concurrently from
/// several workers, each in its own rt::Runtime, so nothing in here may
/// be mutated during interpretation (the interpreter keeps all execution
/// state in per-run environments).
///
/// One deliberate deviation from Go: function literals may be NAMED
/// (`func ProcessJob() { ... }` as an expression). Calling a named
/// function — top-level or literal — pushes a detector call-chain frame
/// (rt::FuncScope equivalent), while anonymous literals push nothing.
/// This is how a .grs port reproduces its C++ twin's §3.3.1 fingerprint:
/// the fingerprint keys on lexicographically-ordered function-NAME
/// chains, so frame names are semantics here, not decoration.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_LANG_AST_H
#define GRS_LANG_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace grs {
namespace lang {

/// 1-based source position.
struct Pos {
  uint32_t Line = 0;
  uint32_t Col = 0;
};

struct Expr;
struct Stmt;

struct Block {
  std::vector<std::unique_ptr<Stmt>> Stmts;
};

/// A function: top-level declaration or (possibly named) literal.
struct FuncLit {
  /// Empty for anonymous literals; a named function pushes a call-chain
  /// frame with this name when invoked.
  std::string Name;
  std::vector<std::string> Params;
  Block Body;
  Pos P;
};

enum class ExprKind : uint8_t {
  IntLit,  ///< IntValue.
  BoolLit, ///< BoolValue.
  StrLit,  ///< Str.
  NilLit,
  Ident,   ///< Str = name.
  Unary,   ///< Str = "!" or "-"; Kids[0].
  Binary,  ///< Str = operator spelling; Kids[0], Kids[1].
  Call,    ///< Kids[0] = callee; Kids[1..] = arguments.
  Method,  ///< Str = method name; Kids[0] = receiver; Kids[1..] = args.
  Index,   ///< Kids[0] = container; Kids[1] = index.
  Recv,    ///< <-ch; Kids[0] = channel.
  Func,    ///< Fn = the literal.
  Make,    ///< Str = "chan" | "map" | "slice"; Kids = size arguments.
};

struct Expr {
  ExprKind K = ExprKind::NilLit;
  Pos P;
  std::string Str;
  int64_t IntValue = 0;
  bool BoolValue = false;
  std::vector<std::unique_ptr<Expr>> Kids;
  std::shared_ptr<FuncLit> Fn;
};

enum class StmtKind : uint8_t {
  Decl,        ///< Name := E.
  Assign,      ///< Name = E.
  IndexAssign, ///< E[E2] = E3.
  ExprStmt,    ///< E.
  If,          ///< E, Body, ElseBody (else-if nests an If in ElseBody).
  For,         ///< Init?; E (cond)?; Post? { Body }.
  Go,          ///< go [Name label] E (a call).
  Defer,       ///< defer E (a call).
  Return,      ///< return E?.
  Send,        ///< E <- E2.
  Select,      ///< Cases.
  Break,
  Continue,
  BlockStmt,   ///< { Body }.
};

struct SelectCase {
  enum class Kind : uint8_t { Recv, Send, Default } K = Kind::Default;
  /// Recv with binding: `case v := <-ch:`; empty for a bare receive.
  std::string BindName;
  std::unique_ptr<Expr> Ch;  ///< Recv/Send channel.
  std::unique_ptr<Expr> Val; ///< Send value.
  Block Body;
  Pos P;
};

struct Stmt {
  StmtKind K = StmtKind::ExprStmt;
  Pos P;
  std::string Name; ///< Decl/Assign target; Go label.
  std::unique_ptr<Expr> E;
  std::unique_ptr<Expr> E2;
  std::unique_ptr<Expr> E3;
  std::unique_ptr<Stmt> Init; ///< For.
  std::unique_ptr<Stmt> Post; ///< For.
  Block Body;
  Block ElseBody;
  std::vector<SelectCase> Cases;
};

/// A parsed program: top-level functions only (no global variables — the
/// corpus patterns' "globals" are locals of an outer function, which is
/// also what keeps every shadow address run-local).
struct Program {
  std::string FileName = "program.grs";
  std::vector<std::shared_ptr<FuncLit>> Funcs;

  const FuncLit *findFunc(const std::string &Name) const {
    for (const auto &F : Funcs)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }
};

} // namespace lang
} // namespace grs

#endif // GRS_LANG_AST_H
