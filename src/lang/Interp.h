//===- lang/Interp.h - Tree-walking interpreter for grs ---------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a parsed grs Program on the deterministic runtime. The
/// interpreter's primitives are EXACTLY the rt/ surface:
///
///   go f() / go "label" f()      rt::Runtime::go (label = root chain frame)
///   make(chan[, cap]) / <- / close   rt::Chan<Value>
///   select { case ... default: }     rt::Selector
///   mutex()/rwmutex()/waitgroup()    rt::Mutex / rt::RWMutex / rt::WaitGroup
///   make(map) / make(slice, n)       rt::GoMap / rt::GoSlice (struct- and
///                                    meta-field shadow accesses included)
///   every variable read/write        Runtime::read/write on a per-cell
///                                    shadow address (= preemption point)
///
/// Closures capture variables BY REFERENCE (shared cells), so the paper's
/// loop-variable-capture races are expressible exactly as in Go. Named
/// function literals and top-level functions push a call-chain frame on
/// entry (anonymous literals do not); goroutine labels become the chain's
/// root frame — together these give a ported `.grs` program the same
/// §3.3.1 fingerprints as its hand-written C++ corpus twin.
///
/// Error model: grs type errors and panics raise rt::GoPanic (deferred
/// calls still run), so a broken program loses its own run — recorded in
/// RunResult::Panics — never the sweep hosting it.
///
/// A Program is immutable and may be shared across threads; each run
/// builds its own interpreter state, so `runner()` is safe to hand to
/// trace::parallelSweep.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_LANG_INTERP_H
#define GRS_LANG_INTERP_H

#include "lang/Ast.h"
#include "rt/Runtime.h"

#include <functional>
#include <memory>

namespace grs {
namespace lang {

/// A goroutine-0 body executing \p P (entry point: `func main()`).
/// Drop-in for rt::Runtime::run and corpus::hostBody.
std::function<void()> body(std::shared_ptr<const Program> P);

/// Runs \p P to completion inside \p RT. Equivalent to RT.run(body(P)).
rt::RunResult run(std::shared_ptr<const Program> P, rt::Runtime &RT);

/// Non-owning convenience overload; \p P must outlive \p RT (leaked
/// goroutines hold interpreter state until the Runtime is destroyed).
rt::RunResult run(const Program &P, rt::Runtime &RT);

/// A sweep::Runner-compatible runner: one fresh Runtime per invocation,
/// so the same interpreted program sweeps exactly like a compiled body.
std::function<rt::RunResult(const rt::RunOptions &)>
runner(std::shared_ptr<const Program> P);

} // namespace lang
} // namespace grs

#endif // GRS_LANG_INTERP_H
