//===- lang/Lexer.cpp - Tokenizer for the grs race-program DSL ------------===//

#include "lang/Lexer.h"

#include <limits>

using namespace grs;
using namespace grs::lang;

std::string lang::renderDiag(const std::string &File, const Diag &D) {
  return File + ":" + std::to_string(D.Line) + ":" + std::to_string(D.Col) +
         ": " + D.Message;
}

const char *lang::tokName(Tok K) {
  switch (K) {
  case Tok::Eof:
    return "end of file";
  case Tok::Ident:
    return "identifier";
  case Tok::Int:
    return "integer literal";
  case Tok::Str:
    return "string literal";
  case Tok::KwFunc:
    return "'func'";
  case Tok::KwGo:
    return "'go'";
  case Tok::KwDefer:
    return "'defer'";
  case Tok::KwReturn:
    return "'return'";
  case Tok::KwIf:
    return "'if'";
  case Tok::KwElse:
    return "'else'";
  case Tok::KwFor:
    return "'for'";
  case Tok::KwSelect:
    return "'select'";
  case Tok::KwCase:
    return "'case'";
  case Tok::KwDefault:
    return "'default'";
  case Tok::KwBreak:
    return "'break'";
  case Tok::KwContinue:
    return "'continue'";
  case Tok::KwTrue:
    return "'true'";
  case Tok::KwFalse:
    return "'false'";
  case Tok::KwNil:
    return "'nil'";
  case Tok::LParen:
    return "'('";
  case Tok::RParen:
    return "')'";
  case Tok::LBrace:
    return "'{'";
  case Tok::RBrace:
    return "'}'";
  case Tok::LBracket:
    return "'['";
  case Tok::RBracket:
    return "']'";
  case Tok::Comma:
    return "','";
  case Tok::Semi:
    return "';'";
  case Tok::Colon:
    return "':'";
  case Tok::Dot:
    return "'.'";
  case Tok::Assign:
    return "'='";
  case Tok::Define:
    return "':='";
  case Tok::Eq:
    return "'=='";
  case Tok::Ne:
    return "'!='";
  case Tok::Lt:
    return "'<'";
  case Tok::Le:
    return "'<='";
  case Tok::Gt:
    return "'>'";
  case Tok::Ge:
    return "'>='";
  case Tok::Plus:
    return "'+'";
  case Tok::Minus:
    return "'-'";
  case Tok::Star:
    return "'*'";
  case Tok::Slash:
    return "'/'";
  case Tok::Percent:
    return "'%'";
  case Tok::AndAnd:
    return "'&&'";
  case Tok::OrOr:
    return "'||'";
  case Tok::Not:
    return "'!'";
  case Tok::Arrow:
    return "'<-'";
  }
  return "token";
}

namespace {

bool isIdentStart(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_';
}
bool isIdentCont(char C) { return isIdentStart(C) || (C >= '0' && C <= '9'); }
bool isDigit(char C) { return C >= '0' && C <= '9'; }

Tok keywordOf(const std::string &S) {
  if (S == "func")
    return Tok::KwFunc;
  if (S == "go")
    return Tok::KwGo;
  if (S == "defer")
    return Tok::KwDefer;
  if (S == "return")
    return Tok::KwReturn;
  if (S == "if")
    return Tok::KwIf;
  if (S == "else")
    return Tok::KwElse;
  if (S == "for")
    return Tok::KwFor;
  if (S == "select")
    return Tok::KwSelect;
  if (S == "case")
    return Tok::KwCase;
  if (S == "default")
    return Tok::KwDefault;
  if (S == "break")
    return Tok::KwBreak;
  if (S == "continue")
    return Tok::KwContinue;
  if (S == "true")
    return Tok::KwTrue;
  if (S == "false")
    return Tok::KwFalse;
  if (S == "nil")
    return Tok::KwNil;
  return Tok::Ident;
}

/// Go's rule: insert ';' at a newline when the line's last token could
/// end a statement.
bool endsStatement(Tok K) {
  switch (K) {
  case Tok::Ident:
  case Tok::Int:
  case Tok::Str:
  case Tok::KwTrue:
  case Tok::KwFalse:
  case Tok::KwNil:
  case Tok::KwReturn:
  case Tok::KwBreak:
  case Tok::KwContinue:
  case Tok::RParen:
  case Tok::RBrace:
  case Tok::RBracket:
    return true;
  default:
    return false;
  }
}

} // namespace

LexResult lang::lex(const std::string &Source) {
  LexResult R;
  uint32_t Line = 1, Col = 1;
  size_t I = 0;
  const size_t N = Source.size();

  auto push = [&](Tok K, uint32_t L, uint32_t C) {
    Token T;
    T.K = K;
    T.Line = L;
    T.Col = C;
    R.Tokens.push_back(std::move(T));
    return &R.Tokens.back();
  };
  auto diag = [&](uint32_t L, uint32_t C, std::string Msg) {
    R.Diags.push_back(Diag{L, C, std::move(Msg)});
  };
  auto maybeInsertSemi = [&] {
    if (!R.Tokens.empty() && endsStatement(R.Tokens.back().K))
      push(Tok::Semi, Line, Col);
  };

  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      maybeInsertSemi();
      ++I;
      ++Line;
      Col = 1;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r') {
      ++I;
      ++Col;
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n') {
        ++I;
        ++Col;
      }
      continue; // The '\n' (if any) handles semicolon insertion.
    }

    uint32_t TokLine = Line, TokCol = Col;

    if (isIdentStart(C)) {
      size_t Start = I;
      while (I < N && isIdentCont(Source[I])) {
        ++I;
        ++Col;
      }
      std::string Text = Source.substr(Start, I - Start);
      Token *T = push(keywordOf(Text), TokLine, TokCol);
      if (T->K == Tok::Ident)
        T->Text = std::move(Text);
      continue;
    }

    if (isDigit(C)) {
      int64_t Value = 0;
      bool Overflow = false;
      while (I < N && isDigit(Source[I])) {
        int Digit = Source[I] - '0';
        if (Value > (std::numeric_limits<int64_t>::max() - Digit) / 10)
          Overflow = true;
        else
          Value = Value * 10 + Digit;
        ++I;
        ++Col;
      }
      if (Overflow)
        diag(TokLine, TokCol, "integer literal overflows int64");
      Token *T = push(Tok::Int, TokLine, TokCol);
      T->IntValue = Value;
      continue;
    }

    if (C == '"') {
      ++I;
      ++Col;
      std::string Text;
      bool Terminated = false;
      while (I < N) {
        char S = Source[I];
        if (S == '"') {
          ++I;
          ++Col;
          Terminated = true;
          break;
        }
        if (S == '\n')
          break; // Unterminated: do not swallow the rest of the file.
        if (S == '\\' && I + 1 < N) {
          char E = Source[I + 1];
          switch (E) {
          case 'n':
            Text.push_back('\n');
            break;
          case 't':
            Text.push_back('\t');
            break;
          case '"':
            Text.push_back('"');
            break;
          case '\\':
            Text.push_back('\\');
            break;
          default:
            diag(Line, Col, std::string("unknown escape '\\") + E +
                                "' in string literal");
            Text.push_back(E);
            break;
          }
          I += 2;
          Col += 2;
          continue;
        }
        Text.push_back(S);
        ++I;
        ++Col;
      }
      if (!Terminated)
        diag(TokLine, TokCol, "unterminated string literal");
      Token *T = push(Tok::Str, TokLine, TokCol);
      T->Text = std::move(Text);
      continue;
    }

    auto two = [&](char Next) {
      return I + 1 < N && Source[I + 1] == Next;
    };
    Tok K = Tok::Eof;
    size_t Len = 1;
    switch (C) {
    case '(':
      K = Tok::LParen;
      break;
    case ')':
      K = Tok::RParen;
      break;
    case '{':
      K = Tok::LBrace;
      break;
    case '}':
      K = Tok::RBrace;
      break;
    case '[':
      K = Tok::LBracket;
      break;
    case ']':
      K = Tok::RBracket;
      break;
    case ',':
      K = Tok::Comma;
      break;
    case ';':
      K = Tok::Semi;
      break;
    case '.':
      K = Tok::Dot;
      break;
    case ':':
      if (two('=')) {
        K = Tok::Define;
        Len = 2;
      } else {
        K = Tok::Colon;
      }
      break;
    case '=':
      if (two('=')) {
        K = Tok::Eq;
        Len = 2;
      } else {
        K = Tok::Assign;
      }
      break;
    case '!':
      if (two('=')) {
        K = Tok::Ne;
        Len = 2;
      } else {
        K = Tok::Not;
      }
      break;
    case '<':
      if (two('-')) {
        K = Tok::Arrow;
        Len = 2;
      } else if (two('=')) {
        K = Tok::Le;
        Len = 2;
      } else {
        K = Tok::Lt;
      }
      break;
    case '>':
      if (two('=')) {
        K = Tok::Ge;
        Len = 2;
      } else {
        K = Tok::Gt;
      }
      break;
    case '+':
      K = Tok::Plus;
      break;
    case '-':
      K = Tok::Minus;
      break;
    case '*':
      K = Tok::Star;
      break;
    case '/':
      K = Tok::Slash;
      break;
    case '%':
      K = Tok::Percent;
      break;
    case '&':
      if (two('&')) {
        K = Tok::AndAnd;
        Len = 2;
      } else {
        diag(TokLine, TokCol, "unexpected character '&' (did you mean '&&'?)");
        ++I;
        ++Col;
        continue;
      }
      break;
    case '|':
      if (two('|')) {
        K = Tok::OrOr;
        Len = 2;
      } else {
        diag(TokLine, TokCol, "unexpected character '|' (did you mean '||'?)");
        ++I;
        ++Col;
        continue;
      }
      break;
    default:
      diag(TokLine, TokCol,
           std::string("unexpected character '") + C + "'");
      ++I;
      ++Col;
      continue;
    }
    push(K, TokLine, TokCol);
    I += Len;
    Col += static_cast<uint32_t>(Len);
  }

  // A file ending without a newline still terminates its last statement.
  maybeInsertSemi();
  push(Tok::Eof, Line, Col);
  return R;
}
