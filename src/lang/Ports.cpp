//===- lang/Ports.cpp - Registry of .grs corpus ports ----------------------===//

#include "lang/Ports.h"

#include <fstream>
#include <sstream>

using namespace grs;
using namespace grs::lang;

const std::vector<LangPort> &grs::lang::langPorts() {
  // ExpectedFps are pinned from sweeps of the C++ twins (LangTest
  // cross-checks them against both the twin and the interpreted port);
  // chains-only §3.3.1 fingerprints, so they are stable across cosmetic
  // edits to the .grs sources as long as function and goroutine names
  // stay twin-exact.
  static const std::vector<LangPort> All = {
      {"loop-index-capture", "lang/loop_index_capture.grs",
       "loop-index-capture", /*Always=*/true, /*RaceFree=*/false,
       {0x860f1163c052aab8ULL}},
      {"err-variable-capture", "lang/err_variable_capture.grs",
       "err-variable-capture", /*Always=*/false, /*RaceFree=*/false,
       {0xdb6f1d014e3e4e35ULL}},
      {"named-return-capture", "lang/named_return_capture.grs",
       "named-return-capture", /*Always=*/false, /*RaceFree=*/false,
       {0x46c0800a8294f640ULL}},
      {"defer-named-return", "lang/defer_named_return.grs",
       "defer-named-return", /*Always=*/false, /*RaceFree=*/false,
       {0xc68f11e85b3c1a94ULL}},
      {"partial-locking", "lang/partial_locking.grs", "partial-locking",
       /*Always=*/true, /*RaceFree=*/false, {0x7f6e138b8cec32c6ULL}},
      {"rlock-mutation", "lang/rlock_mutation.grs", "rlock-mutation",
       /*Always=*/false, /*RaceFree=*/false, {0xbe44c4c27305e6e9ULL}},
      {"map-distinct-keys", "lang/map_distinct_keys.grs", "map-distinct-keys",
       /*Always=*/false, /*RaceFree=*/false, {0xbdce3af9428874e3ULL}},
      {"map-read-during-insert", "lang/map_read_during_insert.grs",
       "map-read-during-insert", /*Always=*/false, /*RaceFree=*/false,
       {0xe7783f182453c25eULL}},
      {"global-mutation", "lang/global_mutation.grs", "global-mutation",
       /*Always=*/false, /*RaceFree=*/false, {0x58241bb01be1090bULL}},
      {"statement-order", "lang/statement_order.grs", "statement-order",
       /*Always=*/true, /*RaceFree=*/false, {0xb25c0824e67c28aeULL}},
      {"premature-unlock", "lang/premature_unlock.grs", "premature-unlock",
       /*Always=*/false, /*RaceFree=*/false, {0xb954e03b92462bb1ULL}},
      {"racy-metrics", "lang/racy_metrics.grs", "racy-metrics",
       /*Always=*/false, /*RaceFree=*/false, {0xd1b7351d727a7641ULL}},
      {"waitgroup-add-inside", "lang/waitgroup_add_inside.grs",
       "waitgroup-add-inside", /*Always=*/false, /*RaceFree=*/false,
       {0x3a8ea963e56e4adeULL}},
      {"multi-component", "lang/multi_component.grs", "multi-component",
       /*Always=*/false, /*RaceFree=*/false, {0x17b15a340f640069ULL}},
      // Executable twins of the lint exemplars (testdata/*.go); no
      // registered corpus twin, so fingerprints are pinned from the
      // port itself.
      {"racy-service", "lang/racy_service.grs", "", /*Always=*/false,
       /*RaceFree=*/false, {0x67148bbae3094262ULL, 0x938612235f81b8d1ULL}},
      {"clean-service", "lang/clean_service.grs", "", /*Always=*/false,
       /*RaceFree=*/true, {}},
  };
  return All;
}

const LangPort *grs::lang::findLangPort(const std::string &Id) {
  for (const LangPort &P : langPorts())
    if (P.Id == Id)
      return &P;
  return nullptr;
}

std::string grs::lang::findTestdataPath(const std::string &Rel) {
  // ctest runs from the build tree; testdata lives in the source tree.
  for (const char *Prefix : {"testdata/", "../testdata/", "../../testdata/"}) {
    std::string Candidate = std::string(Prefix) + Rel;
    std::ifstream In(Candidate);
    if (In.good())
      return Candidate;
  }
  return "";
}

ParseResult grs::lang::loadProgramFile(const std::string &Path,
                                       std::string *Error) {
  std::ifstream In(Path);
  if (!In.good()) {
    if (Error)
      *Error = "cannot open " + Path;
    ParseResult R;
    R.Prog = std::make_shared<Program>();
    R.Diags.push_back({0, 0, "cannot open " + Path});
    return R;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string File = Path;
  // Diagnostics render nicer with just the basename.
  size_t Slash = File.find_last_of('/');
  if (Slash != std::string::npos)
    File = File.substr(Slash + 1);
  ParseResult R = parseProgram(Buf.str(), File);
  if (!R.ok() && Error) {
    std::ostringstream Msg;
    for (const Diag &D : R.Diags)
      Msg << renderDiag(R.Prog->FileName, D) << "\n";
    *Error = Msg.str();
  }
  return R;
}
