//===- lang/Parser.h - Recursive-descent parser for grs ---------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the grs race-program DSL. Grammar sketch
/// (DESIGN.md §11 has the full version):
///
///   program    := { funcDecl }
///   funcDecl   := "func" Ident "(" params ")" block
///   stmt       := decl | assign | send | exprStmt | if | for | go
///               | defer | return | select | break | continue | block
///   decl       := Ident ":=" expr
///   assign     := Ident "=" expr | postfix "[" expr "]" "=" expr
///   go         := "go" [ Str ] callExpr       // optional goroutine label
///   expr       := orExpr (precedence: || < && < == != < > <= >= <
///                 + - < * / % < unary ! - <- < postfix call/.m()/[i])
///   primary    := Int | Str | true|false|nil | Ident | "(" expr ")"
///               | "func" [Ident] "(" params ")" block    // named literal
///               | "make" "(" ("chan"|"map"|"slice") {"," expr} ")"
///
/// The parser is total: malformed input yields diagnostics plus whatever
/// partial Program could be recovered, never a crash or an exception.
/// Recovery is statement-granular — on error it records a Diag naming the
/// expected token, skips to the next ';' / '}' boundary, and resumes.
/// LangTest drives every prefix-truncation of each corpus port through
/// here to enforce that contract.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_LANG_PARSER_H
#define GRS_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Lexer.h"

#include <memory>
#include <string>
#include <vector>

namespace grs {
namespace lang {

struct ParseResult {
  /// Never null: on unrecoverable input this still holds the functions
  /// parsed before the error cascade. Check ok() before interpreting.
  std::shared_ptr<Program> Prog;
  std::vector<Diag> Diags; ///< Lexer diags first, then parser diags.

  bool ok() const { return Diags.empty(); }
};

/// Parses \p Source into a Program named \p FileName. Total over all
/// inputs (see file comment).
ParseResult parseProgram(const std::string &Source,
                         const std::string &FileName = "program.grs");

/// Renders \p P as a stable S-expression dump, one statement per line.
/// LangTest's parser goldens compare against this.
std::string dumpProgram(const Program &P);

} // namespace lang
} // namespace grs

#endif // GRS_LANG_PARSER_H
