//===- lang/Interp.cpp - Tree-walking interpreter for grs -----------------===//

#include "lang/Interp.h"

#include "obs/Metrics.h"
#include "obs/Timeline.h"
#include "rt/Channel.h"
#include "rt/GoMap.h"
#include "rt/GoSlice.h"
#include "rt/Instr.h"
#include "rt/Select.h"
#include "rt/Sync.h"

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

using namespace grs;
using namespace grs::lang;

namespace {

struct Closure;

/// A grs runtime value. Fat struct instead of a variant so channel
/// payloads stay default-constructible (a closed, drained channel yields
/// the Nil value, grs's zero value).
struct Value {
  enum class Kind : uint8_t {
    Nil,
    Int,
    Bool,
    Str,
    Func,
    Chan,
    Map,
    Slice,
    Mutex,
    RWMutex,
    WaitGroup,
  };
  Kind K = Kind::Nil;
  int64_t I = 0;
  bool B = false;
  std::string S;
  std::shared_ptr<Closure> Fn;
  // Reference values: copying a Value shares the underlying rt object
  // (Go's map/chan reference semantics; grs slices are reference values
  // too — a deliberate simplification over Go's meta-copying slices).
  std::shared_ptr<rt::Chan<Value>> Ch;
  std::shared_ptr<rt::GoMap<std::string, Value>> M;
  std::shared_ptr<rt::GoSlice<Value>> Sl;
  std::shared_ptr<rt::Mutex> Mu;
  std::shared_ptr<rt::RWMutex> Rw;
  std::shared_ptr<rt::WaitGroup> Wg;
};

const char *kindName(Value::Kind K) {
  switch (K) {
  case Value::Kind::Nil:
    return "nil";
  case Value::Kind::Int:
    return "int";
  case Value::Kind::Bool:
    return "bool";
  case Value::Kind::Str:
    return "string";
  case Value::Kind::Func:
    return "func";
  case Value::Kind::Chan:
    return "chan";
  case Value::Kind::Map:
    return "map";
  case Value::Kind::Slice:
    return "slice";
  case Value::Kind::Mutex:
    return "mutex";
  case Value::Kind::RWMutex:
    return "rwmutex";
  case Value::Kind::WaitGroup:
    return "waitgroup";
  }
  return "value";
}

Value intValue(int64_t I) {
  Value V;
  V.K = Value::Kind::Int;
  V.I = I;
  return V;
}

Value boolValue(bool B) {
  Value V;
  V.K = Value::Kind::Bool;
  V.B = B;
  return V;
}

/// One grs variable: a detector-visible shadow address plus the value.
/// Closures that captured the declaring scope share the cell, so a write
/// through one goroutine's closure is the same detector address another
/// goroutine reads — by-reference capture, Observation 3.
struct Cell {
  std::string Name;
  race::Addr A = 0;
  Value V;
};

struct Env {
  std::shared_ptr<Env> Parent;
  std::vector<std::pair<std::string, std::shared_ptr<Cell>>> Vars;
};

struct Closure {
  std::shared_ptr<const FuncLit> Fn;
  std::shared_ptr<Env> Captured; ///< Null for top-level functions.
};

enum class Flow : uint8_t { Normal, Break, Continue, Return };

/// Per-call state: the return slot and this call's deferred thunks
/// (evaluated arguments bound at defer time, run LIFO at function exit).
/// Lives on the C++ stack of the executing fiber — the interpreter keeps
/// NO per-execution state in shared members, because fibers preempt each
/// other mid-statement.
struct CallCtx {
  Value Ret;
  std::vector<std::function<void()>> Defers;
};

class Interp : public std::enable_shared_from_this<Interp> {
public:
  explicit Interp(std::shared_ptr<const Program> P) : Prog(std::move(P)) {}

  ~Interp() {
    // Break closure → env → cell → closure reference cycles so captured
    // environments free even when programs tie closures into knots.
    for (auto &E : AllEnvs)
      E->Vars.clear();
  }

  Interp(const Interp &) = delete;
  Interp &operator=(const Interp &) = delete;

  /// Goroutine-0 entry: must run inside rt::Runtime::run.
  void runMain() {
    RT = &rt::Runtime::current();
    if (obs::Registry *Reg = RT->metrics()) {
      CStatements = Reg->counter("grs_lang_statements_total");
      CCalls = Reg->counter("grs_lang_calls_total");
      CSpawns = Reg->counter("grs_lang_goroutines_total");
      CDefers = Reg->counter("grs_lang_defers_total");
      CSelects = Reg->counter("grs_lang_selects_total");
      CErrors = Reg->counter("grs_lang_runtime_errors_total");
    }
    auto Main = findTopLevel("main");
    if (!Main)
      RT->panicNow("grs: program has no func main");
    if (!Main->Params.empty())
      RT->panicNow("grs: func main must take no parameters");
    auto C = std::make_shared<Closure>();
    C->Fn = Main;
    // main pushes NO chain frame: its body runs at chain root, exactly
    // like a corpus::hostBody C++ lambda — required for twin parity.
    callClosure(C, {}, Main->P, /*PushFrame=*/false);
  }

private:
  std::shared_ptr<const Program> Prog;
  rt::Runtime *RT = nullptr;
  uint64_t SpawnSeq = 0;
  /// Per-goroutine interpreter call depth (bounds runaway recursion well
  /// before the 256 KiB fiber stack would overflow).
  std::unordered_map<race::Tid, int> Depth;
  /// Every environment ever created, for cycle-breaking in ~Interp.
  std::vector<std::shared_ptr<Env>> AllEnvs;
  obs::Counter *CStatements = nullptr;
  obs::Counter *CCalls = nullptr;
  obs::Counter *CSpawns = nullptr;
  obs::Counter *CDefers = nullptr;
  obs::Counter *CSelects = nullptr;
  obs::Counter *CErrors = nullptr;

  static constexpr int MaxCallDepth = 256;

  struct DepthGuard {
    Interp &In;
    race::Tid T;
    DepthGuard(Interp &In, Pos P) : In(In), T(In.RT->tid()) {
      if (++In.Depth[T] > MaxCallDepth) {
        --In.Depth[T];
        In.fail(P, "call depth limit exceeded");
      }
    }
    ~DepthGuard() { --In.Depth[T]; }
  };

  //===------------------------------------------------------------------===//
  // Errors
  //===------------------------------------------------------------------===//

  /// A grs-level type/lookup error: counted, then raised as a Go panic at
  /// the offending source position so the run (not the sweep) dies.
  [[noreturn]] void fail(Pos P, const std::string &Msg) {
    obs::inc(CErrors);
    RT->panicNow("grs: " + Prog->FileName + ":" + std::to_string(P.Line) +
                 ":" + std::to_string(P.Col) + ": " + Msg);
  }

  int64_t wantInt(const Value &V, Pos P, const char *What) {
    if (V.K != Value::Kind::Int)
      fail(P, std::string(What) + " requires an int, got " + kindName(V.K));
    return V.I;
  }

  bool wantBool(const Value &V, Pos P, const char *What) {
    if (V.K != Value::Kind::Bool)
      fail(P, std::string(What) + " requires a bool, got " + kindName(V.K));
    return V.B;
  }

  //===------------------------------------------------------------------===//
  // Environments
  //===------------------------------------------------------------------===//

  std::shared_ptr<Env> newEnv(std::shared_ptr<Env> Parent) {
    auto E = std::make_shared<Env>();
    E->Parent = std::move(Parent);
    AllEnvs.push_back(E);
    return E;
  }

  std::shared_ptr<Cell> findCell(const std::shared_ptr<Env> &E,
                                 const std::string &Name) {
    for (Env *Cur = E.get(); Cur; Cur = Cur->Parent.get())
      for (const auto &[N, C] : Cur->Vars)
        if (N == Name)
          return C;
    return nullptr;
  }

  /// `name := value`: a fresh cell with a fresh shadow address, written
  /// (instrumented). Re-declaring in the same scope replaces the binding
  /// (documented grs deviation; Go would reject it).
  void declare(const std::shared_ptr<Env> &E, const std::string &Name,
               Value V) {
    auto C = std::make_shared<Cell>();
    C->Name = Name;
    C->A = RT->allocAddr();
    RT->write(C->A, Name);
    C->V = std::move(V);
    for (auto &[N, Slot] : E->Vars)
      if (N == Name) {
        Slot = std::move(C);
        return;
      }
    E->Vars.emplace_back(Name, std::move(C));
  }

  std::shared_ptr<const FuncLit> findTopLevel(const std::string &Name) {
    for (const auto &F : Prog->Funcs)
      if (F->Name == Name)
        return F;
    return nullptr;
  }

  //===------------------------------------------------------------------===//
  // Calls
  //===------------------------------------------------------------------===//

  Value callClosure(const std::shared_ptr<Closure> &C, std::vector<Value> Args,
                    Pos CallP, bool PushFrame) {
    obs::inc(CCalls);
    if (!C || !C->Fn)
      fail(CallP, "call of nil function");
    DepthGuard DG(*this, CallP);
    const FuncLit &Fn = *C->Fn;
    if (Args.size() != Fn.Params.size())
      fail(CallP, "wrong argument count calling " +
                      (Fn.Name.empty() ? std::string("func literal")
                                       : "'" + Fn.Name + "'") +
                      ": want " + std::to_string(Fn.Params.size()) +
                      ", got " + std::to_string(Args.size()));
    auto E = newEnv(C->Captured);
    CallCtx Ctx;
    // Named functions (top-level or literal) push a call-chain frame, the
    // interpreter's stand-in for compiler-inserted FuncScope
    // instrumentation; anonymous literals are chain-invisible, matching
    // the C++ twins' plain lambdas. The frame pops AFTER the defers run
    // (twins declare Defer inside the FuncScope).
    std::optional<rt::FuncScope> Scope;
    if (PushFrame && !Fn.Name.empty())
      Scope.emplace(Fn.Name, Prog->FileName, Fn.P.Line);
    for (size_t I = 0; I < Args.size(); ++I)
      declare(E, Fn.Params[I], std::move(Args[I]));
    try {
      execBlock(Fn.Body, E, Ctx);
    } catch (const rt::GoPanic &) {
      // Panic unwind still runs this call's defers (Go semantics); a
      // secondary panic from a defer is swallowed so the original
      // propagates. rt::AbortFiber is NOT caught here: teardown skips
      // defers and unwinds straight through.
      while (!Ctx.Defers.empty()) {
        auto Thunk = std::move(Ctx.Defers.back());
        Ctx.Defers.pop_back();
        try {
          Thunk();
        } catch (const rt::GoPanic &) {
        }
      }
      throw;
    }
    while (!Ctx.Defers.empty()) {
      auto Thunk = std::move(Ctx.Defers.back());
      Ctx.Defers.pop_back();
      Thunk(); // A panic here propagates (skipping older defers).
    }
    return std::move(Ctx.Ret);
  }

  //===------------------------------------------------------------------===//
  // Builtins and methods
  //===------------------------------------------------------------------===//

  static bool isBuiltin(const std::string &N) {
    return N == "len" || N == "cap" || N == "append" || N == "delete" ||
           N == "close" || N == "panic" || N == "mutex" || N == "rwmutex" ||
           N == "waitgroup";
  }

  std::string display(const Value &V) {
    switch (V.K) {
    case Value::Kind::Nil:
      return "nil";
    case Value::Kind::Int:
      return std::to_string(V.I);
    case Value::Kind::Bool:
      return V.B ? "true" : "false";
    case Value::Kind::Str:
      return V.S;
    default:
      return kindName(V.K);
    }
  }

  std::string encodeKey(const Value &V, Pos P) {
    switch (V.K) {
    case Value::Kind::Int:
      return "i:" + std::to_string(V.I);
    case Value::Kind::Str:
      return "s:" + V.S;
    case Value::Kind::Bool:
      return V.B ? "b:1" : "b:0";
    default:
      fail(P, std::string("invalid map key type ") + kindName(V.K));
    }
  }

  Value callBuiltin(const std::string &Name, std::vector<Value> Args, Pos P) {
    auto arity = [&](size_t N) {
      if (Args.size() != N)
        fail(P, Name + "() takes " + std::to_string(N) + " argument(s), got " +
                    std::to_string(Args.size()));
    };
    if (Name == "len") {
      arity(1);
      const Value &V = Args[0];
      switch (V.K) {
      case Value::Kind::Str:
        return intValue(static_cast<int64_t>(V.S.size()));
      case Value::Kind::Map:
        return intValue(static_cast<int64_t>(V.M->len()));
      case Value::Kind::Slice:
        return intValue(static_cast<int64_t>(V.Sl->len()));
      case Value::Kind::Chan:
        return intValue(static_cast<int64_t>(V.Ch->len()));
      default:
        fail(P, std::string("len() of ") + kindName(V.K));
      }
    }
    if (Name == "cap") {
      arity(1);
      const Value &V = Args[0];
      if (V.K == Value::Kind::Chan)
        return intValue(static_cast<int64_t>(V.Ch->cap()));
      if (V.K == Value::Kind::Slice)
        return intValue(static_cast<int64_t>(V.Sl->capacity()));
      fail(P, std::string("cap() of ") + kindName(V.K));
    }
    if (Name == "append") {
      if (Args.size() < 2)
        fail(P, "append() needs a slice and at least one value");
      if (Args[0].K != Value::Kind::Slice)
        fail(P, std::string("append() to ") + kindName(Args[0].K));
      for (size_t I = 1; I < Args.size(); ++I)
        Args[0].Sl->append(std::move(Args[I]));
      return Args[0]; // In-place (reference value); returned for `s = append(s, v)`.
    }
    if (Name == "delete") {
      arity(2);
      if (Args[0].K != Value::Kind::Map)
        fail(P, std::string("delete() from ") + kindName(Args[0].K));
      Args[0].M->erase(encodeKey(Args[1], P));
      return Value();
    }
    if (Name == "close") {
      arity(1);
      if (Args[0].K != Value::Kind::Chan)
        fail(P, std::string("close() of ") + kindName(Args[0].K));
      Args[0].Ch->close();
      return Value();
    }
    if (Name == "panic") {
      arity(1);
      RT->panicNow("panic: " + display(Args[0]));
    }
    // Sync-object constructors. Optional string argument names the object
    // in detector diagnostics (cosmetic; fingerprints ignore it).
    auto ctorName = [&](const char *Default) -> std::string {
      if (Args.empty())
        return Default;
      arity(1);
      if (Args[0].K != Value::Kind::Str)
        fail(P, Name + "() name must be a string");
      return Args[0].S;
    };
    if (Name == "mutex") {
      Value V;
      V.K = Value::Kind::Mutex;
      V.Mu = std::make_shared<rt::Mutex>(ctorName("mutex"));
      return V;
    }
    if (Name == "rwmutex") {
      Value V;
      V.K = Value::Kind::RWMutex;
      V.Rw = std::make_shared<rt::RWMutex>(ctorName("rwmutex"));
      return V;
    }
    if (Name == "waitgroup") {
      Value V;
      V.K = Value::Kind::WaitGroup;
      V.Wg = std::make_shared<rt::WaitGroup>(ctorName("waitgroup"));
      return V;
    }
    fail(P, "undefined: " + Name);
  }

  Value methodOn(const Value &Recv, const std::string &Name,
                 std::vector<Value> Args, Pos P) {
    auto arity = [&](size_t N) {
      if (Args.size() != N)
        fail(P, "." + Name + "() takes " + std::to_string(N) +
                    " argument(s), got " + std::to_string(Args.size()));
    };
    switch (Recv.K) {
    case Value::Kind::Mutex:
      if (Name == "lock") {
        arity(0);
        Recv.Mu->lock();
        return Value();
      }
      if (Name == "unlock") {
        arity(0);
        Recv.Mu->unlock();
        return Value();
      }
      if (Name == "trylock") {
        arity(0);
        return boolValue(Recv.Mu->tryLock());
      }
      break;
    case Value::Kind::RWMutex:
      if (Name == "lock") {
        arity(0);
        Recv.Rw->lock();
        return Value();
      }
      if (Name == "unlock") {
        arity(0);
        Recv.Rw->unlock();
        return Value();
      }
      if (Name == "rlock") {
        arity(0);
        Recv.Rw->rlock();
        return Value();
      }
      if (Name == "runlock") {
        arity(0);
        Recv.Rw->runlock();
        return Value();
      }
      break;
    case Value::Kind::WaitGroup:
      if (Name == "add") {
        arity(1);
        Recv.Wg->add(static_cast<int>(wantInt(Args[0], P, ".add()")));
        return Value();
      }
      if (Name == "done") {
        arity(0);
        Recv.Wg->done();
        return Value();
      }
      if (Name == "wait") {
        arity(0);
        Recv.Wg->wait();
        return Value();
      }
      break;
    case Value::Kind::Chan:
      if (Name == "close") {
        arity(0);
        Recv.Ch->close();
        return Value();
      }
      break;
    case Value::Kind::Map:
      if (Name == "contains") {
        arity(1);
        return boolValue(Recv.M->contains(encodeKey(Args[0], P)));
      }
      break;
    default:
      break;
    }
    fail(P, std::string("unknown method .") + Name + " on " +
                kindName(Recv.K));
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  std::vector<Value> evalArgs(const Expr &CallE,
                              const std::shared_ptr<Env> &Env) {
    std::vector<Value> Args;
    for (size_t I = 1; I < CallE.Kids.size(); ++I)
      Args.push_back(eval(*CallE.Kids[I], Env));
    return Args;
  }

  Value eval(const Expr &E, const std::shared_ptr<Env> &Env) {
    switch (E.K) {
    case ExprKind::IntLit:
      return intValue(E.IntValue);
    case ExprKind::BoolLit:
      return boolValue(E.BoolValue);
    case ExprKind::StrLit: {
      Value V;
      V.K = Value::Kind::Str;
      V.S = E.Str;
      return V;
    }
    case ExprKind::NilLit:
      return Value();
    case ExprKind::Ident: {
      if (auto C = findCell(Env, E.Str)) {
        RT->read(C->A, C->Name);
        return C->V;
      }
      if (auto F = findTopLevel(E.Str)) {
        Value V;
        V.K = Value::Kind::Func;
        V.Fn = std::make_shared<Closure>();
        V.Fn->Fn = F;
        return V;
      }
      fail(E.P, "undefined: " + E.Str);
    }
    case ExprKind::Unary: {
      Value V = eval(*E.Kids[0], Env);
      if (E.Str == "!")
        return boolValue(!wantBool(V, E.P, "operator !"));
      return intValue(-wantInt(V, E.P, "unary -"));
    }
    case ExprKind::Binary:
      return evalBinary(E, Env);
    case ExprKind::Call: {
      const Expr &CalleeE = *E.Kids[0];
      if (CalleeE.K == ExprKind::Ident && !findCell(Env, CalleeE.Str) &&
          !findTopLevel(CalleeE.Str))
        return callBuiltin(CalleeE.Str, evalArgs(E, Env), E.P);
      Value Callee = eval(CalleeE, Env);
      if (Callee.K != Value::Kind::Func)
        fail(E.P, std::string("cannot call ") + kindName(Callee.K));
      return callClosure(Callee.Fn, evalArgs(E, Env), E.P,
                         /*PushFrame=*/true);
    }
    case ExprKind::Method: {
      Value Recv = eval(*E.Kids[0], Env);
      return methodOn(Recv, E.Str, evalArgs(E, Env), E.P);
    }
    case ExprKind::Index: {
      Value C = eval(*E.Kids[0], Env);
      Value Ix = eval(*E.Kids[1], Env);
      if (C.K == Value::Kind::Map)
        return C.M->get(encodeKey(Ix, E.P)); // Missing key → nil, silently.
      if (C.K == Value::Kind::Slice) {
        int64_t I = wantInt(Ix, E.P, "slice index");
        if (I < 0)
          RT->panicNow("runtime error: index out of range");
        return C.Sl->get(static_cast<size_t>(I));
      }
      fail(E.P, std::string("cannot index ") + kindName(C.K));
    }
    case ExprKind::Recv: {
      Value Ch = eval(*E.Kids[0], Env);
      if (Ch.K != Value::Kind::Chan)
        fail(E.P, std::string("receive from ") + kindName(Ch.K));
      return Ch.Ch->recv().first;
    }
    case ExprKind::Func: {
      Value V;
      V.K = Value::Kind::Func;
      V.Fn = std::make_shared<Closure>();
      V.Fn->Fn = E.Fn;
      V.Fn->Captured = Env; // By-reference capture: shares the live cells.
      return V;
    }
    case ExprKind::Make:
      return evalMake(E, Env, E.Str);
    }
    return Value();
  }

  Value evalBinary(const Expr &E, const std::shared_ptr<Env> &Env) {
    const std::string &Op = E.Str;
    if (Op == "&&" || Op == "||") {
      bool L = wantBool(eval(*E.Kids[0], Env), E.P, Op.c_str());
      if (Op == "&&" && !L)
        return boolValue(false);
      if (Op == "||" && L)
        return boolValue(true);
      return boolValue(wantBool(eval(*E.Kids[1], Env), E.P, Op.c_str()));
    }
    Value L = eval(*E.Kids[0], Env);
    Value R = eval(*E.Kids[1], Env);
    if (Op == "==" || Op == "!=") {
      bool Eq;
      if (L.K == Value::Kind::Nil || R.K == Value::Kind::Nil)
        Eq = L.K == R.K;
      else if (L.K != R.K)
        fail(E.P, std::string("cannot compare ") + kindName(L.K) + " with " +
                      kindName(R.K));
      else
        switch (L.K) {
        case Value::Kind::Int:
          Eq = L.I == R.I;
          break;
        case Value::Kind::Bool:
          Eq = L.B == R.B;
          break;
        case Value::Kind::Str:
          Eq = L.S == R.S;
          break;
        default:
          fail(E.P, std::string(kindName(L.K)) + " values are not comparable");
        }
      return boolValue(Op == "==" ? Eq : !Eq);
    }
    if (Op == "+" && L.K == Value::Kind::Str && R.K == Value::Kind::Str) {
      Value V;
      V.K = Value::Kind::Str;
      V.S = L.S + R.S;
      return V;
    }
    int64_t A = wantInt(L, E.P, Op.c_str());
    int64_t B = wantInt(R, E.P, Op.c_str());
    if (Op == "+")
      return intValue(A + B);
    if (Op == "-")
      return intValue(A - B);
    if (Op == "*")
      return intValue(A * B);
    if (Op == "/" || Op == "%") {
      if (B == 0)
        RT->panicNow("runtime error: integer divide by zero");
      return intValue(Op == "/" ? A / B : A % B);
    }
    if (Op == "<")
      return boolValue(A < B);
    if (Op == "<=")
      return boolValue(A <= B);
    if (Op == ">")
      return boolValue(A > B);
    return boolValue(A >= B); // >=
  }

  /// make(chan|map|slice, ...). \p Name labels the rt object in reports
  /// (the declared variable's name when reachable from a `x := make(...)`).
  Value evalMake(const Expr &E, const std::shared_ptr<Env> &Env,
                 const std::string &Name) {
    Value V;
    if (E.Str == "chan") {
      int64_t Cap = 0;
      if (!E.Kids.empty())
        Cap = wantInt(eval(*E.Kids[0], Env), E.P, "chan capacity");
      if (Cap < 0)
        fail(E.P, "negative channel capacity");
      V.K = Value::Kind::Chan;
      V.Ch = std::make_shared<rt::Chan<Value>>(static_cast<size_t>(Cap),
                                               Name);
      return V;
    }
    if (E.Str == "map") {
      if (!E.Kids.empty())
        fail(E.P, "make(map) takes no size");
      V.K = Value::Kind::Map;
      V.M = std::make_shared<rt::GoMap<std::string, Value>>(Name);
      return V;
    }
    // slice
    int64_t Len = 0, Cap = -1;
    if (!E.Kids.empty())
      Len = wantInt(eval(*E.Kids[0], Env), E.P, "slice length");
    if (E.Kids.size() > 1)
      Cap = wantInt(eval(*E.Kids[1], Env), E.P, "slice capacity");
    if (Len < 0 || (Cap >= 0 && Cap < Len))
      fail(E.P, "invalid slice length/capacity");
    V.K = Value::Kind::Slice;
    V.Sl = std::make_shared<rt::GoSlice<Value>>(rt::GoSlice<Value>::make(
        Name, static_cast<size_t>(Len),
        static_cast<size_t>(Cap < 0 ? Len : Cap)));
    return V;
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  Flow execBlock(const Block &B, const std::shared_ptr<Env> &Env,
                 CallCtx &Ctx) {
    for (const auto &S : B.Stmts) {
      Flow F = execStmt(*S, Env, Ctx);
      if (F != Flow::Normal)
        return F;
    }
    return Flow::Normal;
  }

  Flow execStmt(const Stmt &S, const std::shared_ptr<Env> &Env,
                CallCtx &Ctx) {
    obs::inc(CStatements);
    // Per-statement line marker (the interpreter's stand-in for debug
    // locations); a no-op at chain root, where no frame is pushed.
    RT->det().setLine(RT->tid(), S.P.Line);
    switch (S.K) {
    case StmtKind::Decl: {
      Value V = S.E->K == ExprKind::Make ? evalMake(*S.E, Env, S.Name)
                                         : eval(*S.E, Env);
      declare(Env, S.Name, std::move(V));
      return Flow::Normal;
    }
    case StmtKind::Assign: {
      Value V = eval(*S.E, Env);
      auto C = findCell(Env, S.Name);
      if (!C)
        fail(S.P, "undefined: " + S.Name + " (declare with ':=')");
      RT->write(C->A, C->Name);
      C->V = std::move(V);
      return Flow::Normal;
    }
    case StmtKind::IndexAssign: {
      Value Cont = eval(*S.E, Env);
      Value Ix = eval(*S.E2, Env);
      Value V = eval(*S.E3, Env);
      if (Cont.K == Value::Kind::Map) {
        Cont.M->set(encodeKey(Ix, S.P), std::move(V));
        return Flow::Normal;
      }
      if (Cont.K == Value::Kind::Slice) {
        int64_t I = wantInt(Ix, S.P, "slice index");
        if (I < 0)
          RT->panicNow("runtime error: index out of range");
        Cont.Sl->set(static_cast<size_t>(I), std::move(V));
        return Flow::Normal;
      }
      fail(S.P, std::string("cannot index-assign ") + kindName(Cont.K));
    }
    case StmtKind::ExprStmt:
      eval(*S.E, Env);
      return Flow::Normal;
    case StmtKind::If: {
      if (wantBool(eval(*S.E, Env), S.P, "if condition"))
        return execBlock(S.Body, newEnv(Env), Ctx);
      if (!S.ElseBody.Stmts.empty())
        return execBlock(S.ElseBody, newEnv(Env), Ctx);
      return Flow::Normal;
    }
    case StmtKind::For: {
      auto LoopEnv = newEnv(Env);
      if (S.Init) {
        Flow F = execStmt(*S.Init, LoopEnv, Ctx);
        if (F != Flow::Normal)
          return F;
      }
      for (;;) {
        // Every iteration is a scheduling point, so `for {}` burns steps
        // instead of wedging the scheduler (MaxSteps then ends the run).
        RT->preemptPoint();
        if (S.E && !wantBool(eval(*S.E, LoopEnv), S.P, "for condition"))
          break;
        Flow F = execBlock(S.Body, newEnv(LoopEnv), Ctx);
        if (F == Flow::Break)
          break;
        if (F == Flow::Return)
          return F;
        if (S.Post) {
          Flow PF = execStmt(*S.Post, LoopEnv, Ctx);
          if (PF != Flow::Normal)
            return PF;
        }
      }
      return Flow::Normal;
    }
    case StmtKind::Go:
      execGo(S, Env);
      return Flow::Normal;
    case StmtKind::Defer:
      execDefer(S, Env, Ctx);
      return Flow::Normal;
    case StmtKind::Return:
      if (S.E)
        Ctx.Ret = eval(*S.E, Env);
      return Flow::Return;
    case StmtKind::Send: {
      Value Ch = eval(*S.E, Env);
      if (Ch.K != Value::Kind::Chan)
        fail(S.P, std::string("send to ") + kindName(Ch.K));
      Value V = eval(*S.E2, Env);
      Ch.Ch->send(std::move(V));
      return Flow::Normal;
    }
    case StmtKind::Select:
      return execSelect(S, Env, Ctx);
    case StmtKind::Break:
      return Flow::Break;
    case StmtKind::Continue:
      return Flow::Continue;
    case StmtKind::BlockStmt:
      return execBlock(S.Body, newEnv(Env), Ctx);
    }
    return Flow::Normal;
  }

  /// `go [label] f(args)`: callee, receiver and arguments evaluate NOW in
  /// the spawning goroutine (Go's rule); only the body runs concurrently.
  /// The spawned thunk keeps the interpreter alive via shared_ptr — a
  /// leaked goroutine may outlive main's interpreter call.
  void execGo(const Stmt &S, const std::shared_ptr<Env> &Env) {
    obs::inc(CSpawns);
    const Expr &CallE = *S.E;
    std::string Label =
        S.Name.empty() ? "goroutine-" + std::to_string(++SpawnSeq) : S.Name;
    auto Self = shared_from_this();
    if (CallE.K == ExprKind::Method) {
      Value Recv = eval(*CallE.Kids[0], Env);
      std::vector<Value> Args = evalArgs(CallE, Env);
      std::string Name = CallE.Str;
      Pos P = CallE.P;
      RT->go(Label, [Self, Recv, Name, Args, P]() mutable {
        Self->methodOn(Recv, Name, std::move(Args), P);
      });
      return;
    }
    const Expr &CalleeE = *CallE.Kids[0];
    if (CalleeE.K == ExprKind::Ident && !findCell(Env, CalleeE.Str) &&
        !findTopLevel(CalleeE.Str)) {
      std::string Name = CalleeE.Str;
      std::vector<Value> Args = evalArgs(CallE, Env);
      Pos P = CallE.P;
      RT->go(Label, [Self, Name, Args, P]() mutable {
        Self->callBuiltin(Name, std::move(Args), P);
      });
      return;
    }
    Value Callee = eval(CalleeE, Env);
    if (Callee.K != Value::Kind::Func)
      fail(S.P, std::string("go requires a function call, cannot call ") +
                    kindName(Callee.K));
    std::vector<Value> Args = evalArgs(CallE, Env);
    auto Fn = Callee.Fn;
    Pos P = CallE.P;
    RT->go(Label, [Self, Fn, Args, P]() mutable {
      Self->callClosure(Fn, std::move(Args), P, /*PushFrame=*/true);
    });
  }

  /// `defer f(args)`: receiver/callee/arguments evaluate NOW; the call
  /// itself is pushed onto the enclosing FUNCTION's defer stack (LIFO at
  /// exit), regardless of block nesting — Go semantics.
  void execDefer(const Stmt &S, const std::shared_ptr<Env> &Env,
                 CallCtx &Ctx) {
    obs::inc(CDefers);
    const Expr &CallE = *S.E;
    if (CallE.K == ExprKind::Method) {
      Value Recv = eval(*CallE.Kids[0], Env);
      std::vector<Value> Args = evalArgs(CallE, Env);
      std::string Name = CallE.Str;
      Pos P = CallE.P;
      Ctx.Defers.push_back([this, Recv, Name, Args, P]() mutable {
        methodOn(Recv, Name, std::move(Args), P);
      });
      return;
    }
    const Expr &CalleeE = *CallE.Kids[0];
    if (CalleeE.K == ExprKind::Ident && !findCell(Env, CalleeE.Str) &&
        !findTopLevel(CalleeE.Str)) {
      std::string Name = CalleeE.Str;
      std::vector<Value> Args = evalArgs(CallE, Env);
      Pos P = CallE.P;
      Ctx.Defers.push_back([this, Name, Args, P]() mutable {
        callBuiltin(Name, std::move(Args), P);
      });
      return;
    }
    Value Callee = eval(CalleeE, Env);
    if (Callee.K != Value::Kind::Func)
      fail(S.P, std::string("defer requires a function call, cannot call ") +
                    kindName(Callee.K));
    std::vector<Value> Args = evalArgs(CallE, Env);
    auto Fn = Callee.Fn;
    Pos P = CallE.P;
    Ctx.Defers.push_back([this, Fn, Args, P]() mutable {
      callClosure(Fn, std::move(Args), P, /*PushFrame=*/true);
    });
  }

  Flow execSelect(const Stmt &S, const std::shared_ptr<Env> &Env,
                  CallCtx &Ctx) {
    obs::inc(CSelects);
    rt::Selector Sel;
    Flow Result = Flow::Normal;
    // Channel operands (and send values) evaluate up front, in case
    // order, as in Go. Keep holds the channel references alive across
    // run() — the Selector stores only raw Chan&.
    std::vector<Value> Keep;
    Keep.reserve(S.Cases.size());
    const SelectCase *DefaultCase = nullptr;
    for (const auto &C : S.Cases) {
      if (C.K == SelectCase::Kind::Default) {
        DefaultCase = &C;
        continue;
      }
      Value ChV = eval(*C.Ch, Env);
      if (ChV.K != Value::Kind::Chan)
        fail(C.P, std::string("select case on ") + kindName(ChV.K));
      Keep.push_back(ChV);
      rt::Chan<Value> &Ch = *ChV.Ch;
      const SelectCase *CC = &C;
      if (C.K == SelectCase::Kind::Recv) {
        Sel.onRecv(Ch, std::function<void(Value, bool)>(
                           [this, CC, &Env, &Ctx, &Result](Value V, bool) {
                             auto CaseEnv = newEnv(Env);
                             if (!CC->BindName.empty())
                               declare(CaseEnv, CC->BindName, std::move(V));
                             Result = execBlock(CC->Body, CaseEnv, Ctx);
                           }));
      } else {
        Value SendV = eval(*C.Val, Env);
        Sel.onSend(Ch, std::move(SendV),
                   std::function<void()>([this, CC, &Env, &Ctx, &Result]() {
                     Result = execBlock(CC->Body, newEnv(Env), Ctx);
                   }));
      }
    }
    if (DefaultCase)
      Sel.onDefault([this, DefaultCase, &Env, &Ctx, &Result]() {
        Result = execBlock(DefaultCase->Body, newEnv(Env), Ctx);
      });
    Sel.run();
    if (Result == Flow::Break)
      return Flow::Normal; // break inside select exits the select only.
    return Result;
  }
};

} // namespace

std::function<void()> lang::body(std::shared_ptr<const Program> P) {
  return [P]() {
    auto In = std::make_shared<Interp>(P);
    In->runMain();
  };
}

rt::RunResult lang::run(std::shared_ptr<const Program> P, rt::Runtime &RT) {
  // Flight recorder: interpretation rides the run's timeline lane when
  // the caller wired one through RunOptions. The span brackets the whole
  // scheduler run, so a sweep slot's trace shows where the interpreted
  // program's time went.
  obs::TimelineTrack *Track = RT.options().TimelineTrack;
  obs::TimelineScope Tl =
      Track ? obs::TimelineScope(Track, "interpret",
                                 "\"seed\":" +
                                     std::to_string(RT.options().Seed))
            : obs::TimelineScope();
  return RT.run(body(std::move(P)));
}

rt::RunResult lang::run(const Program &P, rt::Runtime &RT) {
  // Non-owning alias; the caller guarantees P outlives RT.
  return run(std::shared_ptr<const Program>(std::shared_ptr<const Program>(),
                                            &P),
             RT);
}

std::function<rt::RunResult(const rt::RunOptions &)>
lang::runner(std::shared_ptr<const Program> P) {
  return [P](const rt::RunOptions &Opts) {
    rt::Runtime RT(Opts);
    obs::TimelineScope Tl =
        Opts.TimelineTrack
            ? obs::TimelineScope(Opts.TimelineTrack, "interpret",
                                 "\"seed\":" + std::to_string(Opts.Seed))
            : obs::TimelineScope();
    return RT.run(body(P));
  };
}
