//===- lang/Generator.cpp - Seeded grs program fuzzer ----------------------===//

#include "lang/Generator.h"

#include "lang/Interp.h"
#include "pipeline/Sweep.h"
#include "support/Rng.h"

#include <sstream>

using namespace grs;
using namespace grs::lang;

namespace {

/// Per-shared-variable safety policy in benign programs.
enum class Policy : uint8_t {
  Guarded,  ///< Every access from any worker holds the mutex.
  Owned,    ///< Exactly one worker touches it (unguarded).
  ReadOnly, ///< Written only by main before any spawn.
};

struct VarPlan {
  std::string Name;
  Policy Pol;
  int Owner = -1; ///< Worker index for Policy::Owned.
};

/// Emits one worker op. Racy programs never draw channel ops: a channel
/// edge from one racy worker to the other would order the victim
/// increments and turn the guaranteed race into a schedule-dependent
/// one, breaking ground truth.
void emitOp(std::ostringstream &Out, support::Rng &R,
            const std::vector<VarPlan> &Vars, int Worker, bool AllowChan,
            bool HaveChan) {
  for (int Attempt = 0; Attempt < 8; ++Attempt) {
    switch (R.nextBelow(5)) {
    case 0: { // Guarded increment.
      std::vector<const VarPlan *> Cand;
      for (const VarPlan &V : Vars)
        if (V.Pol == Policy::Guarded)
          Cand.push_back(&V);
      if (Cand.empty())
        break;
      const VarPlan &V = *Cand[R.nextBelow(Cand.size())];
      Out << "\t\tmu.lock()\n"
          << "\t\t" << V.Name << " = " << V.Name << " + 1\n"
          << "\t\tmu.unlock()\n";
      return;
    }
    case 1: { // Owner-only increment.
      std::vector<const VarPlan *> Cand;
      for (const VarPlan &V : Vars)
        if (V.Pol == Policy::Owned && V.Owner == Worker)
          Cand.push_back(&V);
      if (Cand.empty())
        break;
      const VarPlan &V = *Cand[R.nextBelow(Cand.size())];
      Out << "\t\t" << V.Name << " = " << V.Name << " + "
          << R.rangeInclusive(1, 3) << "\n";
      return;
    }
    case 2: { // Read-only read into a worker-local.
      std::vector<const VarPlan *> Cand;
      for (const VarPlan &V : Vars)
        if (V.Pol == Policy::ReadOnly)
          Cand.push_back(&V);
      if (Cand.empty())
        break;
      const VarPlan &V = *Cand[R.nextBelow(Cand.size())];
      Out << "\t\tsnapshot := " << V.Name << " + local\n"
          << "\t\tlocal = snapshot\n";
      return;
    }
    case 3: { // Local loop (pure fiber-local compute).
      int64_t N = R.rangeInclusive(2, 5);
      Out << "\t\tfor j := 0; j < " << N << "; j = j + 1 {\n"
          << "\t\t\tlocal = local + j\n"
          << "\t\t}\n";
      return;
    }
    case 4: { // Non-blocking channel traffic (benign programs only).
      if (!AllowChan || !HaveChan)
        break;
      if (R.chance(0.5)) {
        Out << "\t\tch <- local\n"; // Buffered, capacity covers all sends.
      } else {
        Out << "\t\tselect {\n"
            << "\t\tcase got := <-ch:\n"
            << "\t\t\tlocal = got\n"
            << "\t\tdefault:\n"
            << "\t\t\tlocal = local + 1\n"
            << "\t\t}\n";
      }
      return;
    }
    }
  }
  // Every draw hit an empty candidate pool; fall back to local work.
  Out << "\t\tlocal = local + 1\n";
}

} // namespace

GeneratedProgram grs::lang::generateProgram(uint64_t ProgramSeed) {
  support::Rng R(ProgramSeed ^ 0x6772732d67656eULL); // "grs-gen"

  GeneratedProgram G;
  G.ProgramSeed = ProgramSeed;
  G.Racy = R.chance(0.5);

  int NumVars = static_cast<int>(R.rangeInclusive(2, 4));
  int NumWorkers = static_cast<int>(R.rangeInclusive(2, 3));
  bool UseChan = !G.Racy && R.chance(0.6);
  int OpsPerWorker = static_cast<int>(R.rangeInclusive(1, 4));

  std::vector<VarPlan> Vars;
  for (int I = 0; I < NumVars; ++I) {
    VarPlan V;
    V.Name = "v" + std::to_string(I);
    switch (R.nextBelow(3)) {
    case 0:
      V.Pol = Policy::Guarded;
      break;
    case 1:
      V.Pol = Policy::Owned;
      V.Owner = static_cast<int>(R.nextBelow(NumWorkers));
      break;
    default:
      V.Pol = Policy::ReadOnly;
      break;
    }
    Vars.push_back(V);
  }

  // The racy pair: two distinct workers end with an unguarded increment
  // of a dedicated victim cell. Being each worker's final op, the
  // increment follows every unlock that worker performs, so no mutex
  // edge can order the two increments; wg.done() only releases toward
  // main's wait. Unordered on every schedule => flagged on every seed.
  int RacyA = 0, RacyB = 0;
  if (G.Racy) {
    RacyA = static_cast<int>(R.nextBelow(NumWorkers));
    RacyB = static_cast<int>(R.nextBelow(NumWorkers - 1));
    if (RacyB >= RacyA)
      ++RacyB;
  }

  // Channel capacity must cover every send that can happen: each op
  // slot of each worker could be a send.
  int ChanCap = NumWorkers * OpsPerWorker + 1;

  std::ostringstream Out;
  Out << "// grs-gen program " << ProgramSeed << " ("
      << (G.Racy ? "racy" : "benign") << ")\n";
  Out << "func main() {\n";
  for (const VarPlan &V : Vars)
    Out << "\t" << V.Name << " := " << R.rangeInclusive(0, 9) << "\n";
  if (G.Racy)
    Out << "\tvictim := 0\n";
  Out << "\tmu := mutex(\"mu\")\n";
  Out << "\twg := waitgroup(\"wg\")\n";
  if (UseChan)
    Out << "\tch := make(chan, " << ChanCap << ")\n";

  for (int W = 0; W < NumWorkers; ++W) {
    Out << "\twg.add(1)\n";
    Out << "\tgo \"w" << W << "\" func worker" << W << "() {\n";
    Out << "\t\tlocal := " << W << "\n";
    for (int Op = 0; Op < OpsPerWorker; ++Op)
      emitOp(Out, R, Vars, W, /*AllowChan=*/!G.Racy, UseChan);
    if (G.Racy && (W == RacyA || W == RacyB))
      Out << "\t\tvictim = victim + local\n";
    Out << "\t\twg.done()\n";
    Out << "\t}()\n";
  }
  Out << "\twg.wait()\n";
  // Post-wait audit reads are ordered behind every worker via the
  // done->wait edges (add precedes each spawn), so they never race.
  Out << "\ttotal := 0\n";
  for (const VarPlan &V : Vars)
    Out << "\ttotal = total + " << V.Name << "\n";
  if (G.Racy)
    Out << "\ttotal = total + victim\n";
  Out << "}\n";

  G.Source = Out.str();
  G.Parsed = parseProgram(G.Source,
                          "gen-" + std::to_string(ProgramSeed) + ".grs");
  return G;
}

DifferentialOutcome
grs::lang::differentialSweep(const DifferentialOptions &Opts) {
  DifferentialOutcome Outcome;
  for (unsigned I = 0; I < Opts.NumPrograms; ++I) {
    uint64_t ProgramSeed = Opts.FirstProgram + I;
    GeneratedProgram G = generateProgram(ProgramSeed);
    ++Outcome.Programs;
    if (!G.Parsed.ok()) {
      ++Outcome.ParseFailures;
      continue;
    }
    (G.Racy ? Outcome.RacyPrograms : Outcome.BenignPrograms) += 1;

    pipeline::SweepOptions SweepOpts;
    SweepOpts.NumSeeds = Opts.SweepSeeds;
    std::shared_ptr<const Program> P = G.Parsed.Prog;
    pipeline::SweepResult Sweep = pipeline::sweep(SweepOpts, body(P));

    Outcome.Panics += static_cast<unsigned>(Sweep.SeedsWithPanics);
    Outcome.Deadlocks += static_cast<unsigned>(Sweep.SeedsDeadlocked);
    Outcome.Leaks += static_cast<unsigned>(Sweep.SeedsWithLeaks);

    bool Flagged = Sweep.SeedsWithRaces > 0;
    if (G.Racy && Sweep.SeedsWithRaces != Sweep.SeedsRun) {
      // Constructed races have no ordering escape hatch: every seed
      // must flag, not merely one.
      ++Outcome.Misses;
      Outcome.MissSeeds.push_back(ProgramSeed);
    } else if (!G.Racy && Flagged) {
      ++Outcome.FalsePositives;
      Outcome.FalsePositiveSeeds.push_back(ProgramSeed);
    }
  }
  return Outcome;
}
