//===- lang/Lexer.h - Tokenizer for the grs race-program DSL ----*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for "grs", the interpreted race-program language (ROADMAP
/// item 3): a Go-shaped surface whose primitives are exactly the rt/
/// layer, so the §4 corpus patterns become data files instead of C++
/// bodies.
///
/// The lexer follows Go's concrete decisions where they matter for
/// writing programs that LOOK like the paper's listings:
///
///  * `//` line comments;
///  * double-quoted strings with \n \t \" \\ escapes;
///  * automatic semicolon insertion — a newline terminates the statement
///    when the previous token could end one (identifier, literal, `)`,
///    `}`, `]`, `return`, `break`, `continue`), which is why `} else {`
///    must share a line, exactly as in Go.
///
/// Lexing never fails hard: unknown characters, unterminated strings and
/// overflowing integers produce Diags with line:col positions and the
/// lexer keeps going, so the parser always receives a well-formed token
/// stream ending in Eof. This is the first half of the "no crash on any
/// truncation" robustness contract LangTest enforces.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_LANG_LEXER_H
#define GRS_LANG_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace grs {
namespace lang {

/// A source diagnostic (lexer or parser). Positions are 1-based.
struct Diag {
  uint32_t Line = 0;
  uint32_t Col = 0;
  std::string Message;
};

/// Renders \p D as "file:line:col: message" (the clickable format).
std::string renderDiag(const std::string &File, const Diag &D);

enum class Tok : uint8_t {
  Eof,
  Ident,
  Int,
  Str,
  // Keywords.
  KwFunc,
  KwGo,
  KwDefer,
  KwReturn,
  KwIf,
  KwElse,
  KwFor,
  KwSelect,
  KwCase,
  KwDefault,
  KwBreak,
  KwContinue,
  KwTrue,
  KwFalse,
  KwNil,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  Dot,
  // Operators.
  Assign,  // =
  Define,  // :=
  Eq,      // ==
  Ne,      // !=
  Lt,      // <
  Le,      // <=
  Gt,      // >
  Ge,      // >=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  AndAnd,
  OrOr,
  Not,
  Arrow, // <-
};

/// Stable spelling of \p K for diagnostics ("identifier", "':='", ...).
const char *tokName(Tok K);

struct Token {
  Tok K = Tok::Eof;
  /// Identifier spelling / string literal value (after escapes).
  std::string Text;
  /// Integer literal value.
  int64_t IntValue = 0;
  uint32_t Line = 0;
  uint32_t Col = 0;
};

struct LexResult {
  std::vector<Token> Tokens; ///< Always non-empty; last token is Eof.
  std::vector<Diag> Diags;
};

/// Tokenizes \p Source. Total: every byte sequence yields a token stream
/// plus possibly diagnostics, never an exception.
LexResult lex(const std::string &Source);

} // namespace lang
} // namespace grs

#endif // GRS_LANG_LEXER_H
