//===- lang/Ports.h - Registry of .grs corpus ports -------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The catalog of corpus patterns ported to interpreted `.grs` programs
/// under testdata/lang/. Each entry names its hand-written C++ twin in
/// corpus::ScheduleDeps and pins the §3.3.1 fingerprint set the
/// interpreted program must reproduce — same function-name chains, same
/// goroutine labels, so fingerprints are bit-identical to the twin's.
///
/// Detection RATES are not pinned here: the interpreter performs extra
/// instrumented accesses (variable cells), which perturbs per-seed
/// schedules, so a port and its twin can manifest on different seeds.
/// What must agree — and what LangTest / bench_lang assert — is the
/// fingerprint SET over a sweep, plus every-seed detection for ports
/// whose twin is schedule-independent (Always).
///
//===----------------------------------------------------------------------===//

#ifndef GRS_LANG_PORTS_H
#define GRS_LANG_PORTS_H

#include "lang/Parser.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grs {
namespace lang {

/// One ported corpus pattern.
struct LangPort {
  /// Stable id for reporting; matches the corpus twin's id when the
  /// twin is registered in corpus::ScheduleDeps.
  std::string Id;

  /// Path under testdata/, e.g. "lang/partial_locking.grs".
  std::string File;

  /// corpus::ScheduleDeps id of the C++ twin ("" when the twin is not
  /// a registered needle — e.g. the lint-exemplar ports).
  std::string TwinId;

  /// True when the race manifests on every seed (schedule-independent
  /// happens-before violation, like the twin's Always flag).
  bool Always = false;

  /// True when the program must sweep race-free (negative exemplars).
  bool RaceFree = false;

  /// The §3.3.1 fingerprints the port must produce over a sweep —
  /// identical to the twin's. Empirically pinned; see LangTest.
  std::vector<uint64_t> ExpectedFps;
};

/// All registered ports, stable order.
const std::vector<LangPort> &langPorts();

/// Lookup by id; nullptr when unknown.
const LangPort *findLangPort(const std::string &Id);

/// Resolves a path under testdata/ from common working directories
/// (source root, build/, build/tests/). Returns "" when unreachable.
std::string findTestdataPath(const std::string &Rel);

/// Reads and parses a .grs file. On I/O or parse failure returns a
/// result whose ok() is false, with diagnostics rendered into *Error
/// when Error is non-null.
ParseResult loadProgramFile(const std::string &Path,
                            std::string *Error = nullptr);

} // namespace lang
} // namespace grs

#endif // GRS_LANG_PORTS_H
