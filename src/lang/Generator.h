//===- lang/Generator.h - Seeded grs program fuzzer -------------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of VALID grs programs with known ground truth,
/// plus the differential-testing harness built on it. Each program seed
/// deterministically yields one program that is either
///
///  * racy   — two workers perform unguarded increments of a dedicated
///             victim variable with no happens-before edge between them
///             on ANY schedule (the increments are each worker's final
///             ops, after every unlock, and racy programs use no
///             channels), so a sound detector must flag every seed; or
///  * benign — every shared variable follows a safe policy (all-access
///             mutex-guarded, single-owner, or read-only-after-init)
///             and channel use is non-blocking by construction, so any
///             report is a detector false positive.
///
/// The harness sweeps each generated program through the interpreter
/// and scores verdicts against ground truth: a racy program that never
/// flags is a MISS; a benign program that flags is a FALSE POSITIVE;
/// any panic, deadlock, or leak is a generator-or-runtime bug. This is
/// the `bench_lang --smoke` gate.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_LANG_GENERATOR_H
#define GRS_LANG_GENERATOR_H

#include "lang/Parser.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grs {
namespace lang {

/// One generated program with its ground truth.
struct GeneratedProgram {
  uint64_t ProgramSeed = 0;
  bool Racy = false;               ///< Ground truth.
  std::string Source;              ///< The grs source text.
  ParseResult Parsed;              ///< Parsed form; ok() is a generator
                                   ///< invariant checked by the harness.
};

/// Deterministically generates the program for \p ProgramSeed.
GeneratedProgram generateProgram(uint64_t ProgramSeed);

/// Differential harness options.
struct DifferentialOptions {
  uint64_t FirstProgram = 1;
  unsigned NumPrograms = 500;
  /// Schedule seeds swept per program. Racy programs race on every
  /// schedule by construction, so a handful suffices for miss checks;
  /// more seeds sharpen the false-positive check.
  unsigned SweepSeeds = 8;
};

/// Aggregated differential outcome.
struct DifferentialOutcome {
  unsigned Programs = 0;
  unsigned RacyPrograms = 0;
  unsigned BenignPrograms = 0;
  unsigned ParseFailures = 0;
  unsigned Misses = 0;         ///< Racy program with zero flagged seeds.
  unsigned FalsePositives = 0; ///< Benign program with a flagged seed.
  unsigned Panics = 0;         ///< Seeds panicking across all programs.
  unsigned Deadlocks = 0;
  unsigned Leaks = 0;
  /// Offending program seeds, for reproduction.
  std::vector<uint64_t> MissSeeds;
  std::vector<uint64_t> FalsePositiveSeeds;

  bool ok() const {
    return ParseFailures == 0 && Misses == 0 && FalsePositives == 0 &&
           Panics == 0 && Deadlocks == 0 && Leaks == 0;
  }
};

/// Generates and sweeps NumPrograms programs, scoring detector verdicts
/// against ground truth.
DifferentialOutcome differentialSweep(const DifferentialOptions &Opts);

} // namespace lang
} // namespace grs

#endif // GRS_LANG_GENERATOR_H
