//===- svc/Store.h - Crash-consistent on-disk job store ---------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sweep service's durable state: one directory per job,
///
///   <root>/job-000017/spec.json   — the admitted spec (atomic write)
///   <root>/job-000017/slots.ckpt  — the slot journal (sweep/Checkpoint.h,
///                                   crash-consistent by construction)
///   <root>/job-000017/result.json — the terminal verdict (atomic write;
///                                   its EXISTENCE is the terminal flag)
///
/// Everything the recovery scan needs is derivable from which files
/// exist: spec without result = in flight (resume it, journal first),
/// spec with result = terminal (serve it), neither = garbage (ignore).
/// There is deliberately NO queue file, NO state field, NO write-ahead
/// log: the journal already IS a write-ahead log for slot work, and a
/// one-file state machine can't be torn by kill -9.
///
/// Atomic writes go tmp + fsync + rename + fsync(dir): after a crash a
/// path either holds its complete old content or its complete new
/// content, never a prefix. The tmp name is deterministic per path, so
/// crashed leftovers are overwritten, not accumulated.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_SVC_STORE_H
#define GRS_SVC_STORE_H

#include "svc/Job.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grs {
namespace svc {

/// The fixed file layout of one job.
struct JobPaths {
  std::string Dir;
  std::string Spec;    ///< spec.json
  std::string Journal; ///< slots.ckpt
  std::string Result;  ///< result.json
};

class JobStore {
public:
  explicit JobStore(std::string Root) : Root(std::move(Root)) {}

  /// Creates the root directory (parents included). \returns false with
  /// a message when the filesystem refuses.
  bool init(std::string &Error);

  const std::string &root() const { return Root; }

  /// "job-%06llu" — zero-padded so lexical order IS admission order and
  /// the recovery scan re-enqueues in the order clients were admitted.
  static std::string idForSequence(uint64_t Seq);

  JobPaths paths(const std::string &Id) const;

  /// Atomic whole-file replace (see file comment). Creates the job dir
  /// if needed.
  bool writeAtomic(const std::string &Path, const std::string &Bytes,
                   std::string &Error) const;

  /// Reads a whole file. \returns false when absent or unreadable.
  static bool readFile(const std::string &Path, std::string &Out);
  static bool exists(const std::string &Path);

  /// One recovered job dir.
  struct Recovered {
    std::string Id;
    JobSpec Spec;
    bool Terminal = false;     ///< result.json exists
    std::string ResultText;    ///< its content when Terminal
    std::string SpecError;     ///< nonempty: spec.json present but rotten
  };

  /// Scans the root in id order. Dirs whose spec.json does not parse are
  /// returned with SpecError set (the service fails them loudly rather
  /// than silently skipping state it once accepted). \returns false only
  /// when the root itself cannot be read.
  bool recover(std::vector<Recovered> &Out, std::string &Error) const;

  /// Highest sequence number among existing job dirs (0 when none) — the
  /// restart continues the id sequence instead of colliding.
  uint64_t maxSequence() const;

private:
  std::string Root;
};

} // namespace svc
} // namespace grs

#endif // GRS_SVC_STORE_H
