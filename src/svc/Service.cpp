//===- svc/Service.cpp - Crash-recoverable sweep service ------------------===//

#include "svc/Service.h"

#include "support/Json.h"
#include "sweep/Checkpoint.h"

#include <algorithm>
#include <chrono>

using namespace grs;
using namespace grs::svc;
using support::Json;

namespace {

/// One journaled slot record as a progress line (the /progress wire
/// format). Pure function of the record.
std::string renderProgressLine(const sweep::SlotRecord &R) {
  Json V = Json::object();
  V.set("slot", Json::unsignedInt(R.Slot));
  V.set("seed", Json::unsignedInt(R.Seed));
  V.set("attempts", Json::unsignedInt(R.Attempts));
  V.set("quarantined", Json::boolean(R.Quarantined));
  if (R.Quarantined) {
    V.set("fault", Json::string(sweep::faultClassName(R.Fault)));
  } else {
    V.set("races", Json::unsignedInt(R.RaceCount));
    V.set("leaked", Json::boolean(R.Leaked));
    V.set("panicked", Json::boolean(R.Panicked));
    V.set("deadlocked", Json::boolean(R.Deadlocked));
  }
  return support::renderJson(V);
}

/// The terminal result document. DETERMINISTIC by construction — no
/// wall-clock, no daemon-run-relative counters (ResumedSlots would
/// differ between an interrupted and an uninterrupted history, so
/// per-slot facts come from the journal, where both histories converge
/// bit-for-bit). The resume-parity battery compares these documents
/// byte-for-byte.
Json makeResultJson(const JobSpec &Spec, const sweep::ResilientResult &Res,
                    const std::string &JournalPath) {
  Json V = Json::object();
  V.set("state", Json::string("done"));
  V.set("spec_hash", Json::unsignedInt(Spec.hash()));
  const pipeline::SweepResult &S = Res.Sweep;
  V.set("seeds_run", Json::unsignedInt(S.SeedsRun));
  V.set("seeds_with_races", Json::unsignedInt(S.SeedsWithRaces));
  V.set("seeds_with_leaks", Json::unsignedInt(S.SeedsWithLeaks));
  V.set("seeds_with_panics", Json::unsignedInt(S.SeedsWithPanics));
  V.set("seeds_deadlocked", Json::unsignedInt(S.SeedsDeadlocked));
  V.set("total_reports", Json::unsignedInt(S.TotalReports));
  Json Findings = Json::array();
  for (const auto &F : S.Findings) {
    Json E = Json::object();
    E.set("fp", Json::unsignedInt(F.first));
    E.set("occurrences", Json::unsignedInt(F.second.Occurrences));
    E.set("sample", Json::string(F.second.SampleReport));
    Findings.push(std::move(E));
  }
  V.set("findings", std::move(Findings));
  Json Quarantined = Json::array();
  for (const sweep::SlotRecord &R : Res.Quarantined) {
    Json E = Json::object();
    E.set("slot", Json::unsignedInt(R.Slot));
    E.set("attempts", Json::unsignedInt(R.Attempts));
    E.set("class", Json::string(sweep::faultClassName(R.Fault)));
    E.set("detail", Json::string(R.FaultDetail));
    Quarantined.push(std::move(E));
  }
  V.set("quarantined", std::move(Quarantined));
  // Retries from the JOURNAL, not ResilientResult::Retries: the latter
  // counts only slots executed by THIS daemon run, which depends on
  // where a crash fell.
  uint64_t Retries = 0;
  sweep::CheckpointLoad Load;
  std::string Error;
  if (sweep::loadCheckpoint(JournalPath, Load, Error)) {
    std::vector<uint8_t> Seen(Spec.NumSeeds, 0);
    for (const sweep::SlotRecord &R : Load.Records)
      if (R.Slot < Spec.NumSeeds && !Seen[R.Slot]) {
        Seen[R.Slot] = 1;
        if (R.Attempts)
          Retries += R.Attempts - 1;
      }
  }
  V.set("retries", Json::unsignedInt(Retries));
  return V;
}

Json makeFailedResultJson(const JobSpec &Spec, const std::string &Error) {
  Json V = Json::object();
  V.set("state", Json::string("failed"));
  V.set("spec_hash", Json::unsignedInt(Spec.hash()));
  V.set("error", Json::string(Error));
  return V;
}

/// Splits "?from=N" style queries off a target. Only `from` is ever
/// looked for, so the parser is exactly that small.
uint64_t queryFrom(const std::string &Target, std::string &Path) {
  size_t Q = Target.find('?');
  Path = Target.substr(0, Q);
  if (Q == std::string::npos)
    return 0;
  size_t F = Target.find("from=", Q);
  if (F == std::string::npos)
    return 0;
  uint64_t N = 0;
  for (size_t I = F + 5; I < Target.size() && Target[I] >= '0' &&
                         Target[I] <= '9';
       ++I)
    N = N * 10 + static_cast<uint64_t>(Target[I] - '0');
  return N;
}

} // namespace

SweepService::SweepService(ServiceOptions O)
    : Opts(std::move(O)), Store(Opts.StateDir), Reg(true) {}

SweepService::~SweepService() { stop(); }

bool SweepService::start(std::string &Error) {
  if (Started) {
    Error = "already started";
    return false;
  }
  if (Opts.StateDir.empty()) {
    Error = "ServiceOptions::StateDir is required";
    return false;
  }
  if (!Store.init(Error))
    return false;

  //===--------------------------------------------------------------------===//
  // Recovery scan, before anything can race it: terminal jobs are
  // served as-is, in-flight ones re-enter the queue (id order =
  // original admission order), rotten specs fail loudly.
  //===--------------------------------------------------------------------===//
  std::vector<JobStore::Recovered> Recovered;
  if (!Store.recover(Recovered, Error))
    return false;
  NextSeq = Store.maxSequence() + 1;
  for (JobStore::Recovered &R : Recovered) {
    JobRec Rec;
    Rec.Spec = R.Spec;
    Rec.SpecHash = R.Spec.hash();
    if (R.Terminal) {
      Rec.ResultText = std::move(R.ResultText);
      Json V;
      std::string Ignored;
      Rec.State = JobState::Done;
      if (support::parseJson(Rec.ResultText, V, Ignored) &&
          V.get("state").asString("") == "failed") {
        Rec.State = JobState::Failed;
        Rec.Error = V.get("error").asString("");
      }
      Rec.SlotsDone = Rec.Spec.NumSeeds;
    } else if (!R.SpecError.empty()) {
      // A spec this service once accepted no longer parses: terminal
      // failure, not a silent skip (and not a crash loop).
      Rec.State = JobState::Failed;
      Rec.Error = R.SpecError;
      std::string WriteError;
      Store.writeAtomic(
          Store.paths(R.Id).Result,
          support::renderJsonPretty(makeFailedResultJson(Rec.Spec, Rec.Error)),
          WriteError);
    } else {
      Rec.State = JobState::Queued;
      Rec.Resume = true;
      Queue.push_back(R.Id);
    }
    Jobs.emplace(R.Id, std::move(Rec));
  }

  //===--------------------------------------------------------------------===//
  // The one pool every job shares. Its resolver is the same pure
  // spec-bytes adapter admission validates with.
  //===--------------------------------------------------------------------===//
  sweep::PoolHostOptions PH;
  PH.Workers = Opts.PoolWorkers;
  PH.Resolve = resolveSpecBytes;
  PH.EnableSeccomp = Opts.EnableSeccomp;
  PH.EnableLandlock = Opts.EnableLandlock;
  PH.UseCgroupMemory = Opts.UseCgroupMemory;
  PH.ForceForkFree = Opts.ForceForkFree;
  Pool = std::make_unique<sweep::PoolHost>(std::move(PH));

  Http.setLimits(Opts.HttpLimits);
  Http.setHandler([this](const obs::HttpRequest &Req,
                         obs::HttpResponse &Resp) {
    return handleHttp(Req, Resp);
  });
  if (!Http.start(Opts.Port)) {
    Error = "cannot bind HTTP port " + std::to_string(Opts.Port);
    Pool.reset();
    return false;
  }

  StopRequested.store(false);
  Drained.store(false);
  Accepting.store(true);
  Scheduler = std::thread([this] { schedulerMain(); });
  Started = true;
  return true;
}

void SweepService::drain() {
  Accepting.store(false);
  StopRequested.store(true);
  CancelCurrent.store(true);
  Cv.notify_all();
}

bool SweepService::waitDrained(uint64_t TimeoutMillis) {
  std::unique_lock<std::mutex> Lock(Mu);
  return Cv.wait_for(Lock, std::chrono::milliseconds(TimeoutMillis),
                     [this] { return Drained.load(); });
}

void SweepService::stop() {
  if (!Started)
    return;
  drain();
  if (Scheduler.joinable())
    Scheduler.join();
  Http.stop();
  Pool.reset(); // graceful worker retirement
  Started = false;
}

bool SweepService::status(const std::string &Id, JobStatus &Out) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Jobs.find(Id);
  if (It == Jobs.end())
    return false;
  const JobRec &R = It->second;
  Out.Id = Id;
  Out.State = R.State;
  Out.SpecHash = R.SpecHash;
  Out.SlotsTotal = R.Spec.NumSeeds;
  Out.SlotsDone = R.SlotsDone;
  Out.RunsAttempted = R.RunsAttempted;
  Out.Error = R.Error;
  return true;
}

std::vector<JobStatus> SweepService::statusAll() const {
  std::vector<JobStatus> Out;
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &E : Jobs) {
    JobStatus S;
    S.Id = E.first;
    S.State = E.second.State;
    S.SpecHash = E.second.SpecHash;
    S.SlotsTotal = E.second.Spec.NumSeeds;
    S.SlotsDone = E.second.SlotsDone;
    S.RunsAttempted = E.second.RunsAttempted;
    S.Error = E.second.Error;
    Out.push_back(std::move(S));
  }
  return Out;
}

bool SweepService::waitTerminal(const std::string &Id,
                                uint64_t TimeoutMillis) {
  std::unique_lock<std::mutex> Lock(Mu);
  return Cv.wait_for(Lock, std::chrono::milliseconds(TimeoutMillis), [&] {
    auto It = Jobs.find(Id);
    return It != Jobs.end() && (It->second.State == JobState::Done ||
                                It->second.State == JobState::Failed);
  });
}

sweep::PoolHostStats SweepService::poolStats() const {
  return Pool ? Pool->hostStats() : sweep::PoolHostStats();
}

//===----------------------------------------------------------------------===//
// HTTP surface (runs on the MetricsServer serving thread)
//===----------------------------------------------------------------------===//

bool SweepService::handleHttp(const obs::HttpRequest &Req,
                              obs::HttpResponse &Resp) {
  std::string Path;
  uint64_t From = queryFrom(Req.Target, Path);

  if (Path == "/jobs" && Req.Method == "POST") {
    handleAdmit(Req, Resp);
    return true;
  }
  if (Path == "/readyz" && Req.Method == "GET") {
    if (Accepting.load()) {
      Resp.Body = "ready\n";
    } else {
      Resp.Status = 503;
      Resp.Body = StopRequested.load() ? "draining\n" : "not started\n";
    }
    return true;
  }
  if (Path == "/jobs" && Req.Method == "GET") {
    Json List = Json::array();
    for (const JobStatus &S : statusAll()) {
      Json E = Json::object();
      E.set("id", Json::string(S.Id));
      E.set("state", Json::string(jobStateName(S.State)));
      E.set("slots_done", Json::unsignedInt(S.SlotsDone));
      E.set("slots_total", Json::unsignedInt(S.SlotsTotal));
      List.push(std::move(E));
    }
    Json V = Json::object();
    V.set("jobs", std::move(List));
    Resp.ContentType = "application/json";
    Resp.Body = support::renderJson(V) + "\n";
    return true;
  }
  if (Path.rfind("/jobs/", 0) == 0 && Req.Method == "GET") {
    std::string Rest = Path.substr(6);
    size_t Slash = Rest.find('/');
    std::string Id = Rest.substr(0, Slash);
    std::string Sub = Slash == std::string::npos ? "" : Rest.substr(Slash);
    if (Sub == "") {
      JobStatus S;
      if (!status(Id, S)) {
        Resp.Status = 404;
        Resp.Body = "unknown job\n";
        return true;
      }
      Json V = Json::object();
      V.set("id", Json::string(S.Id));
      V.set("state", Json::string(jobStateName(S.State)));
      V.set("spec_hash", Json::unsignedInt(S.SpecHash));
      V.set("slots_done", Json::unsignedInt(S.SlotsDone));
      V.set("slots_total", Json::unsignedInt(S.SlotsTotal));
      V.set("runs_attempted", Json::unsignedInt(S.RunsAttempted));
      if (!S.Error.empty())
        V.set("error", Json::string(S.Error));
      Resp.ContentType = "application/json";
      Resp.Body = support::renderJson(V) + "\n";
      return true;
    }
    if (Sub == "/progress") {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = Jobs.find(Id);
      if (It == Jobs.end()) {
        Resp.Status = 404;
        Resp.Body = "unknown job\n";
        return true;
      }
      const std::vector<std::string> &Lines = It->second.Progress;
      std::string Body;
      for (size_t I = From; I < Lines.size(); ++I) {
        Body += Lines[I];
        Body += '\n';
      }
      Resp.ContentType = "application/jsonlines";
      Resp.Body = std::move(Body);
      Resp.ExtraHeaders.push_back(
          {"X-Next-Index", std::to_string(Lines.size())});
      return true;
    }
    if (Sub == "/result") {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = Jobs.find(Id);
      if (It == Jobs.end() || It->second.ResultText.empty()) {
        Resp.Status = 404;
        Resp.Body = "no result (job unknown or not terminal)\n";
        return true;
      }
      Resp.ContentType = "application/json";
      Resp.Body = It->second.ResultText;
      return true;
    }
    Resp.Status = 404;
    Resp.Body = "unknown job endpoint\n";
    return true;
  }
  return false; // /metrics, /healthz, ... stay with the built-ins
}

void SweepService::handleAdmit(const obs::HttpRequest &Req,
                               obs::HttpResponse &Resp) {
  if (!Accepting.load()) {
    Resp.Status = 503;
    Resp.Body = "draining; not admitting jobs\n";
    return;
  }
  Json V;
  std::string Error;
  if (!support::parseJson(Req.Body, V, Error)) {
    Resp.Status = 400;
    Resp.Body = "bad JSON: " + Error + "\n";
    return;
  }
  JobSpec Spec;
  if (!JobSpec::parse(V, Spec, Error)) {
    Resp.Status = 400;
    Resp.Body = "bad spec: " + Error + "\n";
    return;
  }
  // Admission-time resolution: an unknown pattern or unparseable grs
  // source is the CLIENT's error and must fail now with a 400, not
  // later inside the scheduler with a failed job.
  sweep::ResilientOptions Probe;
  if (!Spec.resolve(Probe, Error)) {
    Resp.Status = 400;
    Resp.Body = "unresolvable spec: " + Error + "\n";
    return;
  }

  std::lock_guard<std::mutex> Lock(Mu);
  size_t Active = 0;
  for (const auto &E : Jobs)
    if (E.second.State == JobState::Queued ||
        E.second.State == JobState::Running)
      ++Active;
  if (Active >= Opts.QueueBound) {
    // EXPLICIT overload: the client is told, with a cadence, rather
    // than the job being silently dropped or unboundedly buffered.
    Shed.fetch_add(1);
    Resp.Status = 429;
    Resp.Body = "job queue full (" + std::to_string(Active) + " active)\n";
    Resp.ExtraHeaders.push_back(
        {"Retry-After", std::to_string(Opts.RetryAfterSeconds)});
    return;
  }

  std::string Id = JobStore::idForSequence(NextSeq);
  // Durable-then-visible: spec.json hits disk BEFORE the 202 and before
  // the queue — a kill -9 after this write means the restart re-admits
  // the job; a kill before it means the client never got its 202.
  if (!Store.writeAtomic(Store.paths(Id).Spec,
                         support::renderJsonPretty(Spec.toJson()), Error)) {
    Resp.Status = 500;
    Resp.Body = "cannot persist spec: " + Error + "\n";
    return;
  }
  ++NextSeq;
  JobRec Rec;
  Rec.Spec = std::move(Spec);
  Rec.SpecHash = Rec.Spec.hash();
  Jobs.emplace(Id, std::move(Rec));
  Queue.push_back(Id);
  Cv.notify_all();

  Json Out = Json::object();
  Out.set("id", Json::string(Id));
  Out.set("state", Json::string("queued"));
  Resp.Status = 202;
  Resp.ContentType = "application/json";
  Resp.Body = support::renderJson(Out) + "\n";
}

//===----------------------------------------------------------------------===//
// Scheduler (one thread; owns Reg and the pool)
//===----------------------------------------------------------------------===//

void SweepService::schedulerMain() {
  for (;;) {
    std::string Id;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [this] {
        return StopRequested.load() || !Queue.empty();
      });
      if (StopRequested.load())
        break;
      Id = Queue.front();
      Queue.pop_front();
    }
    CancelCurrent.store(false);
    runJob(Id);

    // Publish at the job boundary (the owner-driven cadence the
    // threading model requires).
    {
      std::lock_guard<std::mutex> Lock(Mu);
      uint64_t ByState[4] = {};
      for (const auto &E : Jobs)
        ++ByState[static_cast<size_t>(E.second.State)];
      obs::set(Reg.gauge("grs_svc_jobs_queued"),
               static_cast<double>(ByState[0]));
      obs::set(Reg.gauge("grs_svc_jobs_done"),
               static_cast<double>(ByState[2]));
      obs::set(Reg.gauge("grs_svc_jobs_failed"),
               static_cast<double>(ByState[3]));
    }
    obs::set(Reg.gauge("grs_svc_jobs_shed"),
             static_cast<double>(Shed.load()));
    if (Pool) {
      const sweep::PoolHostStats &HS = Pool->hostStats();
      obs::set(Reg.gauge("grs_svc_pool_jobs_run"),
               static_cast<double>(HS.JobsRun));
      obs::set(Reg.gauge("grs_svc_pool_total_spawns"),
               static_cast<double>(HS.TotalSpawns));
      obs::set(Reg.gauge("grs_svc_pool_recycles"),
               static_cast<double>(HS.Recycles));
    }
    Http.publishRegistry(Reg);
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Drained.store(true);
  }
  Cv.notify_all();
}

bool SweepService::finishJob(const std::string &Id, JobRec &Rec,
                             const std::string &FailError) {
  (void)Rec;
  std::string Text;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    JobRec &R = Jobs[Id];
    if (FailError.empty())
      return true; // success path renders in runJob (needs the result)
    R.State = JobState::Failed;
    R.Error = FailError;
    Text = support::renderJsonPretty(makeFailedResultJson(R.Spec, FailError));
    R.ResultText = Text;
  }
  std::string WriteError;
  Store.writeAtomic(Store.paths(Id).Result, Text, WriteError);
  Cv.notify_all();
  return false;
}

void SweepService::runJob(const std::string &Id) {
  JobSpec Spec;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    JobRec &R = Jobs[Id];
    R.State = JobState::Running;
    Spec = R.Spec;
  }
  JobPaths Paths = Store.paths(Id);
  JobRec Dummy;

  sweep::ResilientOptions Base;
  std::string Error;
  if (!Spec.resolve(Base, Error)) {
    finishJob(Id, Dummy, "spec resolution failed: " + Error);
    return;
  }

  //===--------------------------------------------------------------------===//
  // Resume refusal (the openResilientCheckpoint meta-mismatch contract,
  // enforced BEFORE running): a readable journal whose meta does not
  // match the spec-derived recipe hash means spec.json changed under a
  // journal that was written for something else. The executor's own
  // mismatch path would run from scratch with journaling disabled —
  // correct for a library, wrong for a daemon claiming resume parity —
  // so the service refuses the job outright.
  //===--------------------------------------------------------------------===//
  if (JobStore::exists(Paths.Journal)) {
    sweep::CheckpointLoad Load;
    std::string LoadError;
    if (sweep::loadCheckpoint(Paths.Journal, Load, LoadError)) {
      sweep::CheckpointMeta Want;
      Want.FirstSeed = Base.FirstSeed;
      Want.NumSeeds = Base.NumSeeds;
      Want.OptionsHash = sweep::resilientOptionsHash(Base);
      if (!(Load.Meta == Want)) {
        finishJob(Id, Dummy,
                  "refusing to resume: journal was written by a different "
                  "job spec (checkpoint meta mismatch)");
        return;
      }
    }
    // Unreadable journal (e.g. killed mid-header): the executor
    // recreates it and the sweep starts over — nothing committed was
    // readable, so nothing committed is lost.
  }

  // Job deadline: wall-clock, enforced by cooperative cancel at slot
  // granularity. The clock starts when THIS daemon run starts the job
  // (a deadline that spanned restarts would need a persisted admission
  // timestamp — wall-clock in the store — for marginal value).
  struct DeadlineTimer {
    std::mutex M;
    std::condition_variable C;
    bool Done = false;
  } DT;
  std::thread Timer;
  bool DeadlineArmed = Spec.DeadlineMillis != 0;
  if (DeadlineArmed)
    Timer = std::thread([this, &DT, Millis = Spec.DeadlineMillis] {
      std::unique_lock<std::mutex> Lock(DT.M);
      if (!DT.C.wait_for(Lock, std::chrono::milliseconds(Millis),
                         [&] { return DT.Done; }))
        CancelCurrent.store(true);
    });
  auto DisarmDeadline = [&] {
    if (!DeadlineArmed)
      return;
    {
      std::lock_guard<std::mutex> Lock(DT.M);
      DT.Done = true;
    }
    DT.C.notify_all();
    Timer.join();
    DeadlineArmed = false;
  };

  std::string SpecBytes = Spec.canonicalBytes();
  uint32_t MaxRuns = 1 + Spec.JobRetries;
  for (uint32_t Run = 1; Run <= MaxRuns; ++Run) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Jobs[Id].RunsAttempted;
    }
    auto OnSlot = [this, &Id](const sweep::SlotRecord &R) {
      std::lock_guard<std::mutex> Lock(Mu);
      JobRec &Rec = Jobs[Id];
      ++Rec.SlotsDone;
      Rec.Progress.push_back(renderProgressLine(R));
    };

    sweep::ResilientResult Res;
    if (Spec.Exec == Executor::Pool) {
      sweep::PoolRunRequest Req;
      Req.Spec.assign(SpecBytes.begin(), SpecBytes.end());
      Req.CheckpointPath = Paths.Journal;
      Req.Resume = JobStore::exists(Paths.Journal);
      Req.Metrics = &Reg;
      Req.CancelFlag = &CancelCurrent;
      Req.OnSlotDone = OnSlot;
      Res = Pool->run(Req).Res;
    } else {
      sweep::ResilientOptions RO;
      std::string ResolveError;
      Spec.resolve(RO, ResolveError); // validated above; cannot fail now
      RO.CheckpointPath = Paths.Journal;
      RO.Resume = JobStore::exists(Paths.Journal);
      RO.Metrics = &Reg;
      RO.CancelFlag = &CancelCurrent;
      RO.OnSlotDone = OnSlot;
      Res = sweep::resilient(RO);
    }

    if (Res.UnfinishedSlots != 0) {
      // Cancelled mid-sweep. Drain parks the job (journal holds every
      // committed slot; restart resumes); a deadline is terminal.
      DisarmDeadline();
      if (StopRequested.load()) {
        std::lock_guard<std::mutex> Lock(Mu);
        JobRec &R = Jobs[Id];
        R.State = JobState::Queued;
        R.Resume = true;
        return;
      }
      finishJob(Id, Dummy, "deadline exceeded (" +
                               std::to_string(Spec.DeadlineMillis) +
                               " ms); committed slots remain journaled");
      return;
    }

    if (!Res.CheckpointError.empty()) {
      // Journal infrastructure failure: retry the whole job (the next
      // run resumes whatever DID reach the journal), then give up.
      if (Run < MaxRuns) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            Spec.JobRetryBackoffMillis << (Run - 1)));
        continue;
      }
      DisarmDeadline();
      finishJob(Id, Dummy, "journal failure after " + std::to_string(Run) +
                               " runs: " + Res.CheckpointError);
      return;
    }

    // Success: render the terminal document and commit it.
    DisarmDeadline();
    std::string Text =
        support::renderJsonPretty(makeResultJson(Spec, Res, Paths.Journal));
    std::string WriteError;
    Store.writeAtomic(Paths.Result, Text, WriteError);
    {
      std::lock_guard<std::mutex> Lock(Mu);
      JobRec &R = Jobs[Id];
      R.State = JobState::Done;
      R.ResultText = std::move(Text);
      R.SlotsDone = Spec.NumSeeds;
    }
    Cv.notify_all();
    return;
  }
  DisarmDeadline();
}
