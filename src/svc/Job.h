//===- svc/Job.h - Sweep-service job specs & state machine ------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What a sweep-service job IS: a JSON recipe (`POST /jobs` body =
/// spec.json on disk = the spec bytes a PoolHost worker resolves) plus
/// the job state machine the service drives it through.
///
/// The spec is deliberately a PURE VALUE. Everything that affects a
/// verdict — the program under sweep (a corpus pattern id or inline
/// `.grs` source), the seed range, the executor, the retry policy, the
/// fault plan — lives in the spec; everything that doesn't (wall-clock
/// deadlines, job-level retry cadence) is carried alongside but excluded
/// from determinism claims. Two consequences the service builds on:
///
///  * resolve() is a pure function of the spec bytes, so the SAME
///    function serves as the PoolHost SpecResolver on both sides of the
///    fork — the parent validates at admission, the worker re-derives
///    the runnable body from shared memory, and they cannot disagree.
///
///  * hash() (Fnv1a over the canonical compact rendering) identifies
///    the full recipe. The service feeds it through ResilientOptions::
///    OptionsSalt into the journal's CheckpointMeta, so a journal is
///    bound to the EXACT job spec that wrote it: restart after someone
///    edited spec.json on disk and the meta mismatch makes the daemon
///    refuse to resume, mirroring openResilientCheckpoint's refusal to
///    clobber a journal from a different recipe.
///
/// State machine (see DESIGN.md §15 for the full protocol):
///
///   Queued -> Running -> Done                (result.json written)
///                     \-> Failed             (result.json written: spec
///                                             rot, journal refusal,
///                                             deadline, retries spent)
///                     \-> Queued             (drain: journal keeps the
///                                             committed slots; restart
///                                             resumes the rest)
///
/// Done/Failed are terminal and exactly the states with a result.json;
/// recovery classifies a job dir purely by which files exist.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_SVC_JOB_H
#define GRS_SVC_JOB_H

#include "support/Json.h"
#include "sweep/Resilient.h"

#include <cstdint>
#include <string>

namespace grs {
namespace svc {

enum class JobState : uint8_t { Queued, Running, Done, Failed };

/// Stable lower-case name ("queued" / "running" / "done" / "failed").
const char *jobStateName(JobState S);

/// Which engine executes the job's slots.
enum class Executor : uint8_t {
  Pool,      ///< the service's shared fork-server pool (sweep::PoolHost)
  Resilient, ///< in-process sweep::resilient (no fork, no sandbox)
};

/// A parsed, validated job spec. Field defaults ARE the wire defaults:
/// an omitted spec key means the value below.
struct JobSpec {
  /// The program under sweep: exactly one of Pattern / Source is set.
  std::string Pattern; ///< corpus pattern id (corpus::allPatterns)
  bool Fixed = false;  ///< pattern only: sweep the fixed variant
  std::string Source;  ///< inline .grs program (lang::parseProgram)

  uint64_t FirstSeed = 1;
  uint64_t NumSeeds = 50;
  Executor Exec = Executor::Pool;
  /// Worker threads for the Resilient executor (and the pool's fork-free
  /// degradation rung). The pool's width is a HOST property — fixed when
  /// the service forked its workers — so this does not resize it.
  unsigned Threads = 1;
  uint32_t MaxAttempts = 3;
  double PreemptProbability = 0.2;
  uint64_t MaxSteps = 2'000'000;
  /// Per-run watchdog. Nonzero is enforced at parse: a service cannot
  /// admit a job its executors have no way to interrupt.
  uint64_t WatchdogMillis = 2'000;

  /// Fault plan (inject::makeFaultPlan over the seed range). Grs bodies
  /// only: corpus patterns host their own Runtime internally, where the
  /// injector cannot reach.
  bool HaveFaultPlan = false;
  uint64_t FaultPlanSeed = 1;
  double FaultRate = 0.05;
  uint64_t FaultLatencyMicros = 200;
  bool FaultLethal = false; ///< enable the process-lethal kinds
  double FaultChronicFraction = 0.1;

  /// Job-level policy (NOT part of any determinism claim).
  uint64_t DeadlineMillis = 0; ///< 0 = none; clock starts per daemon run
  uint32_t JobRetries = 0;     ///< extra whole-job tries after a failure
  uint64_t JobRetryBackoffMillis = 100;

  /// Decodes \p V (strict: unknown keys are errors — a typo'd knob must
  /// not silently sweep with defaults). \returns false with a message.
  static bool parse(const support::Json &V, JobSpec &Out,
                    std::string &Error);

  /// The canonical JSON tree: fixed key order, every field explicit.
  /// parse(toJson()) round-trips exactly.
  support::Json toJson() const;

  /// Canonical wire/arena form: renderJson(toJson()). The bytes the
  /// service publishes to the pool and hashes.
  std::string canonicalBytes() const;

  /// Fnv1a over canonicalBytes() — the job's recipe identity.
  uint64_t hash() const;

  /// Builds runnable ResilientOptions from this spec: body constructed
  /// (pattern looked up / source parsed, fault plan woven in), verdict
  /// knobs set, OptionsSalt = hash(). Parent-side handles (Metrics,
  /// Timeline, CheckpointPath, CancelFlag, OnSlotDone) are left null —
  /// the caller owns those. \returns false with a message when the body
  /// cannot be built (unknown pattern, grs parse error).
  bool resolve(sweep::ResilientOptions &Out, std::string &Error) const;
};

/// Spec-bytes -> options adapter with the sweep::SpecResolver shape:
/// parse + JobSpec::parse + resolve. The service installs exactly this
/// as its PoolHost resolver.
bool resolveSpecBytes(const uint8_t *Bytes, size_t Len,
                      sweep::ResilientOptions &Out);

} // namespace svc
} // namespace grs

#endif // GRS_SVC_JOB_H
