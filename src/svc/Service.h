//===- svc/Service.h - Crash-recoverable sweep service ----------*- C++ -*-===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control plane: a long-running daemon that accepts sweep jobs over
/// HTTP, runs them on ONE persistent fork-server pool (sweep::PoolHost —
/// workers forked once, amortized across every job), journals each job's
/// slots crash-consistently, and survives kill -9 at ANY byte boundary:
/// a restarted service re-admits every in-flight job from its on-disk
/// spec, resumes it from its journal, and lands on bit-identical results
/// — same fingerprints, same canonical journal records, zero committed
/// records lost. This is the paper's §3 deployment shape (a service that
/// ran daily over 100K+ tests for months) rebuilt over our executors.
///
/// Mounted on obs::MetricsServer's single serving thread:
///
///   POST /jobs                 admit a JSON job spec (svc/Job.h).
///                              202 {"id":...} on admission; 400 on a
///                              rotten spec; 429 + Retry-After when the
///                              bounded queue is full (overload is
///                              EXPLICIT — nothing is silently dropped);
///                              503 while draining.
///   GET  /jobs                 id -> state summary list.
///   GET  /jobs/<id>            full status JSON (state, slot counts,
///                              spec hash, error).
///   GET  /jobs/<id>/progress   JSON-lines, one slot record per line,
///                              in completion order as observed by THIS
///                              daemon run; ?from=N resumes the cursor
///                              (poll-friendly streaming on a one-thread
///                              server). X-Next-Index carries the cursor.
///   GET  /readyz               readiness: 200 admitting / 503 not
///                              (draining or stopped).
///   GET  /healthz              liveness (built-in: the serving thread
///                              answers it even while a job runs).
///   /metrics, /metrics.jsonl   the service's registry, republished at
///                              job boundaries.
///
/// Scheduling: admissions append to a bounded FIFO; one scheduler thread
/// pops and runs jobs in admission order (determinism beats throughput
/// here — parallel jobs would contend for the one pool anyway). Each job
/// gets deadline enforcement (cooperative cancel at slot granularity ->
/// terminal Failed), whole-job retries with backoff on infrastructure
/// failure, and a result.json written atomically at the end.
///
/// Graceful drain (SIGTERM path): drain() stops admission (429s become
/// 503s), cancels the in-flight job cooperatively — committed slots are
/// already journaled, the cancel salvages every committed frame from the
/// worker arenas — and parks everything else as Queued state on disk.
/// waitDrained() then returns and the host exits 0. The next start()
/// resumes every parked job from its journal.
///
/// Recovery protocol (every start()): scan the store in id order; a job
/// dir with a result.json is terminal (served as-is); one with only a
/// spec.json is re-admitted with Resume — BUT first the journal's meta
/// (which binds JobSpec::hash via OptionsSalt) is checked against the
/// spec on disk, and a mismatch fails the job with a refusal instead of
/// running somebody else's journal or silently restarting from scratch.
///
//===----------------------------------------------------------------------===//

#ifndef GRS_SVC_SERVICE_H
#define GRS_SVC_SERVICE_H

#include "obs/Http.h"
#include "obs/Metrics.h"
#include "svc/Store.h"
#include "sweep/Pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace grs {
namespace svc {

struct ServiceOptions {
  /// Durable state root (required). Created if absent.
  std::string StateDir;
  /// HTTP port (0 = ephemeral; see port()).
  uint16_t Port = 0;
  /// Admission bound: queued-but-not-terminal jobs past this get 429.
  size_t QueueBound = 8;
  /// What a 429 tells the client to wait, seconds.
  uint64_t RetryAfterSeconds = 1;
  /// Pool width (0 = hardware concurrency).
  unsigned PoolWorkers = 0;
  /// Pool hardening pass-throughs (sweep::PoolHostOptions).
  bool EnableSeccomp = false;
  bool EnableLandlock = false;
  bool UseCgroupMemory = false;
  /// Degradation forcing for tests: run every job on the in-process
  /// rung (still journaled, still cancellable, still resumable).
  bool ForceForkFree = false;
  /// HTTP hardening knobs (satellite of the same PR).
  obs::ServerLimits HttpLimits;
};

/// Point-in-time job status (copied out under the service lock).
struct JobStatus {
  std::string Id;
  JobState State = JobState::Queued;
  uint64_t SpecHash = 0;
  uint64_t SlotsTotal = 0;
  uint64_t SlotsDone = 0;  ///< journaled records (resumed ones included)
  uint64_t RunsAttempted = 0; ///< whole-job tries this daemon run
  std::string Error;       ///< terminal failure reason ("" otherwise)
};

class SweepService {
public:
  explicit SweepService(ServiceOptions Opts);
  ~SweepService();
  SweepService(const SweepService &) = delete;
  SweepService &operator=(const SweepService &) = delete;

  /// Recovery scan -> re-admission -> HTTP up -> scheduler up, in that
  /// order (recovered jobs precede anything a client can admit).
  /// \returns false with a message when the store or the socket refuse.
  bool start(std::string &Error);

  /// Stops admission and cancels the in-flight job at slot granularity.
  /// Returns immediately; waitDrained() observes completion. Idempotent.
  void drain();

  /// Blocks until the scheduler parked everything (\p TimeoutMillis cap).
  /// \returns true when drained in time.
  bool waitDrained(uint64_t TimeoutMillis);

  /// drain() + join + HTTP down. Idempotent; also run by the destructor.
  void stop();

  uint16_t port() const { return Http.port(); }
  bool accepting() const { return Accepting.load(); }

  /// Snapshot of one job ([ok] false for an unknown id) / all jobs in
  /// id order. Thread-safe.
  bool status(const std::string &Id, JobStatus &Out) const;
  std::vector<JobStatus> statusAll() const;

  /// Blocks until \p Id is terminal (Done/Failed). \returns false on
  /// timeout or unknown id.
  bool waitTerminal(const std::string &Id, uint64_t TimeoutMillis);

  /// Host-lifetime pool counters (spawn amortization evidence).
  sweep::PoolHostStats poolStats() const;

  /// Jobs refused with 429 since start (the shed counter).
  uint64_t shedCount() const { return Shed.load(); }

private:
  struct JobRec {
    JobSpec Spec;
    JobState State = JobState::Queued;
    uint64_t SpecHash = 0;
    uint64_t SlotsDone = 0;
    uint64_t RunsAttempted = 0;
    bool Resume = false; ///< journal may exist (recovered / retried)
    std::string Error;
    std::string ResultText; ///< result.json content once terminal
    /// Rendered progress lines observed this daemon run, completion
    /// order. The /progress endpoint serves a [from..) window of these.
    std::vector<std::string> Progress;
  };

  bool handleHttp(const obs::HttpRequest &Req, obs::HttpResponse &Resp);
  void handleAdmit(const obs::HttpRequest &Req, obs::HttpResponse &Resp);
  void schedulerMain();
  /// Runs one job to a terminal state (or parks it on drain).
  void runJob(const std::string &Id);
  /// Builds + atomically writes result.json from the journal. Empty
  /// \p FailError means success.
  bool finishJob(const std::string &Id, JobRec &Rec,
                 const std::string &FailError);

  ServiceOptions Opts;
  JobStore Store;
  obs::MetricsServer Http;
  obs::Registry Reg; ///< scheduler-thread-owned; published at job ends
  std::unique_ptr<sweep::PoolHost> Pool;

  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::map<std::string, JobRec> Jobs; ///< ordered: listing = id order
  std::deque<std::string> Queue;
  uint64_t NextSeq = 1;

  std::thread Scheduler;
  std::atomic<bool> Accepting{false};
  std::atomic<bool> StopRequested{false};
  std::atomic<bool> Drained{false};
  std::atomic<bool> CancelCurrent{false};
  std::atomic<uint64_t> Shed{0};
  bool Started = false;
};

} // namespace svc
} // namespace grs

#endif // GRS_SVC_SERVICE_H
