//===- svc/Job.cpp - Sweep-service job specs ------------------------------===//

#include "svc/Job.h"

#include "corpus/Patterns.h"
#include "inject/Fault.h"
#include "lang/Interp.h"
#include "lang/Parser.h"
#include "support/Hash.h"

#include <set>

using namespace grs;
using namespace grs::svc;

const char *svc::jobStateName(JobState S) {
  switch (S) {
  case JobState::Queued:  return "queued";
  case JobState::Running: return "running";
  case JobState::Done:    return "done";
  case JobState::Failed:  return "failed";
  }
  return "?";
}

bool JobSpec::parse(const support::Json &V, JobSpec &Out,
                    std::string &Error) {
  Out = JobSpec();
  if (!V.isObject()) {
    Error = "job spec must be a JSON object";
    return false;
  }
  static const std::set<std::string> Known = {
      "body",           "first_seed",      "num_seeds",
      "executor",       "threads",         "max_attempts",
      "preempt",        "max_steps",       "watchdog_millis",
      "fault_plan",     "deadline_millis", "job_retries",
      "job_retry_backoff_millis"};
  for (const auto &M : V.members())
    if (!Known.count(M.first)) {
      Error = "unknown spec key \"" + M.first + "\"";
      return false;
    }

  const support::Json &Body = V.get("body");
  if (!Body.isObject()) {
    Error = "spec needs a \"body\" object";
    return false;
  }
  for (const auto &M : Body.members())
    if (M.first != "kind" && M.first != "pattern" && M.first != "variant" &&
        M.first != "source") {
      Error = "unknown body key \"" + M.first + "\"";
      return false;
    }
  std::string Kind = Body.get("kind").asString("");
  if (Kind == "pattern") {
    Out.Pattern = Body.get("pattern").asString("");
    if (Out.Pattern.empty()) {
      Error = "pattern body needs a \"pattern\" id";
      return false;
    }
    std::string Variant = Body.get("variant").asString("racy");
    if (Variant != "racy" && Variant != "fixed") {
      Error = "body variant must be \"racy\" or \"fixed\"";
      return false;
    }
    Out.Fixed = Variant == "fixed";
    if (Body.has("source")) {
      Error = "pattern body cannot carry \"source\"";
      return false;
    }
  } else if (Kind == "grs") {
    Out.Source = Body.get("source").asString("");
    if (Out.Source.empty()) {
      Error = "grs body needs non-empty \"source\"";
      return false;
    }
    if (Body.has("pattern") || Body.has("variant")) {
      Error = "grs body cannot carry \"pattern\"/\"variant\"";
      return false;
    }
  } else {
    Error = "body kind must be \"pattern\" or \"grs\"";
    return false;
  }

  Out.FirstSeed = V.get("first_seed").asU64(Out.FirstSeed);
  Out.NumSeeds = V.get("num_seeds").asU64(Out.NumSeeds);
  if (Out.NumSeeds == 0) {
    Error = "num_seeds must be nonzero";
    return false;
  }
  if (Out.NumSeeds > 1'000'000) {
    Error = "num_seeds too large (max 1000000)";
    return false;
  }
  std::string Exec = V.get("executor").asString("pool");
  if (Exec == "pool")
    Out.Exec = Executor::Pool;
  else if (Exec == "resilient")
    Out.Exec = Executor::Resilient;
  else {
    Error = "executor must be \"pool\" or \"resilient\"";
    return false;
  }
  Out.Threads =
      static_cast<unsigned>(V.get("threads").asU64(Out.Threads));
  Out.MaxAttempts =
      static_cast<uint32_t>(V.get("max_attempts").asU64(Out.MaxAttempts));
  if (Out.MaxAttempts == 0 || Out.MaxAttempts > 100) {
    Error = "max_attempts must be in [1, 100]";
    return false;
  }
  Out.PreemptProbability = V.get("preempt").asDouble(Out.PreemptProbability);
  if (Out.PreemptProbability < 0 || Out.PreemptProbability > 1) {
    Error = "preempt must be in [0, 1]";
    return false;
  }
  Out.MaxSteps = V.get("max_steps").asU64(Out.MaxSteps);
  Out.WatchdogMillis = V.get("watchdog_millis").asU64(Out.WatchdogMillis);
  if (Out.WatchdogMillis == 0) {
    Error = "watchdog_millis must be nonzero (an un-interruptible job "
            "cannot be admitted)";
    return false;
  }

  if (V.has("fault_plan")) {
    const support::Json &F = V.get("fault_plan");
    if (!F.isObject()) {
      Error = "fault_plan must be an object";
      return false;
    }
    for (const auto &M : F.members())
      if (M.first != "plan_seed" && M.first != "rate" &&
          M.first != "latency_micros" && M.first != "lethal" &&
          M.first != "chronic_fraction") {
        Error = "unknown fault_plan key \"" + M.first + "\"";
        return false;
      }
    if (!Out.Source.size()) {
      Error = "fault_plan requires a grs body (corpus patterns host "
              "their own runtime, out of the injector's reach)";
      return false;
    }
    Out.HaveFaultPlan = true;
    Out.FaultPlanSeed = F.get("plan_seed").asU64(Out.FaultPlanSeed);
    Out.FaultRate = F.get("rate").asDouble(Out.FaultRate);
    if (Out.FaultRate < 0 || Out.FaultRate > 1) {
      Error = "fault_plan rate must be in [0, 1]";
      return false;
    }
    Out.FaultLatencyMicros =
        F.get("latency_micros").asU64(Out.FaultLatencyMicros);
    Out.FaultLethal = F.get("lethal").asBool(Out.FaultLethal);
    Out.FaultChronicFraction =
        F.get("chronic_fraction").asDouble(Out.FaultChronicFraction);
  }

  Out.DeadlineMillis = V.get("deadline_millis").asU64(Out.DeadlineMillis);
  Out.JobRetries =
      static_cast<uint32_t>(V.get("job_retries").asU64(Out.JobRetries));
  Out.JobRetryBackoffMillis =
      V.get("job_retry_backoff_millis").asU64(Out.JobRetryBackoffMillis);
  return true;
}

support::Json JobSpec::toJson() const {
  using support::Json;
  Json Body = Json::object();
  if (!Source.empty()) {
    Body.set("kind", Json::string("grs"));
    Body.set("source", Json::string(Source));
  } else {
    Body.set("kind", Json::string("pattern"));
    Body.set("pattern", Json::string(Pattern));
    Body.set("variant", Json::string(Fixed ? "fixed" : "racy"));
  }
  Json V = Json::object();
  V.set("body", std::move(Body));
  V.set("first_seed", Json::unsignedInt(FirstSeed));
  V.set("num_seeds", Json::unsignedInt(NumSeeds));
  V.set("executor",
        Json::string(Exec == Executor::Pool ? "pool" : "resilient"));
  V.set("threads", Json::unsignedInt(Threads));
  V.set("max_attempts", Json::unsignedInt(MaxAttempts));
  V.set("preempt", Json::number(PreemptProbability));
  V.set("max_steps", Json::unsignedInt(MaxSteps));
  V.set("watchdog_millis", Json::unsignedInt(WatchdogMillis));
  if (HaveFaultPlan) {
    Json F = Json::object();
    F.set("plan_seed", Json::unsignedInt(FaultPlanSeed));
    F.set("rate", Json::number(FaultRate));
    F.set("latency_micros", Json::unsignedInt(FaultLatencyMicros));
    F.set("lethal", Json::boolean(FaultLethal));
    F.set("chronic_fraction", Json::number(FaultChronicFraction));
    V.set("fault_plan", std::move(F));
  }
  V.set("deadline_millis", Json::unsignedInt(DeadlineMillis));
  V.set("job_retries", Json::unsignedInt(JobRetries));
  V.set("job_retry_backoff_millis", Json::unsignedInt(JobRetryBackoffMillis));
  return V;
}

std::string JobSpec::canonicalBytes() const {
  return support::renderJson(toJson());
}

uint64_t JobSpec::hash() const {
  return support::Fnv1a().addString(canonicalBytes()).digest();
}

bool JobSpec::resolve(sweep::ResilientOptions &Out,
                      std::string &Error) const {
  Out = sweep::ResilientOptions();
  Out.FirstSeed = FirstSeed;
  Out.NumSeeds = NumSeeds;
  Out.Threads = Threads;
  Out.MaxAttempts = MaxAttempts;
  Out.Run.PreemptProbability = PreemptProbability;
  Out.Run.MaxSteps = MaxSteps;
  Out.Run.WatchdogMillis = WatchdogMillis;
  Out.OptionsSalt = hash();

  if (!Source.empty()) {
    lang::ParseResult R = lang::parseProgram(Source, "job.grs");
    if (!R.ok()) {
      Error = "grs parse failed: " +
              lang::renderDiag("job.grs", R.Diags.front());
      return false;
    }
    std::shared_ptr<const lang::Program> Prog = R.Prog;
    if (HaveFaultPlan) {
      inject::FaultPlanOptions P;
      P.PlanSeed = FaultPlanSeed;
      P.FirstSeed = FirstSeed;
      P.NumSeeds = NumSeeds;
      P.FaultRate = FaultRate;
      P.LatencyMicros = FaultLatencyMicros;
      P.LethalChronicFraction = FaultChronicFraction;
      if (FaultLethal)
        for (size_t K = 0; K < inject::NumFaultKinds; ++K)
          if (inject::isLethalFault(static_cast<inject::FaultKind>(K)))
            P.Weights[K] = 1;
      Out.Body =
          inject::instrumentedRunner(lang::body(Prog), inject::makeFaultPlan(P));
    } else {
      Out.Body = lang::runner(Prog);
    }
    return true;
  }

  const corpus::Pattern *Pat = corpus::findPattern(Pattern);
  if (!Pat) {
    Error = "unknown corpus pattern \"" + Pattern + "\"";
    return false;
  }
  Out.Body = Fixed ? Pat->RunFixed : Pat->RunRacy;
  return true;
}

bool svc::resolveSpecBytes(const uint8_t *Bytes, size_t Len,
                           sweep::ResilientOptions &Out) {
  support::Json V;
  std::string Error;
  if (!support::parseJson(
          std::string_view(reinterpret_cast<const char *>(Bytes), Len), V,
          Error))
    return false;
  JobSpec Spec;
  if (!JobSpec::parse(V, Spec, Error))
    return false;
  return Spec.resolve(Out, Error);
}
