//===- svc/Store.cpp - Crash-consistent on-disk job store -----------------===//

#include "svc/Store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define GRS_HAVE_POSIX_FS 1
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define GRS_HAVE_POSIX_FS 0
#endif

using namespace grs;
using namespace grs::svc;

namespace {

#if GRS_HAVE_POSIX_FS

bool makeDir(const std::string &Path) {
  return mkdir(Path.c_str(), 0777) == 0 || errno == EEXIST;
}

/// fsync a directory so a rename inside it is durable.
void syncDir(const std::string &Dir) {
  int Fd = open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return;
  fsync(Fd);
  close(Fd);
}

#endif

std::string dirOf(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  return Slash == std::string::npos ? std::string(".")
                                    : Path.substr(0, Slash);
}

} // namespace

std::string JobStore::idForSequence(uint64_t Seq) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "job-%06llu",
                static_cast<unsigned long long>(Seq));
  return Buf;
}

JobPaths JobStore::paths(const std::string &Id) const {
  JobPaths P;
  P.Dir = Root + "/" + Id;
  P.Spec = P.Dir + "/spec.json";
  P.Journal = P.Dir + "/slots.ckpt";
  P.Result = P.Dir + "/result.json";
  return P;
}

#if GRS_HAVE_POSIX_FS

bool JobStore::init(std::string &Error) {
  // mkdir -p over each prefix of the root path.
  for (size_t Pos = 1; Pos <= Root.size(); ++Pos) {
    if (Pos != Root.size() && Root[Pos] != '/')
      continue;
    std::string Prefix = Root.substr(0, Pos);
    if (Prefix.empty() || Prefix == "/")
      continue;
    if (!makeDir(Prefix)) {
      Error = "cannot create " + Prefix + ": " + std::strerror(errno);
      return false;
    }
  }
  return true;
}

bool JobStore::writeAtomic(const std::string &Path, const std::string &Bytes,
                           std::string &Error) const {
  std::string Dir = dirOf(Path);
  if (!makeDir(Dir)) {
    Error = "cannot create " + Dir + ": " + std::strerror(errno);
    return false;
  }
  std::string Tmp = Path + ".tmp";
  int Fd = open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (Fd < 0) {
    Error = "cannot create " + Tmp + ": " + std::strerror(errno);
    return false;
  }
  const char *Data = Bytes.data();
  size_t Left = Bytes.size();
  while (Left) {
    ssize_t N = write(Fd, Data, Left);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = "write to " + Tmp + " failed: " + std::strerror(errno);
      close(Fd);
      unlink(Tmp.c_str());
      return false;
    }
    Data += N;
    Left -= static_cast<size_t>(N);
  }
  if (fsync(Fd) != 0) {
    Error = "fsync of " + Tmp + " failed: " + std::strerror(errno);
    close(Fd);
    unlink(Tmp.c_str());
    return false;
  }
  close(Fd);
  if (rename(Tmp.c_str(), Path.c_str()) != 0) {
    Error = "rename to " + Path + " failed: " + std::strerror(errno);
    unlink(Tmp.c_str());
    return false;
  }
  syncDir(Dir);
  return true;
}

bool JobStore::readFile(const std::string &Path, std::string &Out) {
  int Fd = open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return false;
  Out.clear();
  char Buf[65536];
  for (;;) {
    ssize_t N = read(Fd, Buf, sizeof(Buf));
    if (N > 0) {
      Out.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    close(Fd);
    return N == 0;
  }
}

bool JobStore::exists(const std::string &Path) {
  struct stat St;
  return stat(Path.c_str(), &St) == 0;
}

bool JobStore::recover(std::vector<Recovered> &Out, std::string &Error) const {
  Out.clear();
  DIR *D = opendir(Root.c_str());
  if (!D) {
    Error = "cannot open " + Root + ": " + std::strerror(errno);
    return false;
  }
  std::vector<std::string> Ids;
  while (struct dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (Name.rfind("job-", 0) == 0)
      Ids.push_back(Name);
  }
  closedir(D);
  std::sort(Ids.begin(), Ids.end());
  for (const std::string &Id : Ids) {
    JobPaths P = paths(Id);
    std::string SpecText;
    if (!readFile(P.Spec, SpecText))
      continue; // dir without a spec: admission died pre-commit; garbage
    Recovered R;
    R.Id = Id;
    support::Json V;
    std::string ParseError;
    if (!support::parseJson(SpecText, V, ParseError) ||
        !JobSpec::parse(V, R.Spec, ParseError))
      R.SpecError = "spec.json unreadable: " + ParseError;
    if (readFile(P.Result, R.ResultText))
      R.Terminal = true;
    Out.push_back(std::move(R));
  }
  return true;
}

uint64_t JobStore::maxSequence() const {
  DIR *D = opendir(Root.c_str());
  if (!D)
    return 0;
  uint64_t Max = 0;
  while (struct dirent *E = readdir(D)) {
    unsigned long long Seq = 0;
    if (std::sscanf(E->d_name, "job-%llu", &Seq) == 1)
      Max = std::max<uint64_t>(Max, Seq);
  }
  closedir(D);
  return Max;
}

#else // !GRS_HAVE_POSIX_FS

bool JobStore::init(std::string &Error) {
  Error = "no filesystem support on this platform";
  return false;
}
bool JobStore::writeAtomic(const std::string &, const std::string &,
                           std::string &Error) const {
  Error = "no filesystem support on this platform";
  return false;
}
bool JobStore::readFile(const std::string &, std::string &) { return false; }
bool JobStore::exists(const std::string &) { return false; }
bool JobStore::recover(std::vector<Recovered> &, std::string &Error) const {
  Error = "no filesystem support on this platform";
  return false;
}
uint64_t JobStore::maxSequence() const { return 0; }

#endif // GRS_HAVE_POSIX_FS
