# Empty compiler generated dependencies file for static_lint.
# This may be replaced when dependencies are built.
