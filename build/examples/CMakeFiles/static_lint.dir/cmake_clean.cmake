file(REMOVE_RECURSE
  "CMakeFiles/static_lint.dir/static_lint.cpp.o"
  "CMakeFiles/static_lint.dir/static_lint.cpp.o.d"
  "static_lint"
  "static_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
