file(REMOVE_RECURSE
  "CMakeFiles/deployment_sim.dir/deployment_sim.cpp.o"
  "CMakeFiles/deployment_sim.dir/deployment_sim.cpp.o.d"
  "deployment_sim"
  "deployment_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
