# Empty compiler generated dependencies file for explore_future.
# This may be replaced when dependencies are built.
