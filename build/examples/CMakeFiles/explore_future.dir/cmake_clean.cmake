file(REMOVE_RECURSE
  "CMakeFiles/explore_future.dir/explore_future.cpp.o"
  "CMakeFiles/explore_future.dir/explore_future.cpp.o.d"
  "explore_future"
  "explore_future.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
