# Empty compiler generated dependencies file for pattern_tour.
# This may be replaced when dependencies are built.
