file(REMOVE_RECURSE
  "CMakeFiles/pattern_tour.dir/pattern_tour.cpp.o"
  "CMakeFiles/pattern_tour.dir/pattern_tour.cpp.o.d"
  "pattern_tour"
  "pattern_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
