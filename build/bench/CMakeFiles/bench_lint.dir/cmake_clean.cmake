file(REMOVE_RECURSE
  "CMakeFiles/bench_lint.dir/bench_lint.cpp.o"
  "CMakeFiles/bench_lint.dir/bench_lint.cpp.o.d"
  "bench_lint"
  "bench_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
