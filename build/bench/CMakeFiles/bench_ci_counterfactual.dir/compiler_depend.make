# Empty compiler generated dependencies file for bench_ci_counterfactual.
# This may be replaced when dependencies are built.
