file(REMOVE_RECURSE
  "CMakeFiles/bench_ci_counterfactual.dir/bench_ci_counterfactual.cpp.o"
  "CMakeFiles/bench_ci_counterfactual.dir/bench_ci_counterfactual.cpp.o.d"
  "bench_ci_counterfactual"
  "bench_ci_counterfactual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ci_counterfactual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
