
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ci_counterfactual.cpp" "bench/CMakeFiles/bench_ci_counterfactual.dir/bench_ci_counterfactual.cpp.o" "gcc" "bench/CMakeFiles/bench_ci_counterfactual.dir/bench_ci_counterfactual.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/grs_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/grs_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/grs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/census/CMakeFiles/grs_census.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/grs_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/grs_race.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/grs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
