# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/RuntimeTest[1]_include.cmake")
include("/root/repo/build/tests/CorpusTest[1]_include.cmake")
include("/root/repo/build/tests/DetectorTest[1]_include.cmake")
include("/root/repo/build/tests/SyncTest[1]_include.cmake")
include("/root/repo/build/tests/ChannelTest[1]_include.cmake")
include("/root/repo/build/tests/SliceMapTest[1]_include.cmake")
include("/root/repo/build/tests/TestingHarnessTest[1]_include.cmake")
include("/root/repo/build/tests/PipelineTest[1]_include.cmake")
include("/root/repo/build/tests/AnalysisTest[1]_include.cmake")
include("/root/repo/build/tests/CensusTest[1]_include.cmake")
include("/root/repo/build/tests/FuzzTest[1]_include.cmake")
include("/root/repo/build/tests/ExtensionsTest[1]_include.cmake")
include("/root/repo/build/tests/SupportTest[1]_include.cmake")
include("/root/repo/build/tests/RootCauseTest[1]_include.cmake")
include("/root/repo/build/tests/Extensions2Test[1]_include.cmake")
include("/root/repo/build/tests/ParserTest[1]_include.cmake")
include("/root/repo/build/tests/StaticChecksTest[1]_include.cmake")
include("/root/repo/build/tests/ExploreTest[1]_include.cmake")
include("/root/repo/build/tests/CoverageTest[1]_include.cmake")
