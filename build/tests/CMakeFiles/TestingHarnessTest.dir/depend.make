# Empty dependencies file for TestingHarnessTest.
# This may be replaced when dependencies are built.
