file(REMOVE_RECURSE
  "CMakeFiles/TestingHarnessTest.dir/TestingHarnessTest.cpp.o"
  "CMakeFiles/TestingHarnessTest.dir/TestingHarnessTest.cpp.o.d"
  "TestingHarnessTest"
  "TestingHarnessTest.pdb"
  "TestingHarnessTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TestingHarnessTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
