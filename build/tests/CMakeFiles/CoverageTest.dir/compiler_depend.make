# Empty compiler generated dependencies file for CoverageTest.
# This may be replaced when dependencies are built.
