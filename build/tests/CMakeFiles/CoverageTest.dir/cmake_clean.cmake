file(REMOVE_RECURSE
  "CMakeFiles/CoverageTest.dir/CoverageTest.cpp.o"
  "CMakeFiles/CoverageTest.dir/CoverageTest.cpp.o.d"
  "CoverageTest"
  "CoverageTest.pdb"
  "CoverageTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CoverageTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
