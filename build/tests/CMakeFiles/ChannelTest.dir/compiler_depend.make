# Empty compiler generated dependencies file for ChannelTest.
# This may be replaced when dependencies are built.
