file(REMOVE_RECURSE
  "CMakeFiles/ChannelTest.dir/ChannelTest.cpp.o"
  "CMakeFiles/ChannelTest.dir/ChannelTest.cpp.o.d"
  "ChannelTest"
  "ChannelTest.pdb"
  "ChannelTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ChannelTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
