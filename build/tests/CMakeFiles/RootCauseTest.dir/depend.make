# Empty dependencies file for RootCauseTest.
# This may be replaced when dependencies are built.
