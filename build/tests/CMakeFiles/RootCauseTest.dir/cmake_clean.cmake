file(REMOVE_RECURSE
  "CMakeFiles/RootCauseTest.dir/RootCauseTest.cpp.o"
  "CMakeFiles/RootCauseTest.dir/RootCauseTest.cpp.o.d"
  "RootCauseTest"
  "RootCauseTest.pdb"
  "RootCauseTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RootCauseTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
