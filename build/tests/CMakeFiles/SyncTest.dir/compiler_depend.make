# Empty compiler generated dependencies file for SyncTest.
# This may be replaced when dependencies are built.
