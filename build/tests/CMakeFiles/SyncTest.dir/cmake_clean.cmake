file(REMOVE_RECURSE
  "CMakeFiles/SyncTest.dir/SyncTest.cpp.o"
  "CMakeFiles/SyncTest.dir/SyncTest.cpp.o.d"
  "SyncTest"
  "SyncTest.pdb"
  "SyncTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SyncTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
