file(REMOVE_RECURSE
  "CMakeFiles/ExploreTest.dir/ExploreTest.cpp.o"
  "CMakeFiles/ExploreTest.dir/ExploreTest.cpp.o.d"
  "ExploreTest"
  "ExploreTest.pdb"
  "ExploreTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ExploreTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
