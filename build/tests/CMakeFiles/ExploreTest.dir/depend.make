# Empty dependencies file for ExploreTest.
# This may be replaced when dependencies are built.
