# Empty dependencies file for ExtensionsTest.
# This may be replaced when dependencies are built.
