file(REMOVE_RECURSE
  "CMakeFiles/CensusTest.dir/CensusTest.cpp.o"
  "CMakeFiles/CensusTest.dir/CensusTest.cpp.o.d"
  "CensusTest"
  "CensusTest.pdb"
  "CensusTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CensusTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
