# Empty compiler generated dependencies file for CensusTest.
# This may be replaced when dependencies are built.
