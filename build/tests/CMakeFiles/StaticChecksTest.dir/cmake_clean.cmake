file(REMOVE_RECURSE
  "CMakeFiles/StaticChecksTest.dir/StaticChecksTest.cpp.o"
  "CMakeFiles/StaticChecksTest.dir/StaticChecksTest.cpp.o.d"
  "StaticChecksTest"
  "StaticChecksTest.pdb"
  "StaticChecksTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StaticChecksTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
