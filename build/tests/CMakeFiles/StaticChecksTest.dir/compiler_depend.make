# Empty compiler generated dependencies file for StaticChecksTest.
# This may be replaced when dependencies are built.
