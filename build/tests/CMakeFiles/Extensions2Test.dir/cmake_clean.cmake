file(REMOVE_RECURSE
  "CMakeFiles/Extensions2Test.dir/Extensions2Test.cpp.o"
  "CMakeFiles/Extensions2Test.dir/Extensions2Test.cpp.o.d"
  "Extensions2Test"
  "Extensions2Test.pdb"
  "Extensions2Test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/Extensions2Test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
