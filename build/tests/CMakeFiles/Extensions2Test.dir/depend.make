# Empty dependencies file for Extensions2Test.
# This may be replaced when dependencies are built.
