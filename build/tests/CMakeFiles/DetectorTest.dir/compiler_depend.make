# Empty compiler generated dependencies file for DetectorTest.
# This may be replaced when dependencies are built.
