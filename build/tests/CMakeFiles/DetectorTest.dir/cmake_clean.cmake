file(REMOVE_RECURSE
  "CMakeFiles/DetectorTest.dir/DetectorTest.cpp.o"
  "CMakeFiles/DetectorTest.dir/DetectorTest.cpp.o.d"
  "DetectorTest"
  "DetectorTest.pdb"
  "DetectorTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DetectorTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
