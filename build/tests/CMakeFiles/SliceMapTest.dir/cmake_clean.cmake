file(REMOVE_RECURSE
  "CMakeFiles/SliceMapTest.dir/SliceMapTest.cpp.o"
  "CMakeFiles/SliceMapTest.dir/SliceMapTest.cpp.o.d"
  "SliceMapTest"
  "SliceMapTest.pdb"
  "SliceMapTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SliceMapTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
