# Empty dependencies file for SliceMapTest.
# This may be replaced when dependencies are built.
