# Empty compiler generated dependencies file for CorpusTest.
# This may be replaced when dependencies are built.
