file(REMOVE_RECURSE
  "CMakeFiles/CorpusTest.dir/CorpusTest.cpp.o"
  "CMakeFiles/CorpusTest.dir/CorpusTest.cpp.o.d"
  "CorpusTest"
  "CorpusTest.pdb"
  "CorpusTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CorpusTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
