file(REMOVE_RECURSE
  "CMakeFiles/grs_rt.dir/Context.cpp.o"
  "CMakeFiles/grs_rt.dir/Context.cpp.o.d"
  "CMakeFiles/grs_rt.dir/Runtime.cpp.o"
  "CMakeFiles/grs_rt.dir/Runtime.cpp.o.d"
  "CMakeFiles/grs_rt.dir/Sync.cpp.o"
  "CMakeFiles/grs_rt.dir/Sync.cpp.o.d"
  "CMakeFiles/grs_rt.dir/Testing.cpp.o"
  "CMakeFiles/grs_rt.dir/Testing.cpp.o.d"
  "libgrs_rt.a"
  "libgrs_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grs_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
