file(REMOVE_RECURSE
  "libgrs_rt.a"
)
