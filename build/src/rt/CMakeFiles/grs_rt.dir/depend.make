# Empty dependencies file for grs_rt.
# This may be replaced when dependencies are built.
