
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/Context.cpp" "src/rt/CMakeFiles/grs_rt.dir/Context.cpp.o" "gcc" "src/rt/CMakeFiles/grs_rt.dir/Context.cpp.o.d"
  "/root/repo/src/rt/Runtime.cpp" "src/rt/CMakeFiles/grs_rt.dir/Runtime.cpp.o" "gcc" "src/rt/CMakeFiles/grs_rt.dir/Runtime.cpp.o.d"
  "/root/repo/src/rt/Sync.cpp" "src/rt/CMakeFiles/grs_rt.dir/Sync.cpp.o" "gcc" "src/rt/CMakeFiles/grs_rt.dir/Sync.cpp.o.d"
  "/root/repo/src/rt/Testing.cpp" "src/rt/CMakeFiles/grs_rt.dir/Testing.cpp.o" "gcc" "src/rt/CMakeFiles/grs_rt.dir/Testing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/race/CMakeFiles/grs_race.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/grs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
