# Empty compiler generated dependencies file for grs_corpus.
# This may be replaced when dependencies are built.
