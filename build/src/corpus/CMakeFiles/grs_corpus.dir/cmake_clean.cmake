file(REMOVE_RECURSE
  "CMakeFiles/grs_corpus.dir/CapturePatterns.cpp.o"
  "CMakeFiles/grs_corpus.dir/CapturePatterns.cpp.o.d"
  "CMakeFiles/grs_corpus.dir/ChannelPatterns.cpp.o"
  "CMakeFiles/grs_corpus.dir/ChannelPatterns.cpp.o.d"
  "CMakeFiles/grs_corpus.dir/LockingPatterns.cpp.o"
  "CMakeFiles/grs_corpus.dir/LockingPatterns.cpp.o.d"
  "CMakeFiles/grs_corpus.dir/MapPatterns.cpp.o"
  "CMakeFiles/grs_corpus.dir/MapPatterns.cpp.o.d"
  "CMakeFiles/grs_corpus.dir/Patterns.cpp.o"
  "CMakeFiles/grs_corpus.dir/Patterns.cpp.o.d"
  "CMakeFiles/grs_corpus.dir/Sampler.cpp.o"
  "CMakeFiles/grs_corpus.dir/Sampler.cpp.o.d"
  "CMakeFiles/grs_corpus.dir/SlicePatterns.cpp.o"
  "CMakeFiles/grs_corpus.dir/SlicePatterns.cpp.o.d"
  "CMakeFiles/grs_corpus.dir/TestingPatterns.cpp.o"
  "CMakeFiles/grs_corpus.dir/TestingPatterns.cpp.o.d"
  "CMakeFiles/grs_corpus.dir/ValueSemPatterns.cpp.o"
  "CMakeFiles/grs_corpus.dir/ValueSemPatterns.cpp.o.d"
  "CMakeFiles/grs_corpus.dir/WaitGroupPatterns.cpp.o"
  "CMakeFiles/grs_corpus.dir/WaitGroupPatterns.cpp.o.d"
  "libgrs_corpus.a"
  "libgrs_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grs_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
