file(REMOVE_RECURSE
  "libgrs_corpus.a"
)
