
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/CapturePatterns.cpp" "src/corpus/CMakeFiles/grs_corpus.dir/CapturePatterns.cpp.o" "gcc" "src/corpus/CMakeFiles/grs_corpus.dir/CapturePatterns.cpp.o.d"
  "/root/repo/src/corpus/ChannelPatterns.cpp" "src/corpus/CMakeFiles/grs_corpus.dir/ChannelPatterns.cpp.o" "gcc" "src/corpus/CMakeFiles/grs_corpus.dir/ChannelPatterns.cpp.o.d"
  "/root/repo/src/corpus/LockingPatterns.cpp" "src/corpus/CMakeFiles/grs_corpus.dir/LockingPatterns.cpp.o" "gcc" "src/corpus/CMakeFiles/grs_corpus.dir/LockingPatterns.cpp.o.d"
  "/root/repo/src/corpus/MapPatterns.cpp" "src/corpus/CMakeFiles/grs_corpus.dir/MapPatterns.cpp.o" "gcc" "src/corpus/CMakeFiles/grs_corpus.dir/MapPatterns.cpp.o.d"
  "/root/repo/src/corpus/Patterns.cpp" "src/corpus/CMakeFiles/grs_corpus.dir/Patterns.cpp.o" "gcc" "src/corpus/CMakeFiles/grs_corpus.dir/Patterns.cpp.o.d"
  "/root/repo/src/corpus/Sampler.cpp" "src/corpus/CMakeFiles/grs_corpus.dir/Sampler.cpp.o" "gcc" "src/corpus/CMakeFiles/grs_corpus.dir/Sampler.cpp.o.d"
  "/root/repo/src/corpus/SlicePatterns.cpp" "src/corpus/CMakeFiles/grs_corpus.dir/SlicePatterns.cpp.o" "gcc" "src/corpus/CMakeFiles/grs_corpus.dir/SlicePatterns.cpp.o.d"
  "/root/repo/src/corpus/TestingPatterns.cpp" "src/corpus/CMakeFiles/grs_corpus.dir/TestingPatterns.cpp.o" "gcc" "src/corpus/CMakeFiles/grs_corpus.dir/TestingPatterns.cpp.o.d"
  "/root/repo/src/corpus/ValueSemPatterns.cpp" "src/corpus/CMakeFiles/grs_corpus.dir/ValueSemPatterns.cpp.o" "gcc" "src/corpus/CMakeFiles/grs_corpus.dir/ValueSemPatterns.cpp.o.d"
  "/root/repo/src/corpus/WaitGroupPatterns.cpp" "src/corpus/CMakeFiles/grs_corpus.dir/WaitGroupPatterns.cpp.o" "gcc" "src/corpus/CMakeFiles/grs_corpus.dir/WaitGroupPatterns.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/grs_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/grs_race.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/grs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
