file(REMOVE_RECURSE
  "libgrs_race.a"
)
