# Empty compiler generated dependencies file for grs_race.
# This may be replaced when dependencies are built.
