file(REMOVE_RECURSE
  "CMakeFiles/grs_race.dir/Detector.cpp.o"
  "CMakeFiles/grs_race.dir/Detector.cpp.o.d"
  "CMakeFiles/grs_race.dir/LockSet.cpp.o"
  "CMakeFiles/grs_race.dir/LockSet.cpp.o.d"
  "CMakeFiles/grs_race.dir/Report.cpp.o"
  "CMakeFiles/grs_race.dir/Report.cpp.o.d"
  "CMakeFiles/grs_race.dir/Source.cpp.o"
  "CMakeFiles/grs_race.dir/Source.cpp.o.d"
  "CMakeFiles/grs_race.dir/VectorClock.cpp.o"
  "CMakeFiles/grs_race.dir/VectorClock.cpp.o.d"
  "libgrs_race.a"
  "libgrs_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grs_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
