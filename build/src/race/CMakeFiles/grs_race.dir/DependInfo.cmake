
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/race/Detector.cpp" "src/race/CMakeFiles/grs_race.dir/Detector.cpp.o" "gcc" "src/race/CMakeFiles/grs_race.dir/Detector.cpp.o.d"
  "/root/repo/src/race/LockSet.cpp" "src/race/CMakeFiles/grs_race.dir/LockSet.cpp.o" "gcc" "src/race/CMakeFiles/grs_race.dir/LockSet.cpp.o.d"
  "/root/repo/src/race/Report.cpp" "src/race/CMakeFiles/grs_race.dir/Report.cpp.o" "gcc" "src/race/CMakeFiles/grs_race.dir/Report.cpp.o.d"
  "/root/repo/src/race/Source.cpp" "src/race/CMakeFiles/grs_race.dir/Source.cpp.o" "gcc" "src/race/CMakeFiles/grs_race.dir/Source.cpp.o.d"
  "/root/repo/src/race/VectorClock.cpp" "src/race/CMakeFiles/grs_race.dir/VectorClock.cpp.o" "gcc" "src/race/CMakeFiles/grs_race.dir/VectorClock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/grs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
