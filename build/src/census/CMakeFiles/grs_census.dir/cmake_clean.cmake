file(REMOVE_RECURSE
  "CMakeFiles/grs_census.dir/FleetCensus.cpp.o"
  "CMakeFiles/grs_census.dir/FleetCensus.cpp.o.d"
  "libgrs_census.a"
  "libgrs_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grs_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
