file(REMOVE_RECURSE
  "libgrs_census.a"
)
