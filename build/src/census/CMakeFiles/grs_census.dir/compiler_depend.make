# Empty compiler generated dependencies file for grs_census.
# This may be replaced when dependencies are built.
