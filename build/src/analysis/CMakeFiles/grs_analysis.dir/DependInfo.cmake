
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ConstructCounter.cpp" "src/analysis/CMakeFiles/grs_analysis.dir/ConstructCounter.cpp.o" "gcc" "src/analysis/CMakeFiles/grs_analysis.dir/ConstructCounter.cpp.o.d"
  "/root/repo/src/analysis/Lexer.cpp" "src/analysis/CMakeFiles/grs_analysis.dir/Lexer.cpp.o" "gcc" "src/analysis/CMakeFiles/grs_analysis.dir/Lexer.cpp.o.d"
  "/root/repo/src/analysis/Parser.cpp" "src/analysis/CMakeFiles/grs_analysis.dir/Parser.cpp.o" "gcc" "src/analysis/CMakeFiles/grs_analysis.dir/Parser.cpp.o.d"
  "/root/repo/src/analysis/SourceGen.cpp" "src/analysis/CMakeFiles/grs_analysis.dir/SourceGen.cpp.o" "gcc" "src/analysis/CMakeFiles/grs_analysis.dir/SourceGen.cpp.o.d"
  "/root/repo/src/analysis/StaticChecks.cpp" "src/analysis/CMakeFiles/grs_analysis.dir/StaticChecks.cpp.o" "gcc" "src/analysis/CMakeFiles/grs_analysis.dir/StaticChecks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/grs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
