file(REMOVE_RECURSE
  "CMakeFiles/grs_analysis.dir/ConstructCounter.cpp.o"
  "CMakeFiles/grs_analysis.dir/ConstructCounter.cpp.o.d"
  "CMakeFiles/grs_analysis.dir/Lexer.cpp.o"
  "CMakeFiles/grs_analysis.dir/Lexer.cpp.o.d"
  "CMakeFiles/grs_analysis.dir/Parser.cpp.o"
  "CMakeFiles/grs_analysis.dir/Parser.cpp.o.d"
  "CMakeFiles/grs_analysis.dir/SourceGen.cpp.o"
  "CMakeFiles/grs_analysis.dir/SourceGen.cpp.o.d"
  "CMakeFiles/grs_analysis.dir/StaticChecks.cpp.o"
  "CMakeFiles/grs_analysis.dir/StaticChecks.cpp.o.d"
  "libgrs_analysis.a"
  "libgrs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
