file(REMOVE_RECURSE
  "libgrs_analysis.a"
)
