# Empty dependencies file for grs_analysis.
# This may be replaced when dependencies are built.
