# Empty compiler generated dependencies file for grs_support.
# This may be replaced when dependencies are built.
