file(REMOVE_RECURSE
  "CMakeFiles/grs_support.dir/Render.cpp.o"
  "CMakeFiles/grs_support.dir/Render.cpp.o.d"
  "CMakeFiles/grs_support.dir/Rng.cpp.o"
  "CMakeFiles/grs_support.dir/Rng.cpp.o.d"
  "CMakeFiles/grs_support.dir/Stats.cpp.o"
  "CMakeFiles/grs_support.dir/Stats.cpp.o.d"
  "libgrs_support.a"
  "libgrs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
