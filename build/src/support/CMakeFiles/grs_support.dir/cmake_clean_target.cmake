file(REMOVE_RECURSE
  "libgrs_support.a"
)
