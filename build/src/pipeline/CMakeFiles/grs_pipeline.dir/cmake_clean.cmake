file(REMOVE_RECURSE
  "CMakeFiles/grs_pipeline.dir/BugDatabase.cpp.o"
  "CMakeFiles/grs_pipeline.dir/BugDatabase.cpp.o.d"
  "CMakeFiles/grs_pipeline.dir/Deployment.cpp.o"
  "CMakeFiles/grs_pipeline.dir/Deployment.cpp.o.d"
  "CMakeFiles/grs_pipeline.dir/Fingerprint.cpp.o"
  "CMakeFiles/grs_pipeline.dir/Fingerprint.cpp.o.d"
  "CMakeFiles/grs_pipeline.dir/Monorepo.cpp.o"
  "CMakeFiles/grs_pipeline.dir/Monorepo.cpp.o.d"
  "CMakeFiles/grs_pipeline.dir/Ownership.cpp.o"
  "CMakeFiles/grs_pipeline.dir/Ownership.cpp.o.d"
  "CMakeFiles/grs_pipeline.dir/RootCause.cpp.o"
  "CMakeFiles/grs_pipeline.dir/RootCause.cpp.o.d"
  "libgrs_pipeline.a"
  "libgrs_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grs_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
