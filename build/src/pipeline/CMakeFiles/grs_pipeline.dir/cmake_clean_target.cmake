file(REMOVE_RECURSE
  "libgrs_pipeline.a"
)
