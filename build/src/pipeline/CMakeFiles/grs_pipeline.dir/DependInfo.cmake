
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/BugDatabase.cpp" "src/pipeline/CMakeFiles/grs_pipeline.dir/BugDatabase.cpp.o" "gcc" "src/pipeline/CMakeFiles/grs_pipeline.dir/BugDatabase.cpp.o.d"
  "/root/repo/src/pipeline/Deployment.cpp" "src/pipeline/CMakeFiles/grs_pipeline.dir/Deployment.cpp.o" "gcc" "src/pipeline/CMakeFiles/grs_pipeline.dir/Deployment.cpp.o.d"
  "/root/repo/src/pipeline/Fingerprint.cpp" "src/pipeline/CMakeFiles/grs_pipeline.dir/Fingerprint.cpp.o" "gcc" "src/pipeline/CMakeFiles/grs_pipeline.dir/Fingerprint.cpp.o.d"
  "/root/repo/src/pipeline/Monorepo.cpp" "src/pipeline/CMakeFiles/grs_pipeline.dir/Monorepo.cpp.o" "gcc" "src/pipeline/CMakeFiles/grs_pipeline.dir/Monorepo.cpp.o.d"
  "/root/repo/src/pipeline/Ownership.cpp" "src/pipeline/CMakeFiles/grs_pipeline.dir/Ownership.cpp.o" "gcc" "src/pipeline/CMakeFiles/grs_pipeline.dir/Ownership.cpp.o.d"
  "/root/repo/src/pipeline/RootCause.cpp" "src/pipeline/CMakeFiles/grs_pipeline.dir/RootCause.cpp.o" "gcc" "src/pipeline/CMakeFiles/grs_pipeline.dir/RootCause.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/grs_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/grs_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/grs_race.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/grs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
