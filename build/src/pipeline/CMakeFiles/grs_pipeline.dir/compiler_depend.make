# Empty compiler generated dependencies file for grs_pipeline.
# This may be replaced when dependencies are built.
