//===- examples/pattern_tour.cpp - Tour of the Section 4 race corpus -------===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
// Runs every race pattern of the paper's Section 4 (Listings 1-11 plus
// the Table 3 categories) in both variants, across a seed sweep, and
// prints a per-pattern detection summary — including the patterns whose
// detection is schedule-dependent, the §3.1 flakiness the paper's whole
// deployment design responds to.
//
// Usage: pattern_tour [seeds] [--show-report <pattern-id>]
//
//===----------------------------------------------------------------------===//

#include "corpus/Patterns.h"
#include "support/Render.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

using namespace grs;
using namespace grs::corpus;

int main(int Argc, char **Argv) {
  uint64_t Seeds = Argc > 1 && Argv[1][0] != '-'
                       ? std::strtoull(Argv[1], nullptr, 10)
                       : 25;
  bool Markdown = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--markdown") == 0)
      Markdown = true;

  if (Markdown) {
    // Emit the corpus catalogue as a markdown table (docs/PATTERNS.md is
    // regenerated from this output).
    std::cout << "# The race pattern corpus\n\n"
              << "Every pattern ships as a racy and a fixed variant; the\n"
              << "detection column is a " << Seeds
              << "-seed sweep of the racy variant\n"
              << "(sub-full scores are schedule-dependence, §3.1).\n\n"
              << "| Pattern id | Paper ref | Obs. | Category | Detected | "
                 "Description |\n|---|---|---|---|---|---|\n";
    for (const Pattern &P : allPatterns()) {
      size_t Detected = 0;
      for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
        rt::RunOptions Opts;
        Opts.Seed = Seed;
        Detected += P.RunRacy(Opts).RaceCount > 0;
      }
      int Obs = observationNumber(P.Cat);
      std::cout << "| `" << P.Id << "` | " << P.ListingRef << " | "
                << (Obs ? std::to_string(Obs) : "-") << " | "
                << categoryName(P.Cat) << " | " << Detected << "/" << Seeds
                << " | " << P.Description << " |\n";
    }
    return 0;
  }

  std::cout << "Tour of the Section 4 data race patterns (" << Seeds
            << "-seed sweep per pattern)\n\n";

  support::TextTable Table("Pattern corpus");
  Table.setHeader({"Pattern", "Paper ref", "Obs.", "Racy detected",
                   "Fixed clean", "Leaks"});
  for (const Pattern &P : allPatterns()) {
    size_t Detected = 0, FixedClean = 0, Leaks = 0;
    for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
      rt::RunOptions Opts;
      Opts.Seed = Seed;
      rt::RunResult Racy = P.RunRacy(Opts);
      Detected += Racy.RaceCount > 0;
      Leaks += !Racy.LeakedGoroutines.empty();
      rt::RunResult Fixed = P.RunFixed(Opts);
      FixedClean += Fixed.RaceCount == 0;
    }
    int Obs = observationNumber(P.Cat);
    Table.addRow({P.Id, P.ListingRef, Obs ? std::to_string(Obs) : "-",
                  std::to_string(Detected) + "/" + std::to_string(Seeds),
                  std::to_string(FixedClean) + "/" + std::to_string(Seeds),
                  std::to_string(Leaks) + "/" + std::to_string(Seeds)});
  }
  Table.render(std::cout);

  std::cout
      << "\nNotes:\n"
      << "  * 'Racy detected' below " << Seeds << "/" << Seeds
      << " is schedule-dependence, not a miss: e.g. the Listing 9\n"
      << "    Future only races on seeds where the context deadline beats\n"
      << "    the worker (and then also leaks the sender goroutine).\n"
      << "  * 'Fixed clean' must be full marks: the corrected idioms are\n"
      << "    the detector's no-false-positive check.\n";

  // Optional: print the full Go-style report for one pattern.
  for (int I = 1; I + 1 < Argc; ++I) {
    if (std::strcmp(Argv[I], "--show-report") != 0)
      continue;
    const Pattern *P = findPattern(Argv[I + 1]);
    if (!P) {
      std::cerr << "error: unknown pattern id '" << Argv[I + 1] << "'\n";
      return 1;
    }
    std::cout << "\n" << P->Id << " (" << P->ListingRef
              << "): " << P->Description << "\n\n";
    for (uint64_t Seed = 1; Seed <= 64; ++Seed) {
      rt::RunOptions Opts;
      Opts.Seed = Seed;
      bool Printed = false;
      Opts.OnReport = [&Printed](const race::Detector &D,
                                 const race::RaceReport &Report) {
        if (Printed)
          return;
        Printed = true;
        race::printReport(std::cout, D.interner(), Report);
      };
      rt::RunResult Result = P->RunRacy(Opts);
      if (Result.RaceCount == 0)
        continue;
      std::cout << "(manifested at seed " << Seed << ")\n";
      break;
    }
  }
  return 0;
}
