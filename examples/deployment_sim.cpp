//===- examples/deployment_sim.cpp - Run the industrial deployment ---------===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
// Drives the Section 3 deployment pipeline end-to-end: the six-month
// daily-snapshot simulation (Figure 2's architecture), the de-duplicating
// bug database, and the ownership resolver — then pretty-prints one
// task's assignment log, the §3.3.2 "log of how our algorithm arrived at
// the choice of the assignee".
//
// Usage: deployment_sim [seed] [days]
//
//===----------------------------------------------------------------------===//

#include "pipeline/Deployment.h"
#include "support/Render.h"

#include <cstdlib>
#include <iostream>

using namespace grs;
using namespace grs::pipeline;

int main(int Argc, char **Argv) {
  DeploymentConfig Config;
  Config.Seed = Argc > 1 ? std::strtoull(Argv[1], nullptr, 10) : 1;
  if (Argc > 2)
    Config.Days = static_cast<uint32_t>(std::atoi(Argv[2]));

  std::cout << "Six-month post-facto race detection deployment (§3)\n"
            << "====================================================\n\n"
            << "Monorepo model: " << Config.Repo.NumServices
            << " services, "
            << Config.Repo.NumServices * Config.Repo.FilesPerService
            << " files, " << Config.Repo.NumDevelopers << " developers\n"
            << "Rollout: " << Config.Days << " days; shepherding ends day "
            << Config.ShepherdingEndDay << "; floodgates open day "
            << Config.FloodgateDay << "\n\n";

  DeploymentSimulator Sim(Config);
  DeploymentOutcome O = Sim.run();

  support::renderSeriesChart(std::cout,
                             "Outstanding detected races (Figure 3)",
                             {O.Outstanding}, 90, 14);
  std::cout << '\n';
  support::renderSeriesChart(std::cout,
                             "Cumulative found vs fixed (Figure 4)",
                             {O.CreatedCumulative, O.ResolvedCumulative}, 90,
                             14);

  support::TextTable Stats("\nSix-month summary (paper §3.5 -> this run)");
  Stats.setHeader({"Statistic", "Paper", "This run"});
  Stats.addRow({"races detected", "~2000", std::to_string(O.TotalDetectedRaces)});
  Stats.addRow({"races fixed", "1011", std::to_string(O.TotalFixedTasks)});
  Stats.addRow({"unique patches", "790", std::to_string(O.UniquePatches)});
  Stats.addRow({"unique fixers", "210", std::to_string(O.UniqueFixers)});
  Stats.addRow({"new reports/day (late)", "~5",
                support::fixed(O.AvgNewReportsPerDayLate, 1)});
  Stats.render(std::cout);

  // Show one real task with its assignment explanation.
  const BugDatabase &Bugs = Sim.bugs();
  for (const Task &T : Bugs.tasks()) {
    if (T.AssignmentLog.size() < 2)
      continue;
    std::cout << "\nSample filed task #" << T.Id << " (fingerprint 0x"
              << std::hex << T.Fingerprint << std::dec << ", day "
              << T.CreatedDay << ", status "
              << (T.Status == TaskStatus::Fixed
                      ? "FIXED day " + std::to_string(T.FixedDay)
                      : std::string("OPEN"))
              << ")\nAssigned to: "
              << Sim.repo().developerName(T.Assignee)
              << "\nAssignment log (§3.3.2):\n";
    for (const std::string &Line : T.AssignmentLog)
      std::cout << "  - " << Line << '\n';
    break;
  }
  return 0;
}
