//===- examples/quickstart.cpp - Five-minute tour of the library -----------===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
// Write a small Go-like concurrent program, run it under the deterministic
// runtime with the race detector on, and read the report — the same
// "WARNING: DATA RACE" experience `go test -race` gives, but reproducible
// per seed.
//
//===----------------------------------------------------------------------===//

#include "rt/Instr.h"
#include "rt/Runtime.h"
#include "rt/Sync.h"

#include <iostream>

using namespace grs;
using namespace grs::rt;

int main() {
  std::cout << "gorace-study quickstart\n"
            << "=======================\n\n"
            << "Program: two goroutines increment a shared counter.\n"
            << "Buggy version: no lock. Fixed version: a sync.Mutex.\n\n";

  //===--------------------------------------------------------------------===
  // 1. The buggy program.
  //===--------------------------------------------------------------------===
  Runtime Buggy(withSeed(42));
  RunResult BuggyResult = Buggy.run([] {
    FuncScope Fn("main", "counter.go", 1);
    auto Counter = std::make_shared<Shared<int>>("counter", 0);
    WaitGroup Wg;
    for (int I = 0; I < 2; ++I) {
      Wg.add(1);
      go("incrementer", [Counter, &Wg] {
        FuncScope Inner("incrementCounter", "counter.go", 7);
        atLine(8);
        Counter->store(Counter->load() + 1); // counter++ — unprotected.
        Wg.done();
      });
    }
    Wg.wait();
    std::cout << "buggy run finished; counter = " << Counter->load()
              << "\n\n";
  });

  std::cout << "Detector found " << BuggyResult.RaceCount
            << " race(s). First report:\n\n";
  if (!Buggy.det().reports().empty())
    race::printReport(std::cout, Buggy.det().interner(),
                      Buggy.det().reports().front());

  //===--------------------------------------------------------------------===
  // 2. The fixed program.
  //===--------------------------------------------------------------------===
  Runtime Fixed(withSeed(42));
  RunResult FixedResult = Fixed.run([] {
    FuncScope Fn("main", "counter.go", 1);
    auto Counter = std::make_shared<Shared<int>>("counter", 0);
    auto Mu = std::make_shared<Mutex>("mu");
    WaitGroup Wg;
    for (int I = 0; I < 2; ++I) {
      Wg.add(1);
      go("incrementer", [Counter, Mu, &Wg] {
        FuncScope Inner("incrementCounter", "counter.go", 7);
        Mu->lock();
        Counter->store(Counter->load() + 1);
        Mu->unlock();
        Wg.done();
      });
    }
    Wg.wait();
  });

  std::cout << "\nFixed version: " << FixedResult.RaceCount
            << " race(s) reported (clean=" << std::boolalpha
            << FixedResult.clean() << ").\n\n";

  //===--------------------------------------------------------------------===
  // 3. Determinism: the same seed replays the same schedule.
  //===--------------------------------------------------------------------===
  auto StepsFor = [](uint64_t Seed) {
    Runtime RT(withSeed(Seed));
    return RT
        .run([] {
          auto X = std::make_shared<Shared<int>>("x", 0);
          WaitGroup Wg;
          for (int I = 0; I < 3; ++I) {
            Wg.add(1);
            go("w", [X, &Wg] {
              X->store(X->load() + 1);
              Wg.done();
            });
          }
          Wg.wait();
        })
        .Steps;
  };
  std::cout << "Scheduling is a pure function of the seed:\n"
            << "  seed 7  -> " << StepsFor(7) << " steps (twice: "
            << StepsFor(7) << ")\n"
            << "  seed 8  -> " << StepsFor(8) << " steps\n\n"
            << "Next steps: run examples/pattern_tour for all Section 4\n"
            << "race patterns, and examples/deployment_sim for the\n"
            << "six-month industrial deployment simulation.\n";
  return 0;
}
