//===- examples/static_lint.cpp - Static race linting of Go source ---------===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
// The paper's closing hope: "We believe the bug patterns in Go presented
// in this paper can inspire further research in static race detection for
// Go" (§5). This example feeds the paper's own listings — as Go source —
// through the library's parser + static checks and prints what a PR-time
// linter would have said before any of those races shipped.
//
// Usage: static_lint            (lints the built-in paper listings)
//        static_lint <file.go>  (lints a file from disk)
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticChecks.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace grs::analysis;

namespace {

struct Sample {
  const char *Title;
  const char *Source;
};

const Sample PaperListings[] = {
    {"Listing 1 — loop index variable capture",
     R"go(
package listing1

func ProcessJobs(jobs []Job) {
  for _, job := range jobs {
    go func() {
      ProcessJob(job)
    }()
  }
}
)go"},
    {"Listing 2 — idiomatic err variable capture",
     R"go(
package listing2

func FetchAndProcess() {
  x, err := Foo()
  if err != nil {
    return
  }
  go func() {
    y, err = Bar(x)
    if err != nil {
      handle(y)
    }
  }()
  z, err := Baz()
  use(z)
}
)go"},
    {"Listing 3 — named return variable capture",
     R"go(
package listing3

func NamedReturnCallee() (result int) {
  result = 10
  if done() {
    return
  }
  go func() {
    use(result)
  }()
  return 20
}
)go"},
    {"Listing 5 — slice passed by value alongside a locked closure",
     R"go(
package listing5

func ProcessAll(uuids []string) {
  var myResults []string
  var mutex sync.Mutex
  safeAppend := func(res string) {
    mutex.Lock()
    myResults = append(myResults, res)
    mutex.Unlock()
  }
  for _, uuid := range uuids {
    go func(id string, results []string) {
      safeAppend(Foo(id))
    }(uuid, myResults)
  }
}
)go"},
    {"Listing 6 — concurrent map access",
     R"go(
package listing6

func processOrders(uuids []string) error {
  errMap := make(map[string]error)
  for _, uuid := range uuids {
    go func(u string) {
      _, err := GetOrder(u)
      if err != nil {
        errMap[u] = err
      }
    }(uuid)
  }
  return combinedError(errMap)
}
)go"},
    {"Listing 7 — sync.Mutex passed by value",
     R"go(
package listing7

func CriticalSection(m sync.Mutex) {
  m.Lock()
  a = a + 1
  m.Unlock()
}
)go"},
    {"Listing 10 — wg.Add inside the goroutine",
     R"go(
package listing10

func WaitGrpExample(itemIds []int) {
  var wg sync.WaitGroup
  for _, id := range itemIds {
    go func(i int) {
      wg.Add(1)
      defer wg.Done()
      process(i)
    }(id)
  }
  wg.Wait()
}
)go"},
    {"Listing 11 — mutation under RLock",
     R"go(
package listing11

func (g *HealthGate) updateGate() {
  g.mutex.RLock()
  defer g.mutex.RUnlock()
  if notReady(g) {
    g.ready = true
    g.gate.Accept()
  }
}
)go"},
};

void lintOne(const std::string &Title, const std::string &Source) {
  std::cout << Title << "\n" << std::string(Title.size(), '-') << "\n";
  std::vector<Diagnostic> Diags = lintGoSource(Source);
  if (Diags.empty()) {
    std::cout << "  clean: no static race patterns found\n\n";
    return;
  }
  for (const Diagnostic &D : Diags)
    std::cout << "  " << D.Function << ":" << D.Line << ": [" << D.Check
              << "] " << D.Message << "\n";
  std::cout << "\n";
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::cerr << "error: cannot open " << Argv[1] << "\n";
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    lintOne(Argv[1], Buf.str());
    return 0;
  }

  std::cout << "Static race linting of the paper's listings (§5 research "
               "direction)\n\n";
  for (const Sample &S : PaperListings)
    lintOne(S.Title, S.Source);

  std::cout << "Each diagnostic above corresponds to a race the dynamic\n"
               "detector confirms at runtime (see examples/pattern_tour);\n"
               "a PR-time linter with these checks would have blocked the\n"
               "pattern before it shipped — at zero runtime cost.\n";
  return 0;
}
