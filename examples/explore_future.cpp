//===- examples/explore_future.cpp - Hunting Listing 9 systematically ------===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
// Listing 9's Future bug is the paper's canonical flaky race: it only
// manifests on schedules where the context deadline beats the worker.
// This example hunts it three ways and contrasts the §3.1/§5 trade-offs:
//
//   1. one `go test -race`-style run (a single schedule),
//   2. a random seed sweep (pipeline::sweep),
//   3. CHESS-style systematic exploration (pipeline::explore),
//
// then proves the channel-only fix clean under exhaustive exploration.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Explore.h"
#include "pipeline/Sweep.h"
#include "rt/Channel.h"
#include "rt/Context.h"
#include "rt/Instr.h"
#include "rt/Select.h"

#include <iostream>

using namespace grs;
using namespace grs::rt;

namespace {

/// The Listing 9 shape, compacted: worker publishes into shared fields
/// and signals on an unbuffered channel; Wait() selects between the
/// signal and ctx.Done(), writing the shared error on the cancel path.
void futureBody(bool Fixed) {
  auto Done = std::make_shared<Chan<int>>(Fixed ? 1 : 0, "future.ch");
  auto Err = std::make_shared<Shared<int>>("future.err", 0);
  auto [Ctx, Cancel] = Context::withTimeout(Context::background(), 40);
  (void)Cancel;

  go("future-worker", [Done, Err, Fixed] {
    Runtime &RT = Runtime::current();
    RT.sleepUntilStep(RT.stepCount() + 40); // f.f() takes a while.
    if (!Fixed)
      Err->store(1); // f.err = err — shared-memory publication.
    Done->send(1);   // Unbuffered in the bug: may block forever.
  });

  Selector Sel;
  Sel.onRecv<int>(*Done, [](int, bool) {});
  Sel.onRecv<Unit>(Ctx.doneChan(), [Err, Fixed](Unit, bool) {
    if (!Fixed)
      Err->store(2); // Races with the worker's write.
  });
  Sel.run();
}

} // namespace

int main() {
  std::cout << "Hunting the Listing 9 Future race three ways\n"
            << "============================================\n\n";

  // 1. A single run — the `go test -race` experience.
  {
    Runtime RT(withSeed(1));
    RunResult One = RT.run([] { futureBody(/*Fixed=*/false); });
    std::cout << "1. Single run (seed 1): "
              << (One.RaceCount ? "race detected" : "NO race detected")
              << (One.LeakedGoroutines.empty() ? ""
                                               : " + goroutine leaked")
              << " — one schedule proves nothing either way.\n\n";
  }

  // 2. Random seed sweep.
  pipeline::SweepResult Swept =
      pipeline::sweep(40, [] { futureBody(/*Fixed=*/false); });
  std::cout << "2. Random sweep, 40 schedules: races on "
            << Swept.SeedsWithRaces << "/40 (detection rate "
            << static_cast<int>(Swept.detectionRate() * 100)
            << "%), goroutine leaks on " << Swept.SeedsWithLeaks
            << "/40, " << Swept.Findings.size()
            << " distinct fingerprint(s) after dedup.\n"
            << "   This is the §3.1 flakiness that forced the paper's "
               "post-facto design.\n\n";

  // 3. Systematic exploration.
  pipeline::ExploreOptions Opts;
  Opts.MaxRuns = 400;
  pipeline::ExploreResult Explored =
      pipeline::explore(Opts, [] { futureBody(/*Fixed=*/false); });
  std::cout << "3. Systematic exploration: first racy schedule at run "
            << Explored.FirstRacyRun << " of " << Explored.RunsExecuted
            << "; racy on " << Explored.RacyRuns << " runs"
            << (Explored.Exhaustive ? " (tree exhausted)" : "") << ".\n"
            << "   Deterministic: re-running reproduces the same racy "
               "schedule, no luck involved.\n\n";

  // The fix, proven rather than sampled.
  pipeline::ExploreResult Proven =
      pipeline::explore(600, [] { futureBody(/*Fixed=*/true); });
  std::cout << "Fixed Future (result travels in a buffered channel; the "
               "cancel path touches nothing shared):\n   "
            << Proven.RunsExecuted << " schedules explored, "
            << Proven.RacyRuns << " races, "
            << (Proven.Exhaustive ? "tree EXHAUSTED — race-free on every "
                                    "schedule up to the branch bound."
                                  : "budget reached without a race.")
            << "\n";
  return Proven.RacyRuns == 0 ? 0 : 1;
}
