//===- examples/race_hunt.cpp - Seed-sweep race hunting for your own code --===//
//
// Part of the gorace-study project: a C++ reproduction of "A Study of
// Real-World Data Races in Golang" (PLDI 2022).
//
// The downstream-user scenario: you built a concurrent component (here, a
// microservice-ish order processor with a cache and worker fan-out), and
// you want `go test -race`-style assurance. This example shows the
// recommended recipe:
//
//   1. wrap the component exercise in a Runtime body,
//   2. sweep seeds (schedules) instead of praying to the OS scheduler,
//   3. deduplicate findings with the §3.3.1 fingerprint,
//   4. fix, and re-sweep to prove the fix on every schedule.
//
// Usage: race_hunt [num-seeds]
//
//===----------------------------------------------------------------------===//

#include "pipeline/Fingerprint.h"
#include "rt/GoMap.h"
#include "rt/Instr.h"
#include "rt/Runtime.h"
#include "rt/Sync.h"

#include <cstdlib>
#include <iostream>
#include <map>

using namespace grs;
using namespace grs::rt;

namespace {

/// The component under test: caches order lookups, fans work out to
/// goroutines. The bug: `Stats.Lookups` is bumped outside the lock on the
/// hot path ("thread-safe API violating contract", Table 3's second
/// biggest row).
struct OrderProcessor {
  explicit OrderProcessor(bool Buggy)
      : Buggy(Buggy), Cache(std::make_shared<GoMap<int, int>>("orderCache")),
        Lookups(std::make_shared<Shared<int>>("stats.lookups", 0)),
        Mu(std::make_shared<Mutex>("cacheMu")) {}

  int lookup(int OrderId) {
    FuncScope Fn("OrderProcessor.Lookup", "orders.go", 12);
    if (Buggy) {
      atLine(13);
      Lookups->store(Lookups->load() + 1); // Fast path skips the lock.
    }
    Mu->lock();
    if (!Buggy)
      Lookups->store(Lookups->load() + 1);
    auto [Value, Hit] = Cache->getOk(OrderId);
    if (!Hit) {
      Value = OrderId * 7; // "fetch from the DB"
      Cache->set(OrderId, Value);
    }
    Mu->unlock();
    return Value;
  }

  bool Buggy;
  std::shared_ptr<GoMap<int, int>> Cache;
  std::shared_ptr<Shared<int>> Lookups;
  std::shared_ptr<Mutex> Mu;
};

struct HuntResult {
  size_t SeedsRaced = 0;
  std::map<uint64_t, size_t> FingerprintCounts;
  std::string SampleReport;
};

HuntResult hunt(bool Buggy, uint64_t NumSeeds) {
  HuntResult Result;
  for (uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
    RunOptions Opts;
    Opts.Seed = Seed;
    Opts.OnReport = [&Result](const race::Detector &D,
                              const race::RaceReport &Report) {
      ++Result.FingerprintCounts[pipeline::raceFingerprint(D.interner(),
                                                           Report)];
      if (Result.SampleReport.empty())
        Result.SampleReport = race::reportToString(D.interner(), Report);
    };
    Runtime RT(Opts);
    RunResult Run = RT.run([Buggy] {
      FuncScope Fn("TestOrderFanout", "orders_test.go", 40);
      auto Proc = std::make_shared<OrderProcessor>(Buggy);
      WaitGroup Wg;
      for (int W = 0; W < 4; ++W) {
        Wg.add(1);
        go("order-worker", [Proc, W, &Wg] {
          FuncScope Inner("worker", "orders_test.go", 45);
          for (int I = 0; I < 3; ++I)
            Proc->lookup(W * 3 + I);
          Wg.done();
        });
      }
      Wg.wait();
    });
    Result.SeedsRaced += Run.RaceCount > 0;
  }
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t NumSeeds = Argc > 1 ? std::strtoull(Argv[1], nullptr, 10) : 50;

  std::cout << "Race hunt over the OrderProcessor component, " << NumSeeds
            << " schedules\n\n";

  HuntResult Buggy = hunt(/*Buggy=*/true, NumSeeds);
  std::cout << "BUGGY build: races on " << Buggy.SeedsRaced << "/"
            << NumSeeds << " schedules; "
            << Buggy.FingerprintCounts.size()
            << " distinct fingerprint(s) after §3.3.1 dedup";
  size_t TotalReports = 0;
  for (const auto &[Fp, Count] : Buggy.FingerprintCounts)
    TotalReports += Count;
  std::cout << " (from " << TotalReports << " raw reports).\n\n";
  std::cout << "Representative report:\n" << Buggy.SampleReport << '\n';

  HuntResult Fixed = hunt(/*Buggy=*/false, NumSeeds);
  std::cout << "FIXED build: races on " << Fixed.SeedsRaced << "/"
            << NumSeeds << " schedules.\n";
  if (Fixed.SeedsRaced == 0)
    std::cout << "\nThe lock now covers the stats counter on every "
                 "schedule — ship it.\n";
  return Fixed.SeedsRaced == 0 ? 0 : 1;
}
